#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, build, and the full test suite.
#
# Works in two environments:
#   * online (normal dev box / CI): real crates.io dependencies;
#   * the offline growth container: crates.io is unreachable, so the
#     API shims in vendor/ are injected via [patch.crates-io] and
#     everything runs with --offline (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

PATCH_FLAGS=(
  --config "patch.crates-io.rand.path=\"$PWD/vendor/rand\""
  --config "patch.crates-io.serde.path=\"$PWD/vendor/serde\""
  --config "patch.crates-io.serde_json.path=\"$PWD/vendor/serde_json\""
  --config "patch.crates-io.crossbeam.path=\"$PWD/vendor/crossbeam\""
  --config "patch.crates-io.parking_lot.path=\"$PWD/vendor/parking_lot\""
  --config "patch.crates-io.proptest.path=\"$PWD/vendor/proptest\""
  --config "patch.crates-io.criterion.path=\"$PWD/vendor/criterion\""
)

# Flags go AFTER the subcommand: `cargo clippy` re-invokes cargo
# internally and would drop pre-subcommand --config flags.
FLAGS=()
if ! cargo fetch >/dev/null 2>&1; then
  echo "== crates.io unreachable; building offline against vendor/ shims"
  FLAGS=("${PATCH_FLAGS[@]}" --offline)
fi

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy "${FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test"
cargo build "${FLAGS[@]}" --release --workspace
cargo test "${FLAGS[@]}" --workspace -q

echo "== chaos integration tests (fault injection / deadlines / retries)"
cargo test "${FLAGS[@]}" -p integration-tests --test server_chaos -q

echo "== parallel determinism: serial-vs-parallel equivalence suite"
# Covers the raw engine and every registered experiment at 1/2/3/8
# threads (bitwise f64 comparison), plus the pool/stream property tests.
# CHECK_STRESS=1 turns the pool churn loop into a 50-iteration soak;
# the default gate runs the fast 5-iteration version.
cargo test "${FLAGS[@]}" -p integration-tests --test parallel_equivalence -q
cargo test "${FLAGS[@]}" -p dummyloc-core --test pool --test streams -q

echo "== parallel determinism: scrubbed manifests at 1 vs 4 threads"
DUMMYLOC=target/release/dummyloc
EQUIV_TMP=$(mktemp -d)
trap 'rm -rf "$EQUIV_TMP"' EXIT
for n in 1 4; do
  "$DUMMYLOC" simulate --count 8 --duration 300 --seed 5 --threads "$n" \
    --json "$EQUIV_TMP/sim-$n.json" --telemetry "$EQUIV_TMP/t$n" >/dev/null
  "$DUMMYLOC" manifest scrub "$EQUIV_TMP/t$n/simulate.manifest.json" \
    --out "$EQUIV_TMP/scrubbed-$n.json" >/dev/null
done
cmp "$EQUIV_TMP/sim-1.json" "$EQUIV_TMP/sim-4.json" \
  || { echo "simulate JSON differs between 1 and 4 threads"; exit 1; }
cmp "$EQUIV_TMP/scrubbed-1.json" "$EQUIV_TMP/scrubbed-4.json" \
  || { echo "scrubbed manifests differ between 1 and 4 threads"; exit 1; }

echo "== telemetry: crate lints and cross-crate tests"
cargo clippy "${FLAGS[@]}" -p dummyloc-telemetry --all-targets -- -D warnings
cargo test "${FLAGS[@]}" -p dummyloc-telemetry -q
cargo test "${FLAGS[@]}" -p integration-tests --test telemetry -q

echo "== CLI experiment-registry smoke test"
DUMMYLOC=target/release/dummyloc
"$DUMMYLOC" experiments list
for name in $("$DUMMYLOC" experiments list --names); do
  echo "---- experiments run $name"
  "$DUMMYLOC" experiments run "$name" --quick --seed 1 >/dev/null
done

echo "== CLI metrics-scrape smoke test (serve + loadgen + metrics)"
METRICS_ADDR=127.0.0.1:17911
"$DUMMYLOC" serve --addr "$METRICS_ADDR" --duration 6 >/dev/null &
SERVE_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$METRICS_ADDR" --users 4 --rounds 5 --seed 7 >/dev/null
# No `grep -q` here: it closes the pipe on first match and the scraper
# dies on SIGPIPE mid-print; plain grep drains its whole input.
"$DUMMYLOC" metrics "$METRICS_ADDR" | grep "server.requests" >/dev/null
"$DUMMYLOC" metrics "$METRICS_ADDR" --json | grep '"server.requests"' >/dev/null
wait "$SERVE_PID"

echo "== all checks passed"
