#!/usr/bin/env bash
# Repo-wide gate: formatting, lints, build, and the full test suite.
#
# Works in two environments:
#   * online (normal dev box / CI): real crates.io dependencies;
#   * the offline growth container: crates.io is unreachable, so the
#     API shims in vendor/ are injected via [patch.crates-io] and
#     everything runs with --offline (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

PATCH_FLAGS=(
  --config "patch.crates-io.rand.path=\"$PWD/vendor/rand\""
  --config "patch.crates-io.serde.path=\"$PWD/vendor/serde\""
  --config "patch.crates-io.serde_json.path=\"$PWD/vendor/serde_json\""
  --config "patch.crates-io.crossbeam.path=\"$PWD/vendor/crossbeam\""
  --config "patch.crates-io.parking_lot.path=\"$PWD/vendor/parking_lot\""
  --config "patch.crates-io.proptest.path=\"$PWD/vendor/proptest\""
  --config "patch.crates-io.criterion.path=\"$PWD/vendor/criterion\""
)

# Flags go AFTER the subcommand: `cargo clippy` re-invokes cargo
# internally and would drop pre-subcommand --config flags.
FLAGS=()
if ! cargo fetch >/dev/null 2>&1; then
  echo "== crates.io unreachable; building offline against vendor/ shims"
  FLAGS=("${PATCH_FLAGS[@]}" --offline)
fi

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy "${FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test"
cargo build "${FLAGS[@]}" --release --workspace
cargo test "${FLAGS[@]}" --workspace -q

echo "== chaos integration tests (fault injection / deadlines / retries)"
cargo test "${FLAGS[@]}" -p integration-tests --test server_chaos -q

echo "== store faults: errno/short-write/power-cut injection in every durability syscall"
# Seeded 32-cell sample per window by default; CHECK_STRESS=1 walks the
# full per-syscall × per-fault matrix (hundreds of cells, still fast —
# the virtual disk is in-memory).
cargo test "${FLAGS[@]}" -p integration-tests --test store_faults -q

echo "== parallel determinism: serial-vs-parallel equivalence suite"
# Covers the raw engine and every registered experiment at 1/2/3/8
# threads (bitwise f64 comparison), plus the pool/stream property tests.
# CHECK_STRESS=1 turns the pool churn loop into a 50-iteration soak;
# the default gate runs the fast 5-iteration version.
cargo test "${FLAGS[@]}" -p integration-tests --test parallel_equivalence -q
cargo test "${FLAGS[@]}" -p dummyloc-core --test pool --test streams -q

echo "== parallel determinism: scrubbed manifests at 1 vs 4 threads"
DUMMYLOC=target/release/dummyloc
EQUIV_TMP=$(mktemp -d)
trap 'rm -rf "$EQUIV_TMP"' EXIT
for n in 1 4; do
  "$DUMMYLOC" simulate --count 8 --duration 300 --seed 5 --threads "$n" \
    --json "$EQUIV_TMP/sim-$n.json" --telemetry "$EQUIV_TMP/t$n" >/dev/null
  "$DUMMYLOC" manifest scrub "$EQUIV_TMP/t$n/simulate.manifest.json" \
    --out "$EQUIV_TMP/scrubbed-$n.json" >/dev/null
done
cmp "$EQUIV_TMP/sim-1.json" "$EQUIV_TMP/sim-4.json" \
  || { echo "simulate JSON differs between 1 and 4 threads"; exit 1; }
cmp "$EQUIV_TMP/scrubbed-1.json" "$EQUIV_TMP/scrubbed-4.json" \
  || { echo "scrubbed manifests differ between 1 and 4 threads"; exit 1; }

echo "== telemetry: crate lints and cross-crate tests"
cargo clippy "${FLAGS[@]}" -p dummyloc-telemetry --all-targets -- -D warnings
cargo test "${FLAGS[@]}" -p dummyloc-telemetry -q
cargo test "${FLAGS[@]}" -p integration-tests --test telemetry -q

echo "== CLI experiment-registry smoke test"
# Iterates every registered experiment — the paper artifacts, the ext
# extensions, and the attack-* adversary sweeps — in quick mode.
DUMMYLOC=target/release/dummyloc
"$DUMMYLOC" experiments list
for name in $("$DUMMYLOC" experiments list --names); do
  echo "---- experiments run $name"
  "$DUMMYLOC" experiments run "$name" --quick --seed 1 >/dev/null
done

echo "== CLI metrics-scrape smoke test (serve + loadgen + metrics)"
METRICS_ADDR=127.0.0.1:17911
"$DUMMYLOC" serve --addr "$METRICS_ADDR" --duration 6 >/dev/null &
SERVE_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$METRICS_ADDR" --users 4 --rounds 5 --seed 7 >/dev/null
# No `grep -q` here: it closes the pipe on first match and the scraper
# dies on SIGPIPE mid-print; plain grep drains its whole input.
"$DUMMYLOC" metrics "$METRICS_ADDR" | grep "server.requests" >/dev/null
"$DUMMYLOC" metrics "$METRICS_ADDR" --json | grep '"server.requests"' >/dev/null
wait "$SERVE_PID"

echo "== mixed-protocol loopback smoke (v3 + v4 concurrently, same workload)"
# One server, two concurrent load generators on the same seed: a v3 JSON
# lockstep client and a v4 binary batching client. Transport negotiation
# is per-connection, so both shapes interleave on the same accept loop —
# and the per-user answer digests must come out identical.
MIX_ADDR=127.0.0.1:17914
"$DUMMYLOC" serve --addr "$MIX_ADDR" --duration 8 >/dev/null &
MIX_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$MIX_ADDR" --proto v3 --users 4 --rounds 6 --seed 11 \
  --json "$EQUIV_TMP/mix-v3.json" >/dev/null &
V3_PID=$!
"$DUMMYLOC" loadgen --addr "$MIX_ADDR" --proto v4 --batch 3 --users 4 --rounds 6 --seed 11 \
  --json "$EQUIV_TMP/mix-v4.json" >/dev/null
wait "$V3_PID"
for f in mix-v3 mix-v4; do
  grep '"user_errors": 0' "$EQUIV_TMP/$f.json" >/dev/null \
    || { echo "$f: user errors in mixed-protocol run"; exit 1; }
  sed -n '/"per_user_digest"/,/\]/p' "$EQUIV_TMP/$f.json" > "$EQUIV_TMP/$f.digests"
done
test -s "$EQUIV_TMP/mix-v3.digests" || { echo "no digests in v3 report"; exit 1; }
cmp "$EQUIV_TMP/mix-v3.digests" "$EQUIV_TMP/mix-v4.digests" \
  || { echo "v3 and v4 digests diverged on the same workload"; exit 1; }
wait "$MIX_PID"

echo "== group-commit WAL: batched v4 queries survive kill -9 (fsync=always)"
# Every answer in a v4 batch rides one group fsync; the ack contract is
# unchanged — after a hard kill, every acknowledged query must replay.
GC_ADDR=127.0.0.1:17915
GC_WAL="$EQUIV_TMP/group-commit.wal"
"$DUMMYLOC" serve --addr "$GC_ADDR" --wal "$GC_WAL" --wal-fsync always --duration 30 \
  > "$EQUIV_TMP/gc-serve-1.log" &
GC_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$GC_ADDR" --proto v4 --batch 5 --users 4 --rounds 10 \
  --seed 13 >/dev/null
kill -9 "$GC_PID"
wait "$GC_PID" 2>/dev/null || true
"$DUMMYLOC" serve --addr "$GC_ADDR" --wal "$GC_WAL" --duration 6 \
  > "$EQUIV_TMP/gc-serve-2.log" &
GC_PID=$!
sleep 1
grep "wal: replayed 40 records" "$EQUIV_TMP/gc-serve-2.log" \
  || { echo "group commit lost acknowledged batched queries"; cat "$EQUIV_TMP/gc-serve-2.log"; exit 1; }
wait "$GC_PID"

echo "== crash recovery: simulate checkpoint/resume byte-identity"
CK_DIR="$EQUIV_TMP/ckpt"
"$DUMMYLOC" simulate --count 8 --duration 300 --seed 5 --threads 1 \
  --json "$EQUIV_TMP/full.json" >/dev/null
"$DUMMYLOC" simulate --count 8 --duration 300 --seed 5 --threads 1 \
  --checkpoint "$CK_DIR" --checkpoint-every 3 \
  --json "$EQUIV_TMP/ckpt-run.json" >/dev/null
test -f "$CK_DIR/latest.ckpt" || { echo "no checkpoint written"; exit 1; }
cmp "$EQUIV_TMP/full.json" "$EQUIV_TMP/ckpt-run.json" \
  || { echo "checkpointing perturbed the simulate JSON"; exit 1; }
# Resume from the last checkpoint at a different thread count: the
# replayed tail must land on byte-identical output.
"$DUMMYLOC" simulate --count 8 --duration 300 --seed 5 --threads 4 \
  --checkpoint "$CK_DIR" --resume --json "$EQUIV_TMP/resumed.json" >/dev/null
cmp "$EQUIV_TMP/full.json" "$EQUIV_TMP/resumed.json" \
  || { echo "resumed simulate JSON diverged from uninterrupted run"; exit 1; }

echo "== crash recovery: WAL survives kill -9 mid-service"
# One crash/restart cycle by default; CHECK_STRESS=1 runs three, with the
# WAL accumulating acknowledged queries across every lifetime. Every
# cycle redrives the whole (seed-fixed) workload with 5 more rounds than
# the last: the already-acknowledged prefix dedups against replayed
# state — proving the replay actually restored it — and only the 20 new
# queries append.
WAL_ADDR=127.0.0.1:17912
WAL_FILE="$EQUIV_TMP/observer.wal"
CYCLES=1
[ "${CHECK_STRESS:-0}" = "1" ] && CYCLES=3
PER_CYCLE=20 # 4 users x 5 new rounds per cycle
for cycle in $(seq 1 "$CYCLES"); do
  "$DUMMYLOC" serve --addr "$WAL_ADDR" --wal "$WAL_FILE" --duration 30 \
    > "$EQUIV_TMP/serve-$cycle.log" &
  WAL_PID=$!
  sleep 1
  expected=$(( PER_CYCLE * (cycle - 1) ))
  grep "wal: replayed $expected records" "$EQUIV_TMP/serve-$cycle.log" \
    || { echo "cycle $cycle: expected $expected replayed records"; exit 1; }
  "$DUMMYLOC" loadgen --addr "$WAL_ADDR" --users 4 --rounds $(( 5 * cycle )) \
    --seed 7 >/dev/null
  kill -9 "$WAL_PID"
  wait "$WAL_PID" 2>/dev/null || true
done
# Final restart: every acknowledged query from every lifetime replays.
"$DUMMYLOC" serve --addr "$WAL_ADDR" --wal "$WAL_FILE" --duration 6 \
  > "$EQUIV_TMP/serve-final.log" &
WAL_PID=$!
sleep 1
grep "wal: replayed $(( PER_CYCLE * CYCLES )) records" "$EQUIV_TMP/serve-final.log" \
  || { echo "restart lost acknowledged queries"; cat "$EQUIV_TMP/serve-final.log"; exit 1; }
"$DUMMYLOC" metrics "$WAL_ADDR" | grep "server.wal.replayed" >/dev/null
wait "$WAL_PID"

echo "== crash recovery: durable store survives kill -9, compaction is digest-invariant"
STORE_ADDR=127.0.0.1:17913
STORE_DIR="$EQUIV_TMP/store"
STORE_WAL="$EQUIV_TMP/store-observer.wal"
# Lifetime 1: a tiny flush threshold forces real segment flushes (each
# truncating the WAL) mid-run, then the process dies hard.
"$DUMMYLOC" serve --addr "$STORE_ADDR" --wal "$STORE_WAL" --store "$STORE_DIR" \
  --store-flush-bytes 2048 --duration 30 > "$EQUIV_TMP/store-serve-1.log" &
STORE_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$STORE_ADDR" --users 4 --rounds 5 --seed 7 >/dev/null
kill -9 "$STORE_PID"
wait "$STORE_PID" 2>/dev/null || true
# Lifetime 2: recover from the manifest plus the WAL tail, then redrive
# a superset of the workload — two MORE users at the same seed and round
# count. Loadgen tracks are per-user seeded, so users 0-3 resend exactly
# what lifetime 1 acknowledged (dedups against the recovered id sets)
# and users 4-5 append fresh streams. Exit cleanly (final flush).
"$DUMMYLOC" serve --addr "$STORE_ADDR" --wal "$STORE_WAL" --store "$STORE_DIR" \
  --store-flush-bytes 2048 --duration 8 > "$EQUIV_TMP/store-serve-2.log" &
STORE_PID=$!
sleep 1
grep "store: recovered" "$EQUIV_TMP/store-serve-2.log" \
  || { echo "restart did not recover from the store"; cat "$EQUIV_TMP/store-serve-2.log"; exit 1; }
"$DUMMYLOC" loadgen --addr "$STORE_ADDR" --users 6 --rounds 5 --seed 7 >/dev/null
wait "$STORE_PID"
# Reference oracle: the same 6x5 workload against a WAL-only server that
# never crashed, imported into a fresh store. Per-pseudonym digests are
# seq-free, so the crashed/recovered store must match it byte for byte.
REF_WAL="$EQUIV_TMP/ref-observer.wal"
"$DUMMYLOC" serve --addr "$STORE_ADDR" --wal "$REF_WAL" --duration 8 >/dev/null &
REF_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$STORE_ADDR" --users 6 --rounds 5 --seed 7 >/dev/null
wait "$REF_PID"
"$DUMMYLOC" store import "$EQUIV_TMP/ref-store" --wal "$REF_WAL" >/dev/null
"$DUMMYLOC" store digests "$STORE_DIR" > "$EQUIV_TMP/digests-crashed.txt"
"$DUMMYLOC" store digests "$EQUIV_TMP/ref-store" > "$EQUIV_TMP/digests-ref.txt"
cmp "$EQUIV_TMP/digests-crashed.txt" "$EQUIV_TMP/digests-ref.txt" \
  || { echo "store digests diverged from the WAL-replay oracle"; exit 1; }
"$DUMMYLOC" store compact "$STORE_DIR" >/dev/null
"$DUMMYLOC" store digests "$STORE_DIR" | cmp - "$EQUIV_TMP/digests-ref.txt" \
  || { echo "store compact changed digests"; exit 1; }
"$DUMMYLOC" store stats "$STORE_DIR" --json | grep '"segments": 1' >/dev/null

echo "== overload control: hints on every bounce, breaker recovery, graceful drain"
# A deliberately tiny server — one worker throttled to 4 ms per job
# (~250 qps nominal), a shallow queue, durable store, drain-file armed —
# driven at ~2x capacity by the paced open-loop loadgen. Retries stay on
# (hint-floored, escalating, jittered), so every query is eventually
# answered and the drained store must hold the complete workload.
OL_ADDR=127.0.0.1:17916
OL_WAL="$EQUIV_TMP/ol.wal"
OL_STORE="$EQUIV_TMP/ol-store"
OL_DRAIN="$EQUIV_TMP/ol.drain"
"$DUMMYLOC" serve --addr "$OL_ADDR" --workers 1 --worker-delay-ms 4 --queue 8 \
  --wal "$OL_WAL" --store "$OL_STORE" \
  --drain-file "$OL_DRAIN" --drain-timeout-ms 5000 --duration 60 \
  > "$EQUIV_TMP/ol-serve.log" &
OL_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$OL_ADDR" --users 24 --rounds 20 --rate 500 --seed 9 \
  --retries 20 --json "$EQUIV_TMP/ol-loadgen.json" >/dev/null
ol_field() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$EQUIV_TMP/ol-loadgen.json" | head -1; }
# Overload actually happened, nothing was lost to it...
grep '"user_errors": 0' "$EQUIV_TMP/ol-loadgen.json" >/dev/null \
  || { echo "overload run killed a user"; exit 1; }
grep '"round_errors": 0' "$EQUIV_TMP/ol-loadgen.json" >/dev/null \
  || { echo "overload run dropped rounds despite retries"; exit 1; }
OL_OVER=$(ol_field overloaded); OL_BUSY=$(ol_field busy_bounces)
[ "$OL_OVER" -gt 0 ] || { echo "2x offered load never bounced"; exit 1; }
# ...and every bounce carried a server retry_after_ms hint.
[ "$(ol_field hinted_bounces)" -eq $(( OL_OVER + OL_BUSY )) ] \
  || { echo "a bounce arrived without a retry_after_ms hint"; exit 1; }
# Graceful drain: touch the drain file, the server answers what it holds,
# flushes the store, prints its final stats, and exits on its own.
touch "$OL_DRAIN"
wait "$OL_PID"
grep "drain: answered in-flight work" "$EQUIV_TMP/ol-serve.log" >/dev/null \
  || { echo "drain-file touch did not drain the server"; cat "$EQUIV_TMP/ol-serve.log"; exit 1; }
# The drained store equals the oracle: the same workload against an
# unthrottled WAL-only server, imported into a fresh store. (The paced
# run above retried until everything was answered, so content-wise the
# two workloads are identical.)
OL_REF_WAL="$EQUIV_TMP/ol-ref.wal"
"$DUMMYLOC" serve --addr "$OL_ADDR" --wal "$OL_REF_WAL" --duration 8 >/dev/null &
OL_REF_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$OL_ADDR" --users 24 --rounds 20 --seed 9 >/dev/null
wait "$OL_REF_PID"
"$DUMMYLOC" store import "$EQUIV_TMP/ol-ref-store" --wal "$OL_REF_WAL" >/dev/null
"$DUMMYLOC" store digests "$OL_STORE" > "$EQUIV_TMP/ol-digests.txt"
"$DUMMYLOC" store digests "$EQUIV_TMP/ol-ref-store" | cmp - "$EQUIV_TMP/ol-digests.txt" \
  || { echo "drained store diverged from the fault-free oracle"; exit 1; }
# The breaker drill runs against its own throttled (storeless) server so
# rounds its fast-fails drop cannot perturb the digest comparison above.
# Marginal overload (~1.2x capacity) is the interesting regime: bounces
# trip the aggressive breaker, the shed load frees queue slots, and the
# half-open probes land in them — so it must trip, probe, AND recover.
OL_BRK_ADDR=127.0.0.1:17917
OL_BRK_DRAIN="$EQUIV_TMP/ol-brk.drain"
"$DUMMYLOC" serve --addr "$OL_BRK_ADDR" --workers 1 --worker-delay-ms 4 --queue 4 \
  --drain-file "$OL_BRK_DRAIN" --duration 30 >/dev/null &
OL_BRK_PID=$!
sleep 1
"$DUMMYLOC" loadgen --addr "$OL_BRK_ADDR" --users 16 --rounds 40 --rate 300 --seed 9 \
  --retries 8 --breaker-threshold 1 --breaker-open-ms 50 \
  --json "$EQUIV_TMP/ol-breaker.json" >/dev/null
ol_brk() { sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "$EQUIV_TMP/ol-breaker.json" | head -1; }
[ "$(ol_brk breaker_opens)" -gt 0 ] || { echo "breaker never opened past capacity"; exit 1; }
[ "$(ol_brk breaker_closes)" -gt 0 ] || { echo "breaker never recovered"; exit 1; }
touch "$OL_BRK_DRAIN"
wait "$OL_BRK_PID"

echo "== adversary loopback: attack the stores the service just wrote"
# The crashed-and-recovered store and the WAL-replay oracle store hold
# identical per-pseudonym streams (digests matched above), so the attack
# pipeline must reach identical verdicts over both — attack reports are
# sorted by pseudonym precisely so backends compare bytewise.
"$DUMMYLOC" attack "$STORE_DIR" --json "$EQUIV_TMP/attack-crashed.json" \
  > "$EQUIV_TMP/attack-crashed.txt"
grep "6 pseudonym streams" "$EQUIV_TMP/attack-crashed.txt" >/dev/null \
  || { echo "attack did not see all 6 loadgen streams"; cat "$EQUIV_TMP/attack-crashed.txt"; exit 1; }
"$DUMMYLOC" attack "$EQUIV_TMP/ref-store" --json "$EQUIV_TMP/attack-ref.json" >/dev/null
cmp "$EQUIV_TMP/attack-crashed.json" "$EQUIV_TMP/attack-ref.json" \
  || { echo "attack verdicts diverged between equal-digest stores"; exit 1; }

echo "== all checks passed"
