#!/usr/bin/env bash
# Regenerates BENCH_baseline.json at the repo root: one seeded run of
# the baseline binary (sim rounds/sec serial and parallel + speedup,
# quick fig7/fig8 wall time, the adversary pipeline's identification
# rate vs k for random/MN/MLN dummies — with the random ≫ MN ≳ MLN
# ordering asserted before the numbers are written — and in-process
# server throughput + latency tail: v3 JSON lockstep, the v4 binary
# batch sweep with its speedup-vs-v3 ratio, the WAL/store
# durability-tax ratios, and the overload sweep: paced open-loop load at
# ~0.5x/1x/2x nominal capacity, with goodput(2x) >= 0.7x goodput(1x)
# asserted before the numbers are written). Pass --threads N to pin the
# parallel worker count (default: available cores).
#
# Works online and in the offline growth container, same as check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

PATCH_FLAGS=(
  --config "patch.crates-io.rand.path=\"$PWD/vendor/rand\""
  --config "patch.crates-io.serde.path=\"$PWD/vendor/serde\""
  --config "patch.crates-io.serde_json.path=\"$PWD/vendor/serde_json\""
  --config "patch.crates-io.crossbeam.path=\"$PWD/vendor/crossbeam\""
  --config "patch.crates-io.parking_lot.path=\"$PWD/vendor/parking_lot\""
  --config "patch.crates-io.proptest.path=\"$PWD/vendor/proptest\""
  --config "patch.crates-io.criterion.path=\"$PWD/vendor/criterion\""
)

FLAGS=()
if ! cargo fetch >/dev/null 2>&1; then
  echo "== crates.io unreachable; building offline against vendor/ shims"
  FLAGS=("${PATCH_FLAGS[@]}" --offline)
fi

echo "== building baseline binary (release)"
cargo build "${FLAGS[@]}" --release -p dummyloc-bench --bin baseline

echo "== running baseline (seed 42)"
target/release/baseline --seed 42 --json BENCH_baseline.json "$@"

echo "== wrote BENCH_baseline.json"
