// integration test host crate; see tests/tests/
