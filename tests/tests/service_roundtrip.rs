//! Integration of the client protocol with the provider: the full
//! Figure-5 message loop, the observer log, and adversaries reading it.

use dummyloc_core::adversary::{Adversary, ChainScore, ContinuityTracker};
use dummyloc_core::client::Client;
use dummyloc_core::generator::{MnGenerator, NoDensity, RandomGenerator};
use dummyloc_geo::rng::rng_from_seed;
use dummyloc_geo::{BBox, Point};
use dummyloc_lbs::poi::{Category, PoiDatabase};
use dummyloc_lbs::provider::Provider;
use dummyloc_lbs::query::{Answer, QueryKind};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap()
}

/// Walks one protected client through `rounds` service rounds against a
/// live provider; returns the truth index of the final round.
fn drive_session(
    provider: &mut Provider,
    pseudonym: &str,
    dummies: usize,
    rounds: usize,
    seed: u64,
) -> usize {
    let generator = MnGenerator::new(area(), 40.0).unwrap();
    let mut client = Client::new(pseudonym, generator, dummies);
    let mut rng = rng_from_seed(seed);
    let mut truth_idx = 0;
    for k in 0..rounds {
        let pos = Point::new(100.0 + 5.0 * k as f64, 500.0);
        let round = if k == 0 {
            client.begin(&mut rng, pos).unwrap()
        } else {
            client.step(&mut rng, pos, &NoDensity).unwrap()
        };
        let response = provider.handle(
            k as f64 * 30.0,
            &round.request,
            &QueryKind::NearestPoi { category: None },
        );
        // The client's own answer must be the nearest POI to the *true*
        // position.
        let Answer::NearestPoi(Some(own)) = &response.answers[round.truth_index] else {
            panic!("database is non-empty");
        };
        let expected = provider.pois().nearest(pos, None).unwrap();
        assert_eq!(
            own.id, expected.id,
            "round {k}: wrong answer for the true position"
        );
        truth_idx = round.truth_index;
    }
    truth_idx
}

#[test]
fn client_gets_correct_service_despite_dummies() {
    let mut provider = Provider::new(PoiDatabase::generate(area(), 50, 1));
    drive_session(&mut provider, "u1", 4, 10, 2);
    // Provider did 5× the work.
    assert_eq!(provider.cost().positions_per_request(), 5.0);
    assert_eq!(provider.cost().requests, 10);
}

#[test]
fn observer_log_feeds_adversaries() {
    let mut provider = Provider::new(PoiDatabase::generate(area(), 50, 1));
    let truth_idx = drive_session(&mut provider, "victim", 4, 20, 3);
    let stream = provider.observer_log().requests_of("victim");
    assert_eq!(stream.len(), 20);
    let adv = ContinuityTracker::new(ChainScore::MaxStep);
    let mut rng = rng_from_seed(9);
    let guess = adv.identify(&mut rng, stream).unwrap();
    assert!(guess < 5);
    // Not asserting the guess is right or wrong — only that the pipeline
    // from provider storage to adversary verdict is wired; statistical
    // claims live in the tracing experiment. But the truth index is a
    // valid comparison target:
    assert!(truth_idx < 5);
}

#[test]
fn tracker_reads_provider_log_and_exposes_random_dummies() {
    // Same loop, but random dummies and a slow-walking user: the tracker
    // reading the *provider's own log* finds the user. Statistical over 20
    // victims: chance is 1/5 = 20 %, require > 60 %.
    let adv = ContinuityTracker::new(ChainScore::MaxStep);
    let mut hits = 0;
    let victims = 20;
    for v in 0..victims {
        let mut provider = Provider::new(PoiDatabase::generate(area(), 50, 1));
        let mut client = Client::new(format!("v{v}"), RandomGenerator::new(area()).unwrap(), 4);
        let mut rng = rng_from_seed(100 + v);
        let mut final_truth = 0;
        for k in 0..15 {
            let pos = Point::new(100.0 + 4.0 * k as f64, 500.0);
            let round = if k == 0 {
                client.begin(&mut rng, pos).unwrap()
            } else {
                client.step(&mut rng, pos, &NoDensity).unwrap()
            };
            provider.handle(k as f64, &round.request, &QueryKind::NextBus);
            final_truth = round.truth_index;
        }
        let stream = provider.observer_log().requests_of(&format!("v{v}"));
        let mut arng = rng_from_seed(7);
        if adv.identify(&mut arng, stream) == Some(final_truth) {
            hits += 1;
        }
    }
    assert!(
        hits > 12,
        "tracker found {hits}/{victims} victims (chance would be ~4)"
    );
}

#[test]
fn bus_service_answers_are_time_consistent_per_position() {
    let mut provider = Provider::new(PoiDatabase::generate(area(), 60, 5));
    let request = dummyloc_core::client::Request {
        pseudonym: "p".into(),
        positions: vec![Point::new(100.0, 100.0), Point::new(900.0, 900.0)],
    };
    let t = 1234.0;
    let response = provider.handle(t, &request, &QueryKind::NextBus);
    for (i, answer) in response.answers.iter().enumerate() {
        let Answer::NextBus(Some(bus)) = answer else {
            panic!("bus stops exist")
        };
        assert!(bus.arrival >= t, "answer {i} arrival in the past");
        // The stop must actually be the nearest bus stop to that position.
        let expected = provider
            .pois()
            .nearest(request.positions[i], Some(Category::BusStop))
            .unwrap();
        assert_eq!(bus.stop.id, expected.id);
    }
}

#[test]
fn cloaked_and_dummy_requests_cost_differently() {
    // A cloaked request is one "position" (the region); a k-dummy request
    // is k+1. The cost accounting must reflect the bandwidth asymmetry
    // that motivates ablation A3.
    let mut provider = Provider::new(PoiDatabase::generate(area(), 50, 1));
    let grid = dummyloc_geo::Grid::square(area(), 8).unwrap();
    let cloak = dummyloc_core::cloaking::GridCloak::new(grid);
    let cloaked = cloak.cloak("c", Point::new(500.0, 500.0)).unwrap();
    provider.handle(
        0.0,
        &dummyloc_core::client::Request {
            pseudonym: "c".into(),
            positions: vec![cloaked.region.center()],
        },
        &QueryKind::NearestPoi { category: None },
    );
    let cloak_up = provider.cost().uplink_bytes;

    let mut provider2 = Provider::new(PoiDatabase::generate(area(), 50, 1));
    let mut client = Client::new("d", MnGenerator::new(area(), 40.0).unwrap(), 6);
    let mut rng = rng_from_seed(4);
    let round = client.begin(&mut rng, Point::new(500.0, 500.0)).unwrap();
    provider2.handle(
        0.0,
        &round.request,
        &QueryKind::NearestPoi { category: None },
    );
    assert!(provider2.cost().uplink_bytes > cloak_up);
}
