//! Loopback integration tests for `dummyloc-server`: concurrency,
//! online/offline agreement, protocol hygiene, backpressure, shutdown
//! drain, and load-generator determinism.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use dummyloc_core::client::Request;
use dummyloc_geo::rng::{derive_seed, rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Point};
use dummyloc_lbs::{PoiDatabase, Provider, QueryKind};
use dummyloc_server::client::{QueryOutcome, ServiceClient};
use dummyloc_server::loadgen::{self, GeneratorChoice, LoadgenConfig};
use dummyloc_server::proto::{write_frame, ClientFrame, ErrorKind, ServerFrame};
use dummyloc_server::server::{spawn, ServerConfig};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

fn pois() -> PoiDatabase {
    PoiDatabase::generate(area(), 120, 42)
}

/// A deterministic request stream for one simulated user.
fn user_requests(user: u64, rounds: usize) -> Vec<(f64, Request)> {
    let mut rng = rng_from_seed(derive_seed(9000, user));
    (0..rounds)
        .map(|k| {
            let positions = (0..4).map(|_| sample_uniform(&mut rng, &area())).collect();
            (
                k as f64 * 30.0,
                Request {
                    pseudonym: format!("user-{user}"),
                    positions,
                },
            )
        })
        .collect()
}

/// N concurrent connections; every position of every query is answered,
/// and each answer equals what the in-process `Provider` gives for the
/// same request — the online path must not change results.
#[test]
fn concurrent_clients_match_in_process_provider() {
    let handle = spawn(ServerConfig::default(), pois()).unwrap();
    let addr = handle.addr();
    let users = 6;
    let rounds = 8;
    let query = QueryKind::NearestPoi { category: None };

    std::thread::scope(|s| {
        for user in 0..users {
            s.spawn(move || {
                let mut reference = Provider::new(pois());
                let mut client = ServiceClient::connect(addr).unwrap();
                for (t, request) in user_requests(user, rounds) {
                    let outcome = client.query(t, &request, &query).unwrap();
                    let QueryOutcome::Answered(online) = outcome else {
                        panic!("default queue depth should never overload here");
                    };
                    assert_eq!(online.answers.len(), request.positions.len());
                    let offline = reference.handle(t, &request, &query);
                    assert_eq!(online, offline, "user {user} diverged at t={t}");
                }
                client.bye().unwrap();
            });
        }
    });

    let report = handle.shutdown();
    assert_eq!(report.stats.requests, users * rounds as u64);
    assert_eq!(report.stats.positions, users * rounds as u64 * 4);
    assert_eq!(report.stats.rejects, 0);
    assert_eq!(report.stats.connections, users);
    // The merged observer log saw every stream.
    for user in 0..users {
        assert_eq!(
            report.log.requests_of(&format!("user-{user}")).len(),
            rounds
        );
    }
}

/// Raw socket: a line that is not JSON gets a typed `Malformed` error.
#[test]
fn malformed_frame_is_rejected_with_typed_error() {
    let handle = spawn(ServerConfig::default(), pois()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let frame: ServerFrame = serde_json::from_str(&line).unwrap();
    match frame {
        ServerFrame::Error { kind, .. } => assert_eq!(kind, ErrorKind::Malformed),
        other => panic!("expected Error frame, got {other:?}"),
    }
    let stats = handle.shutdown().stats;
    assert_eq!(stats.protocol_errors, 1);
}

/// Raw socket: a frame above the size cap is refused without being
/// buffered, with a typed `FrameTooLarge` error.
#[test]
fn oversized_frame_is_rejected_with_typed_error() {
    let config = ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    };
    let handle = spawn(config, pois()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // One unterminated 4 KiB burst: over the cap, but small enough that
    // the server reads it all before closing (no reset racing the reply).
    let huge = vec![b'x'; 4096];
    stream.write_all(&huge).unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    let _ = BufReader::new(stream.try_clone().unwrap()).read_line(&mut line);
    let frame: ServerFrame = serde_json::from_str(&line).unwrap();
    match frame {
        ServerFrame::Error { kind, .. } => assert_eq!(kind, ErrorKind::FrameTooLarge),
        other => panic!("expected Error frame, got {other:?}"),
    }
    handle.shutdown();
}

/// A `Query` before `Hello` is a protocol error.
#[test]
fn query_before_hello_is_rejected() {
    let handle = spawn(ServerConfig::default(), pois()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let frame = ClientFrame::Query {
        id: 0,
        t: 0.0,
        deadline_ms: None,
        request: Request {
            pseudonym: "p".to_string(),
            positions: vec![Point::new(1.0, 1.0)],
        },
        query: QueryKind::NextBus,
    };
    write_frame(&mut stream, &frame).unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(
        matches!(
            serde_json::from_str(&line),
            Ok(ServerFrame::Error {
                kind: ErrorKind::Malformed,
                ..
            })
        ),
        "got: {line}"
    );
    handle.shutdown();
}

/// A connection that exceeds its request budget is cut off with
/// `TooManyRequests`.
#[test]
fn per_connection_request_cap_is_enforced() {
    let config = ServerConfig {
        max_requests_per_conn: 2,
        ..ServerConfig::default()
    };
    let handle = spawn(config, pois()).unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    let (t, request) = user_requests(0, 1).pop().unwrap();
    let query = QueryKind::NextBus;
    assert!(client.query(t, &request, &query).is_ok());
    assert!(client.query(t + 1.0, &request, &query).is_ok());
    let third = client.query(t + 2.0, &request, &query).unwrap();
    assert!(
        matches!(
            third,
            QueryOutcome::Failed {
                kind: ErrorKind::TooManyRequests,
                ..
            }
        ),
        "third query should be refused: {third:?}"
    );
    handle.shutdown();
}

/// With a one-slot queue and a slow worker, a burst must bounce some
/// queries with typed `Overloaded` frames — and the server's reject
/// counter must agree with what clients saw.
#[test]
fn full_queue_answers_typed_overloaded() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        worker_delay: Some(Duration::from_millis(30)),
        ..ServerConfig::default()
    };
    let handle = spawn(config, pois()).unwrap();
    let addr = handle.addr();
    let users = 4;
    let rounds = 6;
    let overloaded: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..users)
            .map(|user| {
                s.spawn(move || {
                    let mut client = ServiceClient::connect(addr).unwrap();
                    let mut bounced = 0;
                    for (t, request) in user_requests(user, rounds) {
                        match client.query(t, &request, &QueryKind::NextBus).unwrap() {
                            QueryOutcome::Answered(_) => {}
                            QueryOutcome::Overloaded { retry_after_ms } => {
                                // Every bounce carries a usable hint.
                                assert!(retry_after_ms.is_some_and(|ms| ms >= 1));
                                bounced += 1;
                            }
                            QueryOutcome::Deadline => {
                                panic!("no deadline was set, none may expire")
                            }
                            QueryOutcome::Failed { kind, message } => {
                                panic!("no faults are injected, none may fail: {kind:?} {message}")
                            }
                        }
                    }
                    client.bye().unwrap();
                    bounced
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert!(
        overloaded > 0,
        "a 1-deep queue under {users}x{rounds} concurrent queries must bounce"
    );
    let stats = handle.shutdown().stats;
    assert_eq!(stats.rejects, overloaded);
    assert_eq!(stats.requests + stats.rejects, users * rounds as u64);
}

/// Two loadgen runs with one seed produce identical per-user answer
/// digests, and the server's counters reconcile with the client's view.
#[test]
fn loadgen_is_deterministic_and_counts_reconcile() {
    let run_once = || {
        let handle = spawn(ServerConfig::default(), pois()).unwrap();
        let config = LoadgenConfig {
            addr: handle.addr().to_string(),
            users: 4,
            rounds: 5,
            dummy_count: 3,
            generator: GeneratorChoice::Mn,
            seed: 77,
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(&config).unwrap();
        let stats = handle.shutdown().stats;
        (report, stats)
    };
    let (a, stats_a) = run_once();
    let (b, _) = run_once();

    assert_eq!(a.user_errors, 0);
    assert_eq!(a.sent, 4 * 5);
    // Retries absorb overload bounces, so every query ends answered.
    assert_eq!(a.answered, a.sent);
    assert_eq!(a.per_user_digest.len(), 4);
    assert_eq!(
        a.per_user_digest, b.per_user_digest,
        "fixed seed must reproduce every user's answer stream"
    );
    // Fault-free with a deep queue: exactly one server-side request per
    // query, nothing bounced.
    assert_eq!(stats_a.requests, a.sent);
    assert_eq!(stats_a.rejects, 0);
    // Each request carried k + 1 = 4 positions.
    assert_eq!(stats_a.positions, stats_a.requests * 4);
}

/// Shutdown drains queued work: answers already accepted are delivered
/// even though the flag is raised while they sit in the queue.
#[test]
fn shutdown_drains_inflight_jobs() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 64,
        worker_delay: Some(Duration::from_millis(10)),
        ..ServerConfig::default()
    };
    let handle = spawn(config, pois()).unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    let rounds = user_requests(3, 8);
    // Lockstep queries: each is answered before shutdown, so this mostly
    // exercises that a slow worker plus shutdown loses nothing.
    let answered = rounds
        .iter()
        .filter(|(t, request)| {
            matches!(
                client.query(*t, request, &QueryKind::NextBus),
                Ok(QueryOutcome::Answered(_))
            )
        })
        .count();
    client.bye().unwrap();
    let report = handle.shutdown();
    assert_eq!(answered, 8);
    assert_eq!(report.stats.requests, 8);
    assert_eq!(report.log.requests_of("user-3").len(), 8);
}
