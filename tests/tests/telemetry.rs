//! Cross-crate telemetry tests: registry behavior under real thread
//! contention, ring-buffer overflow accounting, the protocol's `Metrics`
//! frame against a live server, and run-manifest determinism across two
//! identically seeded loadgen runs.

use std::sync::Arc;

use dummyloc_server::{spawn, LoadgenConfig, ServerConfig, ServiceClient};
use dummyloc_telemetry::{MetricRegistry, Recorder, RunManifest, Telemetry};

/// A live server over a deterministic POI database on an OS-picked port.
fn test_server() -> dummyloc_server::ServerHandle {
    let area = dummyloc_geo::BBox::new(
        dummyloc_geo::Point::new(0.0, 0.0),
        dummyloc_geo::Point::new(2000.0, 2000.0),
    )
    .unwrap();
    let pois = dummyloc_lbs::PoiDatabase::generate(area, 120, 42);
    spawn(ServerConfig::default(), pois).unwrap()
}

#[test]
fn contended_counters_and_histograms_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let reg = Arc::new(MetricRegistry::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                // Handles are registered concurrently on purpose: every
                // thread must end up on the SAME metric.
                let c = reg.counter("hits");
                let g = reg.gauge("inflight");
                let h = reg.histogram_log2("work_us");
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(1);
                    g.add(-1);
                    h.record(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counter("hits"), Some(THREADS as u64 * PER_THREAD));
    assert_eq!(snap.gauge("inflight"), Some(0));
    let h = snap.histogram("work_us").unwrap();
    assert_eq!(h.count, THREADS as u64 * PER_THREAD);
    assert_eq!(h.counts.iter().sum::<u64>(), h.count);
}

#[test]
fn snapshots_taken_mid_run_are_internally_consistent() {
    let reg = Arc::new(MetricRegistry::new());
    let writer = {
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            let h = reg.histogram_log2("lat");
            for i in 0..50_000 {
                h.record(i);
            }
        })
    };
    // Bucket totals may trail the observation count (counts land after the
    // count increment, both relaxed) but must never exceed it.
    for _ in 0..50 {
        let snap = reg.snapshot();
        if let Some(h) = snap.histogram("lat") {
            assert!(h.counts.iter().sum::<u64>() <= h.count + 64);
        }
    }
    writer.join().unwrap();
    let h = reg.snapshot();
    let h = h.histogram("lat").unwrap();
    assert_eq!(h.count, 50_000);
    assert_eq!(h.counts.iter().sum::<u64>(), 50_000);
}

#[test]
fn ring_buffer_overflow_drops_and_counts_instead_of_blocking() {
    let rec = Recorder::new(4);
    for i in 0..10 {
        rec.record("evt", vec![("i".to_string(), i.to_string())]);
    }
    assert_eq!(rec.recorded(), 4);
    assert_eq!(rec.dropped(), 6);
    let drained = rec.drain();
    assert_eq!(drained.len(), 4);
    // Oldest events survive: the ring refuses new entries when full
    // rather than overwriting history.
    assert_eq!(drained[0].fields[0].1, "0");
    assert_eq!(drained[3].fields[0].1, "3");
}

#[test]
fn metrics_frame_scrapes_live_server_counters() {
    let handle = test_server();
    let addr = handle.addr().to_string();

    let config = LoadgenConfig {
        addr: addr.clone(),
        users: 3,
        rounds: 4,
        seed: 9,
        ..LoadgenConfig::default()
    };
    let report = dummyloc_server::loadgen::run(&config).unwrap();
    assert_eq!(report.answered, 12);

    let mut client = ServiceClient::connect(&addr).unwrap();
    let snap = client.metrics().unwrap();
    assert_eq!(snap.counter("server.requests"), Some(12));
    // 3 users x 4 rounds x (3 dummies + 1 true position).
    assert_eq!(snap.counter("server.positions"), Some(48));
    let lat = snap.histogram("server.latency.next_bus").unwrap();
    assert_eq!(lat.count, 12);
    handle.shutdown();
}

#[test]
fn identically_seeded_runs_produce_identical_scrubbed_manifests() {
    let run = || {
        let handle = test_server();
        let telemetry = Telemetry::new(1024);
        let config = LoadgenConfig {
            addr: handle.addr().to_string(),
            users: 4,
            rounds: 5,
            seed: 31,
            ..LoadgenConfig::default()
        };
        let report = dummyloc_server::loadgen::run_instrumented(&config, Some(&telemetry)).unwrap();
        handle.shutdown();
        let manifest = RunManifest::capture(
            "loadgen",
            config.seed,
            &config.seed,
            &telemetry.registry,
            report.answered,
            std::time::Duration::from_millis(1),
        );
        (manifest, report.per_user_digest)
    };
    let (a, digests_a) = run();
    let (b, digests_b) = run();
    // Raw manifests differ (timestamps, latency distributions); scrubbed
    // ones must not.
    assert_eq!(a.scrubbed(), b.scrubbed());
    assert_eq!(digests_a, digests_b);
    assert_eq!(a.scrubbed().metrics.counter("loadgen.answered"), Some(20));
}
