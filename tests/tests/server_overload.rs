//! Overload control plane, end to end: deadline-aware admission must turn
//! doomed work away *before* it queues, CoDel-style aging must bound the
//! sojourn of what does queue, every bounce must carry a usable
//! `retry_after_ms` hint, the client breaker must trip and probe against
//! a real draining server, hedged reads must fire on dropped replies, and
//! a graceful drain must answer everything in flight while leaving the
//! durable store digest-equal to an in-process oracle.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dummyloc_core::client::Request;
use dummyloc_geo::{BBox, Point};
use dummyloc_lbs::{PoiDatabase, QueryKind};
use dummyloc_server::client::{RetryPolicy, RetryingClient};
use dummyloc_server::codec::{self, RawEvent, Transport, BINARY_MAGIC};
use dummyloc_server::proto::{
    write_frame, ClientFrame, ServerFrame, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use dummyloc_server::server::spawn;
use dummyloc_server::{FaultPlan, LogStoreConfig, ServeOptions, ServerError};
use dummyloc_store::{LogStore, Storage, StoreRecord};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

fn pois() -> PoiDatabase {
    PoiDatabase::generate(area(), 120, 42)
}

fn request(pseudonym: &str) -> Request {
    Request {
        pseudonym: pseudonym.to_string(),
        positions: vec![Point::new(100.0, 100.0), Point::new(900.0, 400.0)],
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dummyloc-overload-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A pipelining JSON connection: send frames back to back, read replies
/// later. The JSON wire keeps the raw-socket plumbing minimal; the v4
/// binary path is covered by `server_chaos` and the interop suite.
struct Pipe {
    stream: TcpStream,
    reader: std::io::BufReader<TcpStream>,
}

impl Pipe {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        write_frame(
            &mut &stream,
            &ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        let mut pipe = Pipe {
            reader: std::io::BufReader::new(stream.try_clone().unwrap()),
            stream,
        };
        let hello = pipe.read_frame();
        assert!(matches!(hello, ServerFrame::Hello { .. }), "{hello:?}");
        pipe
    }

    fn send(&mut self, id: u64, t: f64, deadline_ms: Option<u64>, pseudonym: &str) {
        write_frame(
            &mut self.stream,
            &ClientFrame::Query {
                id,
                t,
                deadline_ms,
                request: request(pseudonym),
                query: QueryKind::NextBus,
            },
        )
        .unwrap();
        self.stream.flush().unwrap();
    }

    fn read_frame(&mut self) -> ServerFrame {
        use std::io::BufRead as _;
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        serde_json::from_str(&line).unwrap()
    }
}

/// Admission control: once the service-time estimate is warm, a query
/// whose deadline budget cannot survive the predicted queue wait is
/// rejected at enqueue — with a hint — and never reaches a worker, while
/// identical queries without a deadline keep being accepted.
#[test]
fn admission_rejects_doomed_deadlines_before_queueing() {
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .workers(1)
            .worker_delay(Some(Duration::from_millis(30)))
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let mut pipe = Pipe::connect(handle.addr());

    // Warm the per-kind EWMA: each answered NextBus costs ~30 ms.
    for id in 0..4u64 {
        pipe.send(id, id as f64, None, "warm-user");
        let frame = pipe.read_frame();
        assert!(matches!(frame, ServerFrame::Answer { .. }), "{frame:?}");
    }

    // Occupy the worker and stack the queue with patient (no-deadline)
    // work, then ask for a 1 ms deadline behind it: the predicted wait
    // (~30 ms x queued) already exceeds the budget, so admission must
    // bounce it at enqueue instead of letting it die in the queue.
    for id in 10..14u64 {
        pipe.send(id, 100.0, None, "warm-user");
    }
    pipe.send(99, 200.0, Some(1), "warm-user");
    let mut answered = 0;
    let mut admission_bounces = 0;
    for _ in 0..5 {
        match pipe.read_frame() {
            ServerFrame::Answer { .. } => answered += 1,
            ServerFrame::Overloaded { id, retry_after_ms } => {
                assert_eq!(id, 99, "only the doomed-deadline query may bounce");
                assert!(
                    retry_after_ms.is_some_and(|ms| ms >= 1),
                    "admission bounces carry a hint"
                );
                admission_bounces += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(answered, 4, "patient work is unaffected");
    assert_eq!(admission_bounces, 1);

    let stats = handle.shutdown().stats;
    assert_eq!(stats.rejections.admission, 1, "{stats:?}");
    assert_eq!(
        stats.rejects,
        stats.rejections.queue_full + stats.rejections.admission + stats.rejections.shed,
        "the per-cause split must reconcile with the total"
    );
    // The rejected query never became a request (it was refused at
    // enqueue, not cancelled mid-queue as a deadline expiry would be).
    assert_eq!(stats.deadline_expired_queued, 0, "{stats:?}");
}

/// CoDel-style aging: with a sojourn target far below the service time, a
/// burst is cut down at dequeue — stale queued jobs are shed with hinted
/// `Overloaded` frames instead of being computed late — but the last
/// pending job is always served, so goodput never collapses to zero.
#[test]
fn codel_sheds_stale_queued_jobs_but_keeps_goodput() {
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .workers(1)
            .worker_delay(Some(Duration::from_millis(25)))
            .codel_target(Some(Duration::from_millis(10)))
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let mut pipe = Pipe::connect(handle.addr());

    let burst = 6u64;
    for id in 0..burst {
        pipe.send(id, id as f64, None, "codel-user");
    }
    let mut answered = 0u64;
    let mut shed = 0u64;
    for _ in 0..burst {
        match pipe.read_frame() {
            ServerFrame::Answer { .. } => answered += 1,
            ServerFrame::Overloaded { retry_after_ms, .. } => {
                assert!(
                    retry_after_ms.is_some_and(|ms| ms >= 1),
                    "shed bounces carry a hint"
                );
                shed += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(answered + shed, burst);
    // The first job (served while fresh) and the final pending job (the
    // shed pass never drains the queue to nothing) are both answered.
    assert!(answered >= 2, "answered {answered} of {burst}");
    assert!(shed >= 1, "a 25 ms service time must blow a 10 ms target");

    let stats = handle.shutdown().stats;
    assert_eq!(stats.rejections.shed, shed, "{stats:?}");
    // Shed queries never reach the observer log or a worker's answer
    // path: requests counts only computed answers.
    assert_eq!(stats.requests, answered, "{stats:?}");
}

/// The circuit breaker against a real server: healthy traffic keeps it
/// closed; a drained server's hinted bounces trip it open after the
/// configured run of consecutive bounces; while open, calls fail fast
/// with `CircuitOpen` and no network traffic; after `breaker_open_ms` a
/// half-open probe goes out and — still draining — reopens it.
#[test]
fn breaker_trips_fast_fails_and_probes_against_a_draining_server() {
    let handle = spawn(
        ServeOptions::new().addr("127.0.0.1:0").build().unwrap(),
        pois(),
    )
    .unwrap();
    let policy = RetryPolicy {
        max_attempts: 2,
        base_delay_ms: 1,
        max_delay_ms: 2,
        attempt_timeout_ms: 500,
        jitter: 0.0,
        breaker_threshold: 2,
        breaker_open_ms: 80,
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::new(handle.addr().to_string(), policy, 5).unwrap();

    // Healthy: answered, breaker stays closed.
    let response = client
        .query(0.0, None, &request("breaker-user"), &QueryKind::NextBus)
        .unwrap();
    assert_eq!(response.answers.len(), 2);

    // Drain mode: every new query on the live connection bounces with a
    // hinted Overloaded. Two bounces per call x one call = threshold.
    handle.start_drain();
    let err = client.query(30.0, None, &request("breaker-user"), &QueryKind::NextBus);
    assert!(err.is_err(), "a draining server must bounce: {err:?}");

    // Open: the very next call fails fast without touching the network.
    let before = Instant::now();
    match client.query(60.0, None, &request("breaker-user"), &QueryKind::NextBus) {
        Err(ServerError::CircuitOpen { retry_after_ms }) => {
            assert!(retry_after_ms <= 80, "hint bounded by open window");
        }
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert!(
        before.elapsed() < Duration::from_millis(50),
        "fast-fail must not wait on the server"
    );

    // After the open window a half-open probe is admitted; the server is
    // still draining, so the probe bounces and the breaker reopens.
    std::thread::sleep(Duration::from_millis(120));
    let probe = client.query(90.0, None, &request("breaker-user"), &QueryKind::NextBus);
    assert!(probe.is_err(), "{probe:?}");

    let stats = client.finish();
    assert!(stats.breaker_opens >= 2, "{stats:?}");
    assert_eq!(stats.breaker_half_opens, 1, "{stats:?}");
    assert!(stats.breaker_fast_fails >= 1, "{stats:?}");
    assert!(stats.hinted >= 2, "drain bounces carry hints: {stats:?}");
    assert_eq!(stats.breaker_closes, 0, "nothing recovered while draining");
    handle.shutdown();
}

/// Hedged reads: against a server that drops replies, the retrying client
/// first learns a p99 from answered queries, then abandons a dropped
/// reply at the hedge timeout instead of burning the full attempt
/// timeout — and every query is still answered exactly once.
#[test]
fn hedged_reads_cut_losses_on_dropped_replies() {
    let plan = FaultPlan {
        seed: 23,
        drop: 0.2,
        ..FaultPlan::none()
    };
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .faults(plan)
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let policy = RetryPolicy {
        max_attempts: 8,
        base_delay_ms: 1,
        max_delay_ms: 4,
        attempt_timeout_ms: 150,
        jitter: 0.0,
        hedge: true,
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::new(handle.addr().to_string(), policy, 9).unwrap();
    let rounds = 60;
    for k in 0..rounds {
        let response = client
            .query(
                k as f64 * 30.0,
                None,
                &request("hedge-user"),
                &QueryKind::NextBus,
            )
            .unwrap();
        assert_eq!(response.answers.len(), 2);
    }
    let stats = client.finish();
    assert!(
        stats.hedges >= 1,
        "a 20% drop rate over {rounds} rounds must hedge at least once: {stats:?}"
    );

    let report = handle.shutdown();
    assert!(report.stats.faults.dropped >= 1, "{:?}", report.stats);
    assert_eq!(
        report.log.requests_of("hedge-user").len(),
        rounds,
        "hedged retries reuse the idempotent id — recorded exactly once"
    );
}

/// Graceful drain with durability: every query already accepted keeps its
/// answer, new work is turned away with hints, and after the drain the
/// on-disk store is digest-identical to an oracle store fed the same
/// records in-process — nothing acknowledged is lost or reordered.
#[test]
fn drain_answers_inflight_work_and_store_matches_the_oracle() {
    let store_dir = scratch_dir("drain-store");
    let oracle_dir = scratch_dir("drain-oracle");
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .workers(1)
            .worker_delay(Some(Duration::from_millis(20)))
            .store(Some(LogStoreConfig::new(&store_dir)))
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let mut pipe = Pipe::connect(handle.addr());

    // Queue up work, then drain while most of it is still pending. The
    // first answer is the synchronization point: the connection's reader
    // thread enqueues strictly in order, so by the time the 20 ms worker
    // has answered query 0 the whole pipelined burst is in the queue.
    let burst = 8u64;
    for id in 0..burst {
        pipe.send(id, id as f64 * 30.0, None, "drain-user");
    }
    let first = pipe.read_frame();
    assert!(matches!(first, ServerFrame::Answer { .. }), "{first:?}");
    assert!(!handle.is_draining());
    let report = handle.drain(Duration::from_secs(5));

    // Every accepted query was answered before the stop.
    for _ in 1..burst {
        let frame = pipe.read_frame();
        assert!(
            matches!(frame, ServerFrame::Answer { .. }),
            "drain must answer queued work: {frame:?}"
        );
    }
    assert_eq!(report.stats.requests, burst);
    assert_eq!(report.log.requests_of("drain-user").len(), burst as usize);

    // The drained store equals an oracle fed the identical records.
    let (mut oracle, _info) = LogStore::open(LogStoreConfig::new(&oracle_dir)).unwrap();
    for id in 0..burst {
        oracle
            .append(StoreRecord {
                t: id as f64 * 30.0,
                seq: id,
                request_id: Some(id),
                request: request("drain-user"),
            })
            .unwrap();
    }
    oracle.flush().unwrap();
    let mut expected = oracle.stream_digests();
    expected.sort();
    let (drained, _info) = LogStore::open(LogStoreConfig::new(&store_dir)).unwrap();
    let mut got = drained.stream_digests();
    got.sort();
    assert_eq!(got, expected, "drained store diverged from the oracle");

    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
}

/// Drain mode at the accept gate: a server in drain turns new connections
/// away with a hinted `Busy` — visible even to a v4 binary dialer, whose
/// auto-detecting reader must parse the pre-handshake JSON bounce.
#[test]
fn draining_accept_gate_bounces_new_connections_with_hints() {
    let handle = spawn(
        ServeOptions::new().addr("127.0.0.1:0").build().unwrap(),
        pois(),
    )
    .unwrap();
    handle.start_drain();
    assert!(handle.is_draining());

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Dial exactly like a v4 client: magic, then a binary Hello. The
    // server may already have closed after writing Busy, so the writes
    // are allowed to fail.
    let _ = stream.write_all(&BINARY_MAGIC);
    let hello = codec::encode_client_frame(
        &ClientFrame::Hello {
            version: PROTOCOL_VERSION,
        },
        Transport::Binary,
    )
    .unwrap();
    let _ = stream.write_all(&hello);
    let mut reader = codec::FrameReader::auto(stream, DEFAULT_MAX_FRAME_BYTES);
    let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
        panic!("expected a pre-handshake Busy frame");
    };
    match codec::decode_server_frame(&raw).unwrap() {
        ServerFrame::Busy { retry_after_ms, .. } => {
            assert!(retry_after_ms.is_some_and(|ms| ms >= 1))
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    let stats = handle.shutdown().stats;
    assert!(stats.busy_rejects >= 1, "{stats:?}");
}
