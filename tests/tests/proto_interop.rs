//! Cross-version protocol interop: a v3 JSON client, a v4 binary client
//! and a batching v4 client must all extract byte-identical answer
//! streams from the same server — and a v4 client dialing a v3-pinned
//! server must fall back and still match. "Identical" is checked against
//! an in-process oracle that replays the loadgen's exact request
//! generation through [`answer_request`] with no server in the way, so a
//! transport bug cannot hide behind a matching-but-wrong pair of runs.

use dummyloc_core::client::Client as CoreClient;
use dummyloc_core::generator::{DummyGenerator, MnGenerator, NoDensity};
use dummyloc_geo::rng::{derive_seed, rng_from_seed};
use dummyloc_lbs::provider::answer_request;
use dummyloc_lbs::{PoiDatabase, QueryKind};
use dummyloc_mobility::{RickshawConfig, RickshawModel};
use dummyloc_server::client::ClientBuilder;
use dummyloc_server::loadgen::{self, LoadgenConfig};
use dummyloc_server::{ProtoVersion, ServeOptions};

fn pois() -> PoiDatabase {
    let area = dummyloc_geo::BBox::new(
        dummyloc_geo::Point::new(0.0, 0.0),
        dummyloc_geo::Point::new(2000.0, 2000.0),
    )
    .unwrap();
    PoiDatabase::generate(area, 120, 42)
}

fn loadgen_config(addr: String, proto: ProtoVersion, batch: usize) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        users: 4,
        rounds: 10,
        seed: 7,
        query: QueryKind::NearestPoi { category: None },
        proto,
        batch,
        ..LoadgenConfig::default()
    }
}

/// Replays the loadgen's request generation (same fleet, same derived RNG
/// streams, same MN generator) against [`answer_request`] directly and
/// folds each user's answers with the same FNV-1a digest the report uses.
fn oracle_digests(cfg: &LoadgenConfig, pois: &PoiDatabase) -> Vec<String> {
    let fnv1a_fold = |mut h: u64, bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    };
    let model = RickshawModel::new(RickshawConfig::nara(), derive_seed(cfg.seed, 1_000_003));
    let duration = cfg.rounds as f64 * cfg.tick;
    let fleet = model.generate_fleet(cfg.seed, cfg.users, 0.0, duration);
    fleet
        .tracks()
        .iter()
        .enumerate()
        .map(|(user, track)| {
            let area = RickshawConfig::nara().area;
            let generator: Box<dyn DummyGenerator> =
                Box::new(MnGenerator::new(area, cfg.m).unwrap());
            let mut rng = rng_from_seed(derive_seed(cfg.seed, user as u64));
            let mut client = CoreClient::new(track.id().to_string(), generator, cfg.dummy_count);
            let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
            for k in 0..cfg.rounds {
                let t = k as f64 * cfg.tick;
                let pos = track.position_at(t).unwrap();
                let round = if k == 0 {
                    client.begin(&mut rng, pos)
                } else {
                    client.step(&mut rng, pos, &NoDensity)
                }
                .unwrap();
                let response = answer_request(pois, t, &round.request, &cfg.query);
                let rendered = serde_json::to_string(&response).unwrap();
                digest = fnv1a_fold(digest, rendered.as_bytes());
            }
            format!("{digest:016x}")
        })
        .collect()
}

/// One v4 server; a v3 lockstep client, a v4 lockstep client and a v4
/// batching client (batch 7 does not divide 10 — the tail group is
/// short) all produce the oracle's digests.
#[test]
fn all_protocol_shapes_match_the_oracle_against_a_v4_server() {
    let handle = dummyloc_server::spawn(ServeOptions::new().build().unwrap(), pois()).unwrap();
    let addr = handle.addr().to_string();
    let expected = oracle_digests(
        &loadgen_config(addr.clone(), ProtoVersion::V4Binary, 1),
        &pois(),
    );

    for (proto, batch) in [
        (ProtoVersion::V3Json, 1),
        (ProtoVersion::V4Binary, 1),
        (ProtoVersion::V4Binary, 7),
    ] {
        let cfg = loadgen_config(addr.clone(), proto, batch);
        let report = loadgen::run(&cfg).unwrap();
        assert_eq!(report.user_errors, 0, "{proto} batch={batch}");
        assert_eq!(
            report.answered,
            (cfg.users * cfg.rounds) as u64,
            "{proto} batch={batch}"
        );
        assert_eq!(
            report.per_user_digest, expected,
            "{proto} batch={batch} diverged from the in-process oracle"
        );
    }
    handle.shutdown();
}

/// A v3-pinned server refuses the binary opening; the v4 client falls
/// back to v3 JSON transparently and still matches the oracle — batched,
/// which on the JSON wire means a pipelined group of Query frames.
#[test]
fn v4_client_falls_back_against_a_v3_pinned_server_and_matches_the_oracle() {
    let handle = dummyloc_server::spawn(
        ServeOptions::new()
            .max_proto(ProtoVersion::V3Json)
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // The negotiated connection really is v3 after the fallback.
    let svc = ClientBuilder::new(addr.clone())
        .proto(ProtoVersion::V4Binary)
        .connect()
        .unwrap();
    assert_eq!(svc.proto(), ProtoVersion::V3Json);
    drop(svc);

    let cfg = loadgen_config(addr, ProtoVersion::V4Binary, 4);
    let expected = oracle_digests(&cfg, &pois());
    let report = loadgen::run(&cfg).unwrap();
    assert_eq!(report.user_errors, 0);
    assert_eq!(report.answered, (cfg.users * cfg.rounds) as u64);
    assert_eq!(report.per_user_digest, expected);
    handle.shutdown();
}
