//! Integration: workload serialization round trips and whole-pipeline
//! determinism (the reproducibility contract of `EXPERIMENTS.md`).

use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::workload;
use dummyloc_trajectory::io;

#[test]
fn fleet_csv_round_trip_preserves_simulation_results() {
    let fleet = workload::nara_fleet_sized(8, 300.0, 21);
    let mut buf = Vec::new();
    io::write_csv(&fleet, &mut buf).unwrap();
    let restored = io::read_csv(buf.as_slice()).unwrap();
    assert_eq!(fleet, restored);

    // Running the engine over the restored fleet gives identical metrics.
    let config = SimConfig {
        grid_size: 10,
        dummy_count: 3,
        generator: GeneratorKind::Mn { m: 100.0 },
        ..SimConfig::nara_default(21)
    };
    let a = Simulation::new(config).unwrap().run(&fleet).unwrap();
    let b = Simulation::new(config).unwrap().run(&restored).unwrap();
    assert_eq!(a.f_series, b.f_series);
    assert_eq!(a.shift_buckets, b.shift_buckets);
}

#[test]
fn fleet_json_round_trip() {
    let fleet = workload::nara_fleet_sized(5, 120.0, 22);
    let mut buf = Vec::new();
    io::write_json(&fleet, &mut buf).unwrap();
    let restored = io::read_json(buf.as_slice()).unwrap();
    assert_eq!(fleet, restored);
}

/// Poisoned-fixture regression: corrupted external traces (NaN samples,
/// absurd out-of-range coordinates) must be rejected with typed errors at
/// ingest, never silently propagate into the geometry.
#[test]
fn poisoned_fixtures_are_rejected_with_typed_errors() {
    use dummyloc_trajectory::TrajectoryError;

    let csv = include_str!("../fixtures/poisoned.csv");
    let err = io::read_csv(csv.as_bytes()).unwrap_err();
    assert!(
        matches!(
            &err,
            TrajectoryError::InvalidValue { line: 4, field: "x coordinate", value } if value == "NaN"
        ),
        "{err}"
    );

    let json = include_str!("../fixtures/poisoned.json");
    let err = io::read_json(json.as_bytes()).unwrap_err();
    assert!(
        matches!(&err, TrajectoryError::OutOfRange { id, index: 1 } if id == "rickshaw-2"),
        "{err}"
    );
}

#[test]
fn experiments_are_seed_deterministic() {
    use dummyloc_sim::experiments::{fig7, fig8};
    let fleet = workload::nara_fleet_sized(8, 300.0, 23);
    let params = fig7::Fig7Params {
        grids: vec![8],
        dummy_counts: vec![0, 3],
        ..fig7::Fig7Params::default()
    };
    assert_eq!(
        fig7::run(5, &fleet, &params).unwrap(),
        fig7::run(5, &fleet, &params).unwrap()
    );
    assert_ne!(
        fig7::run(5, &fleet, &params).unwrap(),
        fig7::run(6, &fleet, &params).unwrap()
    );
    let p8 = fig8::Fig8Params {
        grid: 8,
        ..fig8::Fig8Params::default()
    };
    assert_eq!(
        fig8::run(5, &fleet, &p8).unwrap(),
        fig8::run(5, &fleet, &p8).unwrap()
    );
}

#[test]
fn experiment_results_serialize_to_json() {
    use dummyloc_sim::experiments::{fig2, table1};
    use dummyloc_sim::report::to_json;
    let t1 = table1::run(&table1::Table1Params::default()).unwrap();
    let json = to_json(&t1).unwrap();
    assert!(json.contains("\"rows\""));
    let f2 = fig2::run().unwrap();
    let json = to_json(&f2).unwrap();
    assert!(json.contains("as_f_example"));
    // And parse back as generic JSON.
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["as_f_example"], 9);
}

#[test]
fn different_workload_seeds_change_tracks_not_shapes() {
    // Reproducibility sanity: two different fleet seeds give different
    // trajectories but the same qualitative Figure-7 ordering.
    for seed in [31u64, 32] {
        let fleet = workload::nara_fleet_sized(12, 300.0, seed);
        let f = |dummies: usize| {
            let config = SimConfig {
                grid_size: 10,
                dummy_count: dummies,
                generator: GeneratorKind::Mn { m: 120.0 },
                ..SimConfig::nara_default(seed)
            };
            Simulation::new(config).unwrap().run(&fleet).unwrap().mean_f
        };
        assert!(f(6) > f(0), "seed {seed}: dummies must raise F");
    }
    assert_ne!(
        workload::nara_fleet_sized(12, 300.0, 31),
        workload::nara_fleet_sized(12, 300.0, 32)
    );
}
