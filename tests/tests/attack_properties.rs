//! The adversary subsystem's contract, enforced end to end:
//!
//! 1. **Consistent dummies are safe**: when every candidate in a stream
//!    moves plausibly, the pipeline cannot beat the `1/(k+1)` chance
//!    floor — its guess degenerates to a deterministic tie-break, so the
//!    identification rate over shuffled streams sits at chance.
//! 2. **Teleporting dummies are shredded**: dummies that jump around the
//!    area violate the velocity gate almost every round, and the
//!    pipeline finds the one smooth walker nearly always.
//! 3. **Attack experiments are schedule-independent**: every `attack-*`
//!    registry entry renders byte-identical reports at 1 and 4 threads.
//!
//! Rate assertions use wide statistical margins (hundreds of independent
//! streams, tolerances several sigma out) so the suite never flakes;
//! per-stream invariants (costs, gate counts) are exact and also checked
//! under proptest-generated seeds.

use std::sync::Mutex;

use dummyloc_attack::{AttackConfig, PipelineTracker};
use dummyloc_core::client::Request;
use dummyloc_geo::rng::{derive_seed, rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Point};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::Rng;

/// Serializes tests that mutate the process-wide default thread count.
static KNOB: Mutex<()> = Mutex::new(());

const ROUNDS: usize = 12;

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).expect("static bounds")
}

/// A plausible mover: uniform start, each step at most `step` meters per
/// axis (≈ MN's `±m` box), clamped to the area. Steps stay well under
/// both the velocity gate and the turn gate's minimum step.
fn smooth_walk(rng: &mut impl Rng, step: f64) -> Vec<Point> {
    let area = area();
    let mut at = sample_uniform(rng, &area);
    (0..ROUNDS)
        .map(|_| {
            let next = Point::new(
                at.x + rng.gen_range(-step..step),
                at.y + rng.gen_range(-step..step),
            );
            at = area.clamp(next);
            at
        })
        .collect()
}

/// A teleporting dummy: an independent uniform position every round
/// (mean jump ≈ 1 km, far beyond any plausible mover).
fn teleporter(rng: &mut impl Rng) -> Vec<Point> {
    let area = area();
    (0..ROUNDS).map(|_| sample_uniform(rng, &area)).collect()
}

/// Interleaves one truth walk with `k` dummy tracks, shuffling the slot
/// order independently every round (as the client does). Returns the
/// requests plus the truth's slot in the final round.
fn build_stream(
    truth: Vec<Point>,
    dummies: Vec<Vec<Point>>,
    rng: &mut impl Rng,
) -> (Vec<Request>, usize) {
    let mut tracks = vec![truth];
    tracks.extend(dummies);
    let mut order: Vec<usize> = (0..tracks.len()).collect();
    let mut final_truth = 0;
    let requests = (0..ROUNDS)
        .map(|t| {
            order.shuffle(rng);
            final_truth = order.iter().position(|&w| w == 0).expect("truth present");
            Request {
                pseudonym: "p".into(),
                positions: order.iter().map(|&w| tracks[w][t]).collect(),
            }
        })
        .collect();
    (requests, final_truth)
}

/// Runs `streams` independent synthetic streams and returns the
/// identification rate plus the mean fraction of chains that survived
/// the plausibility gates.
fn identification_rate(k: usize, streams: usize, seed: u64, teleport: bool) -> (f64, f64) {
    let pipeline = PipelineTracker::new(AttackConfig::nara_default());
    let mut hits = 0;
    let mut plausible_share = 0.0;
    for s in 0..streams {
        let mut rng = rng_from_seed(derive_seed(seed, s as u64));
        let truth = smooth_walk(&mut rng, 120.0);
        let dummies: Vec<Vec<Point>> = (0..k)
            .map(|_| {
                if teleport {
                    teleporter(&mut rng)
                } else {
                    smooth_walk(&mut rng, 120.0)
                }
            })
            .collect();
        let (requests, truth_slot) = build_stream(truth, dummies, &mut rng);
        let verdict = pipeline.verdict(&requests).expect("non-empty stream");
        plausible_share += verdict.plausible as f64 / verdict.candidates as f64;
        if verdict.path.final_index == truth_slot {
            hits += 1;
        }
    }
    (
        hits as f64 / streams as f64,
        plausible_share / streams as f64,
    )
}

#[test]
fn consistent_dummies_hold_the_pipeline_at_chance() {
    for k in [1usize, 3] {
        let chance = 1.0 / (k + 1) as f64;
        let (rate, plausible) = identification_rate(k, 200, 0xC0FFEE + k as u64, false);
        // Binomial sd at n=200 is ≤ 0.036; a 0.12 band is > 3 sigma.
        assert!(
            (rate - chance).abs() < 0.12,
            "k={k}: rate {rate} should sit at chance {chance}"
        );
        // Smooth walkers survive the gates except for the rare crossing
        // that the Hungarian linker momentarily mislinks.
        assert!(
            plausible > 0.9,
            "k={k}: only {plausible} of smooth chains survived the gates"
        );
    }
}

#[test]
fn teleporting_dummies_are_identified_almost_surely() {
    for k in [1usize, 3] {
        let (rate, plausible) = identification_rate(k, 100, 0xBADD + k as u64, true);
        assert!(rate >= 0.9, "k={k}: rate {rate} should be >= 0.9");
        // The gates must be doing the work, not just the Viterbi scores:
        // most teleporting chains die before scoring.
        assert!(
            plausible < 0.7,
            "k={k}: {plausible} of chains survived despite teleporting dummies"
        );
    }
}

#[test]
fn attack_experiments_are_thread_count_invariant() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let registry = dummyloc_ext::experiments::registry_with_extensions();
    let fleet = dummyloc_sim::workload::nara_fleet_sized(6, 300.0, 9);
    let attack_names: Vec<&str> = registry
        .names()
        .into_iter()
        .filter(|n| n.starts_with("attack-"))
        .collect();
    assert_eq!(attack_names.len(), 4, "all four attack sweeps registered");

    let run_at = |threads: usize| {
        dummyloc_core::pool::set_default_threads(threads);
        let reports: Vec<_> = registry
            .iter()
            .filter(|e| e.name().starts_with("attack-"))
            .map(|e| (e.name(), e.run(9, &fleet).unwrap()))
            .collect();
        dummyloc_core::pool::set_default_threads(0);
        reports
    };
    let serial = run_at(1);
    let parallel = run_at(4);
    for ((name, a), (name_p, b)) in serial.iter().zip(&parallel) {
        assert_eq!(name, name_p);
        assert_eq!(a.rendered, b.rendered, "{name}: rendered at 4 threads");
        assert_eq!(a.json, b.json, "{name}: JSON sidecar at 4 threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-stream invariants under arbitrary seeds: an all-smooth
    /// candidate set always decodes at zero Viterbi cost with a zero
    /// margin (no candidate is distinguishable), and adding a teleporter
    /// always trips the gates.
    #[test]
    fn gates_separate_walkers_from_teleporters(seed in any::<u64>(), k in 1usize..=4) {
        let pipeline = PipelineTracker::new(AttackConfig::nara_default());
        let mut rng = rng_from_seed(seed);

        let all_smooth: Vec<Vec<Point>> = (0..k).map(|_| smooth_walk(&mut rng, 120.0)).collect();
        let (requests, _) = build_stream(smooth_walk(&mut rng, 120.0), all_smooth, &mut rng);
        let verdict = pipeline.verdict(&requests).expect("non-empty");
        prop_assert!(verdict.plausible >= 1);
        prop_assert_eq!(verdict.path.cost, 0.0);
        prop_assert_eq!(verdict.path.margin, 0.0);

        let mut dummies: Vec<Vec<Point>> = (0..k - 1).map(|_| smooth_walk(&mut rng, 120.0)).collect();
        dummies.push(teleporter(&mut rng));
        let (requests, _) = build_stream(smooth_walk(&mut rng, 120.0), dummies, &mut rng);
        let verdict = pipeline.verdict(&requests).expect("non-empty");
        // The teleporter (at least) is gated out before scoring.
        prop_assert!(verdict.plausible <= k);
        prop_assert!(verdict.gated || verdict.plausible == 0);
    }
}
