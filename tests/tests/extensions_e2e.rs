//! End-to-end integration of the extension crate with the full pipeline:
//! street dummies vs the map-equipped observer over the real rickshaw
//! workload, pseudonym rotation over real sessions, and noisy-GPS runs.

use dummyloc_core::adversary::{Adversary, ChainScore, ContinuityTracker};
use dummyloc_core::generator::{DummyGenerator, MnGenerator};
use dummyloc_ext::map_adversary::MapFilter;
use dummyloc_ext::mix_zones::relink_rate;
use dummyloc_ext::optimal_tracker::OptimalTracker;
use dummyloc_ext::session::{run, Rotation, SessionConfig};
use dummyloc_ext::street_dummies::StreetDummyGenerator;
use dummyloc_geo::rng::rng_from_seed;
use dummyloc_mobility::StreetGrid;
use dummyloc_sim::workload;

fn fleet() -> dummyloc_trajectory::Dataset {
    workload::nara_fleet_sized(14, 900.0, 51)
}

fn rate(adv: &dyn Adversary, streams: &[(Vec<dummyloc_core::client::Request>, usize)]) -> f64 {
    let mut rng = rng_from_seed(99);
    dummyloc_core::adversary::identification_rate(adv, &mut rng, streams)
}

#[test]
fn map_observer_separates_free_space_from_street_dummies() {
    let config = SessionConfig::nara_default(3);
    let area = config.area;
    let map = MapFilter::new(StreetGrid::new(area, 100.0), 5.0);

    let mn_streams = run(&fleet(), &config, |_| {
        Box::new(MnGenerator::new(area, 60.0).expect("valid m")) as Box<dyn DummyGenerator>
    })
    .into_streams();
    let street_streams = run(&fleet(), &config, |_| {
        Box::new(StreetDummyGenerator::new(
            StreetGrid::new(area, 100.0),
            (45.0, 120.0),
        )) as Box<dyn DummyGenerator>
    })
    .into_streams();

    let mn_rate = rate(&map, &mn_streams);
    let street_rate = rate(&map, &street_streams);
    assert!(
        mn_rate > street_rate + 0.2,
        "map observer: mn {mn_rate} should clearly beat street {street_rate}"
    );
    assert!(
        street_rate < 0.5,
        "street dummies too traceable: {street_rate}"
    );
}

#[test]
fn optimal_tracker_dominates_greedy_on_oversized_mn() {
    // m = 240 makes dummy steps conspicuously larger than real movement;
    // the scale-normalized optimal linker should exploit it at least as
    // well as the greedy one.
    let config = SessionConfig::nara_default(5);
    let area = config.area;
    let streams = run(&fleet(), &config, |_| {
        Box::new(MnGenerator::new(area, 240.0).expect("valid m")) as Box<dyn DummyGenerator>
    })
    .into_streams();
    let greedy = rate(&ContinuityTracker::new(ChainScore::MaxStep), &streams);
    let optimal = rate(&OptimalTracker::new(ChainScore::MaxStep), &streams);
    assert!(
        optimal + 0.15 >= greedy,
        "optimal {optimal} materially below greedy {greedy}"
    );
    assert!(
        optimal > 0.25,
        "oversized dummies should be exploitable, got {optimal}"
    );
}

#[test]
fn rotation_with_silence_defeats_relinking_on_real_sessions() {
    let mut config = SessionConfig::nara_default(7);
    config.dummies = 3;
    config.rotation = Some(Rotation {
        period: 8,
        silent_rounds: 0,
    });
    let area = config.area;
    let mn = move |_: usize| {
        Box::new(MnGenerator::new(area, 120.0).expect("valid m")) as Box<dyn DummyGenerator>
    };
    let loud = relink_rate(&run(&fleet(), &config, mn));
    config.rotation = Some(Rotation {
        period: 8,
        silent_rounds: 6,
    });
    let silent = relink_rate(&run(&fleet(), &config, mn));
    assert!(
        silent < loud,
        "silence must reduce re-linking: loud {loud}, silent {silent}"
    );
}

#[test]
fn noisy_gps_does_not_break_the_pipeline() {
    use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
    use dummyloc_trajectory::noise::add_gps_noise_dataset;
    let clean = fleet();
    let area = SimConfig::nara_default(1).area;
    let mut rng = rng_from_seed(13);
    let noisy = add_gps_noise_dataset(&clean, 5.0, Some(area), &mut rng);
    let config = SimConfig {
        grid_size: 12,
        dummy_count: 3,
        generator: GeneratorKind::Mn { m: 120.0 },
        ..SimConfig::nara_default(1)
    };
    let out_clean = Simulation::new(config).unwrap().run(&clean).unwrap();
    let out_noisy = Simulation::new(config).unwrap().run(&noisy).unwrap();
    // 5 m of noise on a 167 m grid barely moves the metrics.
    assert!((out_clean.mean_f - out_noisy.mean_f).abs() < 0.05);
    assert_eq!(out_clean.rounds, out_noisy.rounds);
}

#[test]
fn street_dummies_match_rickshaw_speed_statistics() {
    // The whole point of street dummies: their per-round displacement
    // distribution overlaps the real rickshaws'. Compare medians.
    let config = SessionConfig::nara_default(9);
    let area = config.area;
    let f = fleet();
    let streams = run(&f, &config, |_| {
        Box::new(StreetDummyGenerator::new(
            StreetGrid::new(area, 100.0),
            (45.0, 120.0),
        )) as Box<dyn DummyGenerator>
    })
    .into_streams();
    // Collect per-round displacements of linked chains: truth chain vs
    // dummy chains should live in the same range.
    let (chains, _) = OptimalTracker::build_chains_with_history(&streams[0].0);
    let mut maxima: Vec<f64> = chains
        .iter()
        .map(|c| c.steps.iter().copied().fold(0.0f64, f64::max))
        .collect();
    maxima.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // No chain (dummy or truth) tops the rickshaw physical max of 120
    // m/round.
    assert!(*maxima.last().unwrap() <= 120.0 + 1e-6, "{maxima:?}");
}
