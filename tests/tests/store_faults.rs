//! Per-syscall fault injection over every durability path.
//!
//! The [`FaultVfs`] counts every filesystem syscall the store, WAL and
//! checkpoint writer issue. For each *window* — a memtable flush, an
//! explicit compaction's manifest commit, a WAL append, a size-tiered
//! compaction cycle, a checkpoint rewrite — a fault-free probe run
//! measures how many syscalls the window takes, and the matrix then
//! replays the identical workload once per `(syscall index, fault kind)`
//! cell, injecting `EIO`, `ENOSPC`, `EINTR`, a short write, or a power
//! cut at exactly that syscall.
//!
//! The contract under fire, for every cell:
//!
//! * the faulted operation returns a **typed error** (or succeeds) —
//!   it never panics;
//! * after a simulated crash+restart (`revive` + reopen from the synced
//!   image) the observable state is **byte-equal** to one of exactly two
//!   oracles: the state just before the operation, or the state after
//!   it succeeded — no third, silently-diverged state exists;
//! * recovery itself is clean — a second reopen finds zero orphans.
//!
//! `CHECK_STRESS=1` walks the full matrix; the default gate walks a
//! seeded 32-cell sample per window (`sample_faults`), so CI stays fast
//! while nightly stress covers every cell.

use std::path::Path;
use std::sync::Arc;

use dummyloc_core::client::Request;
use dummyloc_geo::Point;
use dummyloc_server::wal::{self, WalConfig, WalWriter};
use dummyloc_server::FsyncPolicy;
use dummyloc_sim::engine::SimConfig;
use dummyloc_sim::{workload, CheckpointSpec, ParallelEngine, SimCheckpoint};
use dummyloc_store::digest::{fold_report, FNV_OFFSET_BASIS};
use dummyloc_store::vfs::{sample_faults, FaultKind, FaultVfs, Vfs, FAULT_KINDS};
use dummyloc_store::{LogStore, LogStoreConfig, Storage, StoreError, StoreRecord};
use proptest::prelude::*;

const STORE_DIR: &str = "/store";
const WAL_PATH: &str = "/wal.log";

fn rec(pseudonym: &str, seq: u64) -> StoreRecord {
    StoreRecord {
        t: seq as f64 * 30.0,
        seq,
        request_id: Some(seq),
        request: Request {
            pseudonym: pseudonym.into(),
            positions: vec![
                Point::new(seq as f64, 0.5 * seq as f64),
                Point::new(1.0 + seq as f64, 2.0),
            ],
        },
    }
}

fn store_config(
    vfs: &FaultVfs,
    flush_threshold_bytes: usize,
    compact_tiers: usize,
) -> LogStoreConfig {
    LogStoreConfig {
        flush_threshold_bytes,
        compact_tiers,
        vfs: Arc::new(vfs.clone()),
        ..LogStoreConfig::new(STORE_DIR)
    }
}

/// Maps a store error to its typed description, panicking on the one
/// class a faulted syscall must never produce (`Config` means the store
/// misattributed an I/O failure).
fn typed(e: StoreError) -> String {
    match &e {
        StoreError::Io { .. } | StoreError::Corrupt { .. } => e.to_string(),
        StoreError::Config { .. } => panic!("fault surfaced as a config error: {e}"),
    }
}

/// Crash+restart observation of a store disk: revive to the synced
/// image, reopen (counting orphans), fingerprint digests and segment
/// layout, and prove a second reopen is clean.
fn observe_store(vfs: &FaultVfs) -> Vec<String> {
    vfs.revive();
    let (store, info) =
        LogStore::open(store_config(vfs, usize::MAX, 0)).expect("reopen after fault");
    let mut lines: Vec<String> = store
        .stream_digests()
        .into_iter()
        .map(|(p, d)| format!("{p} {d:016x}"))
        .collect();
    let stats = store.store_stats();
    lines.push(format!(
        "segments {} records {}",
        stats.segments, stats.durable_records
    ));
    drop(store);
    let (_, second) = LogStore::open(store_config(vfs, usize::MAX, 0)).expect("second reopen");
    assert_eq!(
        second.orphans_removed, 0,
        "first reopen must already have removed every orphan (got {info:?} then {second:?})"
    );
    lines
}

/// Crash+restart observation of a WAL disk: revive, replay (which also
/// truncates any torn tail), and fingerprint the surviving records.
fn observe_wal(vfs: &FaultVfs) -> Vec<String> {
    vfs.revive();
    let mut lines = Vec::new();
    wal::replay_vfs(vfs, Path::new(WAL_PATH), |r| {
        lines.push(format!("{} {}", r.request.pseudonym, r.seq));
    })
    .expect("replay after fault");
    // Replay truncated the tail; a second replay must be torn-free.
    let clean = wal::replay_vfs(vfs, Path::new(WAL_PATH), |_| {}).expect("second replay");
    assert!(!clean.torn, "replay left a torn tail behind");
    assert_eq!(clean.records as usize, lines.len());
    lines
}

/// The generic per-syscall matrix driver. `setup` builds identical
/// pre-state on a fresh virtual disk, `op` is the operation under fire
/// (its success/typed-failure is the first assertion), `observe` is the
/// crash+restart fingerprint. Every injected cell must land on the
/// pre-op or post-op oracle.
fn run_window<S>(
    name: &str,
    setup: &dyn Fn(&FaultVfs) -> S,
    op: &dyn Fn(&mut S) -> Result<(), String>,
    observe: &dyn Fn(&FaultVfs) -> Vec<String>,
) {
    // Probe: how many syscalls does the window span?
    let vfs = FaultVfs::new();
    let mut state = setup(&vfs);
    let base = vfs.op_count();
    op(&mut state).unwrap_or_else(|e| panic!("{name}: fault-free probe failed: {e}"));
    let window_ops = vfs.op_count() - base;
    assert!(window_ops > 0, "{name}: window issued no syscalls");

    // Oracles: crash right before the op, and right after it succeeded.
    let vfs = FaultVfs::new();
    drop(setup(&vfs));
    let pre = observe(&vfs);
    let vfs = FaultVfs::new();
    let mut state = setup(&vfs);
    op(&mut state).unwrap_or_else(|e| panic!("{name}: oracle op failed: {e}"));
    drop(state);
    let post = observe(&vfs);

    let cells: Vec<(u64, FaultKind)> = if std::env::var("CHECK_STRESS").is_ok() {
        (0..window_ops)
            .flat_map(|i| FAULT_KINDS.iter().map(move |k| (i, *k)))
            .collect()
    } else {
        sample_faults(0xFA17 ^ name.len() as u64, window_ops, 32)
    };
    assert!(!cells.is_empty(), "{name}: empty fault schedule");
    eprintln!(
        "{name}: window spans {window_ops} syscalls; injecting {} of {} matrix cells",
        cells.len(),
        window_ops * FAULT_KINDS.len() as u64,
    );

    for (i, kind) in cells {
        let vfs = FaultVfs::new();
        let mut state = setup(&vfs);
        vfs.inject(vfs.op_count() + i, kind);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(&mut state)));
        let outcome = match outcome {
            Ok(r) => r,
            Err(_) => panic!("{name}: op PANICKED with {kind:?} at window syscall {i}"),
        };
        drop(state);
        let got = observe(&vfs);
        assert!(
            got == pre || got == post,
            "{name}: {kind:?} at window syscall {i} diverged from both oracles\n\
             op result: {outcome:?}\npre:  {pre:?}\npost: {post:?}\ngot:  {got:?}"
        );
    }
}

/// Window 1: a memtable flush (segment write + manifest commit).
#[test]
fn fault_matrix_flush() {
    run_window(
        "flush",
        &|vfs| {
            let (mut store, _) = LogStore::open(store_config(vfs, usize::MAX, 0)).unwrap();
            for seq in 0..6 {
                let p = ["alice", "bob", "carol"][seq as usize % 3];
                store.append(rec(p, seq)).unwrap();
            }
            store
        },
        &|store| store.flush().map(|_| ()).map_err(typed),
        &observe_store,
    );
}

/// Window 2: an explicit `compact()` — the manifest-swap commit point.
#[test]
fn fault_matrix_explicit_compact() {
    run_window(
        "compact",
        &|vfs| {
            let (mut store, _) = LogStore::open(store_config(vfs, usize::MAX, 0)).unwrap();
            for batch in 0..3u64 {
                for k in 0..4u64 {
                    let seq = batch * 4 + k;
                    let p = ["alice", "bob"][(seq % 2) as usize];
                    store.append(rec(p, seq)).unwrap();
                }
                store.flush().unwrap();
            }
            store
        },
        &|store| store.compact().map(|_| ()).map_err(typed),
        &observe_store,
    );
}

/// Window 3: one WAL append under `fsync always` (frame write + the
/// group-commit leader's sync).
#[test]
fn fault_matrix_wal_append() {
    run_window(
        "wal-append",
        &|vfs| {
            let config = WalConfig {
                fsync: FsyncPolicy::Always,
                vfs: Arc::new(vfs.clone()),
                ..WalConfig::new(WAL_PATH)
            };
            let mut writer = WalWriter::open(&config).unwrap();
            for seq in 0..3 {
                writer
                    .append(&wal::WalRecord {
                        t: seq as f64,
                        seq,
                        request_id: Some(seq),
                        request: rec("alice", seq).request,
                    })
                    .unwrap();
            }
            writer
        },
        &|writer| {
            writer
                .append(&wal::WalRecord {
                    t: 3.0,
                    seq: 3,
                    request_id: Some(3),
                    request: rec("alice", 3).request,
                })
                .map_err(|e| {
                    assert!(e.raw_os_error().is_some(), "untyped WAL error: {e}");
                    e.to_string()
                })
        },
        &observe_wal,
    );
}

/// Window 4: one full size-tiered compaction cycle — the exact
/// plan → merge → commit sequence the background compactor thread runs.
#[test]
fn fault_matrix_tiered_compaction() {
    run_window(
        "tiered",
        &|vfs| {
            let (mut store, _) = LogStore::open(store_config(vfs, usize::MAX, 3)).unwrap();
            let mut seq = 0u64;
            for _batch in 0..3 {
                for _ in 0..3 {
                    store.append(rec("alice", seq)).unwrap();
                    store.append(rec("bob", seq + 1)).unwrap();
                    seq += 2;
                }
                store.flush().unwrap();
            }
            assert_eq!(store.store_stats().segments, 3);
            store
        },
        &|store| {
            store
                .compact_tiered_once()
                .map(|out| assert!(out.is_some(), "full tier must produce a merge"))
                .map_err(typed)
        },
        &observe_store,
    );
}

/// Window 5: a checkpoint rewrite over an existing checkpoint. Any
/// fault in the tmp/fsync/rename dance must leave either the old or the
/// new checkpoint — decodable — at the target path.
#[test]
fn fault_matrix_checkpoint_rewrite() {
    // Capture two genuine consecutive checkpoints from a tiny run.
    let fleet = workload::nara_fleet_sized(3, 150.0, 7);
    let config = SimConfig::nara_default(7);
    let mut captured: Vec<SimCheckpoint> = Vec::new();
    let engine = ParallelEngine::from_simulation(dummyloc_sim::Simulation::new(config).unwrap(), 1);
    let mut sink = |c: &SimCheckpoint| {
        captured.push(c.clone());
        Ok(())
    };
    engine
        .run_session(
            &fleet,
            None,
            Some(CheckpointSpec {
                every: 1,
                sink: &mut sink,
            }),
        )
        .unwrap();
    assert!(
        captured.len() >= 2,
        "run too short to capture two checkpoints"
    );
    let (v1, v2) = (captured[0].clone(), captured[1].clone());
    let path = Path::new("/ckpt/latest.ckpt");

    run_window(
        "checkpoint",
        &|vfs| {
            vfs.create_dir_all(Path::new("/ckpt")).unwrap();
            v1.write_to_vfs(vfs, path).unwrap();
            (vfs.clone(), v2.clone())
        },
        &|(vfs, next)| next.write_to_vfs(vfs, path).map_err(|e| e.to_string()),
        &|vfs| {
            vfs.revive();
            let bytes = vfs.read(path).expect("checkpoint file survives any fault");
            let ckpt = SimCheckpoint::decode(&bytes).expect("surviving checkpoint decodes");
            vec![format!("rounds {}", ckpt.completed_rounds)]
        },
    );
}

/// Satellite: `scan_stream` over a store spanning several segments plus
/// a non-empty memtable must agree with `scan` record-for-record, stay
/// seq-ordered, and drop idempotent duplicates exactly once.
#[test]
fn scan_stream_spans_segments_and_memtable() {
    let vfs = FaultVfs::new();
    let (mut store, _) = LogStore::open(store_config(&vfs, usize::MAX, 0)).unwrap();
    let names = ["alice", "bob", "carol"];
    let mut seq = 0u64;
    for _batch in 0..3 {
        for k in 0..6u64 {
            store.append(rec(names[(k % 3) as usize], seq)).unwrap();
            seq += 1;
        }
        store.flush().unwrap();
    }
    // Memtable leftovers plus one duplicate that must be deduped.
    for k in 0..4u64 {
        store.append(rec(names[(k % 3) as usize], seq)).unwrap();
        seq += 1;
    }
    let dup = rec("alice", 0);
    assert!(!store.append(dup).unwrap().recorded, "duplicate must drop");
    assert_eq!(store.store_stats().segments, 3);
    assert!(store.store_stats().memtable_records > 0);

    for p in names {
        let streamed: Vec<StoreRecord> = store
            .scan_stream(p)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let scanned = store.scan(p).unwrap();
        assert_eq!(streamed, scanned, "{p}: stream and scan disagree");
        assert!(
            streamed.windows(2).all(|w| w[0].seq < w[1].seq),
            "{p}: stream not in strict seq order"
        );
        let mut h = FNV_OFFSET_BASIS;
        for r in &streamed {
            fold_report(&mut h, r.t, &r.request);
        }
        assert_eq!(
            store.stream_digest(p),
            Some(h),
            "{p}: digest of the streamed records diverges"
        );
    }
    // "alice" holds seqs 0,3,6,... — the duplicate did not append.
    let alice = store.scan("alice").unwrap();
    assert_eq!(alice.iter().filter(|r| r.seq == 0).count(), 1);
}

/// Applies one proptest-chosen interleaving of appends and flushes.
fn apply_ops(store: &mut LogStore, ops: &[(u8, bool)]) {
    let names = ["alice", "bob", "carol", "dave"];
    for (seq, (who, flush)) in ops.iter().enumerate() {
        store
            .append(rec(names[(*who % 4) as usize], seq as u64))
            .unwrap();
        if *flush {
            store.flush().unwrap();
        }
    }
    store.flush().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Explicit and tiered compaction are digest-invariant and
    /// idempotent for arbitrary append/flush interleavings.
    #[test]
    fn compaction_is_digest_invariant_and_idempotent(
        ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..40),
        tiered_first in any::<bool>(),
    ) {
        let vfs = FaultVfs::new();
        let (mut store, _) = LogStore::open(store_config(&vfs, usize::MAX, 2)).unwrap();
        apply_ops(&mut store, &ops);
        let before_digests = store.stream_digests();
        let before_snapshot = store.snapshot().unwrap();

        if tiered_first {
            while store.compact_tiered_once().unwrap().is_some() {}
        }
        store.compact().unwrap();
        prop_assert_eq!(&store.stream_digests(), &before_digests);
        prop_assert_eq!(&store.snapshot().unwrap(), &before_snapshot);

        // Idempotence: a second pass changes nothing further.
        let once = store.store_stats();
        store.compact().unwrap();
        prop_assert!(store.compact_tiered_once().unwrap().is_none());
        prop_assert_eq!(store.store_stats().segments, once.segments);
        prop_assert_eq!(&store.stream_digests(), &before_digests);

        // Reopen: the compacted image recovers to the same digests.
        drop(store);
        let (reopened, info) = LogStore::open(store_config(&vfs, usize::MAX, 2)).unwrap();
        prop_assert_eq!(info.orphans_removed, 0);
        prop_assert_eq!(&reopened.stream_digests(), &before_digests);
    }

    /// A faulted background compaction never damages the committed
    /// manifest: whatever syscall dies, the pre-compaction store stays
    /// readable with its digests intact.
    #[test]
    fn faulted_tiered_compaction_preserves_the_manifest(
        ops in prop::collection::vec((any::<u8>(), any::<bool>()), 8..32),
        fault_cell in any::<u64>(),
    ) {
        let vfs = FaultVfs::new();
        let (mut store, _) = LogStore::open(store_config(&vfs, usize::MAX, 2)).unwrap();
        apply_ops(&mut store, &ops);
        let before = store.stream_digests();
        if store.tiered_plan().is_none() {
            return Ok(()); // interleaving produced < 2 same-tier segments
        }

        let base = vfs.op_count();
        let kind = FAULT_KINDS[(fault_cell % FAULT_KINDS.len() as u64) as usize];
        vfs.inject(base + fault_cell % 24, kind);
        let _ = store.compact_tiered_once(); // typed Ok or Err, either way
        drop(store);

        vfs.revive();
        let (reopened, _) = LogStore::open(store_config(&vfs, usize::MAX, 2)).unwrap();
        prop_assert_eq!(reopened.stream_digests(), before);
    }
}
