//! Chaos integration tests for `dummyloc-server`: seeded fault injection
//! must be fully absorbed by the client retry loop — same answers, no
//! hung connections, every fault kind observable in the stats — and the
//! deadline / busy / idle-reap paths must each produce their typed
//! outcome exactly where designed.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dummyloc_core::client::Request;
use dummyloc_geo::{BBox, Point};
use dummyloc_lbs::{PoiDatabase, QueryKind};
use dummyloc_server::client::{QueryOutcome, RetryPolicy, RetryingClient, ServiceClient};
use dummyloc_server::proto::{write_frame, ClientFrame, ServerFrame, PROTOCOL_VERSION};
use dummyloc_server::server::spawn;
use dummyloc_server::{FaultPlan, LoadgenOptions, ServeOptions, ServerError};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

fn pois() -> PoiDatabase {
    PoiDatabase::generate(area(), 120, 42)
}

fn request(pseudonym: &str) -> Request {
    Request {
        pseudonym: pseudonym.to_string(),
        positions: vec![Point::new(100.0, 100.0), Point::new(900.0, 400.0)],
    }
}

/// A retry policy tuned for tests: fast attempts, fast backoff.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_delay_ms: 2,
        max_delay_ms: 20,
        attempt_timeout_ms: 250,
        jitter: 0.5,
        ..RetryPolicy::default()
    }
}

/// The acceptance gate for the whole fault layer: a loadgen run against a
/// hostile server (drops, delays, truncation, corruption, stalls, refused
/// accepts — all seeded) finishes with zero user errors, produces *the
/// same per-user answer digests* as the fault-free run, and every
/// injected fault kind shows up in the server's counters.
#[test]
fn chaos_run_is_invisible_to_users_and_fully_observable() {
    let users = 8;
    let rounds = 15;
    let loadgen_cfg = |addr: String| {
        LoadgenOptions::new()
            .addr(addr)
            .users(users)
            .rounds(rounds)
            .dummy_count(2)
            .seed(77)
            .retry(fast_retry())
            .build()
            .unwrap()
    };

    // Baseline: no faults.
    let clean = spawn(
        ServeOptions::new().addr("127.0.0.1:0").build().unwrap(),
        pois(),
    )
    .unwrap();
    let clean_report =
        dummyloc_server::loadgen::run(&loadgen_cfg(clean.addr().to_string())).unwrap();
    let clean_stats = clean.shutdown().stats;
    assert_eq!(clean_report.user_errors, 0);
    assert_eq!(clean_report.answered, (users * rounds) as u64);
    assert_eq!(clean_stats.faults, Default::default());

    // Hostile: every fault kind at a rate the deterministic pacers are
    // guaranteed to fire at least once for this traffic volume.
    let plan = FaultPlan {
        seed: 7,
        drop: 0.03,
        delay: 0.05,
        delay_ms: 2,
        truncate: 0.03,
        corrupt: 0.03,
        stall: 0.02,
        refuse_accept: 0.25,
    };
    let chaotic = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .faults(plan)
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let chaos_report =
        dummyloc_server::loadgen::run(&loadgen_cfg(chaotic.addr().to_string())).unwrap();
    let started = Instant::now();
    let chaos_stats = chaotic.shutdown().stats;
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown must not hang on stalled connections"
    );

    // Retries made every fault invisible: all queries answered, and the
    // answer streams are byte-identical to the fault-free run.
    assert_eq!(chaos_report.user_errors, 0, "{chaos_report:?}");
    assert_eq!(chaos_report.answered, (users * rounds) as u64);
    assert_eq!(
        chaos_report.per_user_digest, clean_report.per_user_digest,
        "faults must not change any user's answers"
    );
    assert!(chaos_report.retries > 0, "faults must have forced retries");

    // Every injected fault kind is observable in the stats.
    let f = &chaos_stats.faults;
    assert!(f.dropped >= 1, "faults: {f:?}");
    assert!(f.delayed >= 1, "faults: {f:?}");
    assert!(f.truncated >= 1, "faults: {f:?}");
    assert!(f.corrupted >= 1, "faults: {f:?}");
    assert!(f.stalled >= 1, "faults: {f:?}");
    assert!(f.refused_accepts >= 1, "faults: {f:?}");
    // Retried queries were deduplicated, never double-recorded.
    assert!(chaos_stats.dedup_hits > 0 || chaos_stats.requests >= (users * rounds) as u64);
}

/// Resending a request id replays the answer but records the request in
/// the observer log exactly once — the idempotency contract retries rely
/// on.
#[test]
fn retried_request_id_is_not_double_counted() {
    let handle = spawn(
        ServeOptions::new().addr("127.0.0.1:0").build().unwrap(),
        pois(),
    )
    .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    let req = request("retry-user");
    let query = QueryKind::NextBus;

    let first = client.query_with_id(7, 0.0, None, &req, &query).unwrap();
    let second = client.query_with_id(7, 0.0, None, &req, &query).unwrap();
    let (QueryOutcome::Answered(a), QueryOutcome::Answered(b)) = (first, second) else {
        panic!("both attempts must be answered");
    };
    assert_eq!(a, b, "a replayed id must produce the same answer");
    // A different id from the same pseudonym still records.
    client.query_with_id(8, 30.0, None, &req, &query).unwrap();
    client.bye().unwrap();

    let report = handle.shutdown();
    assert_eq!(report.stats.dedup_hits, 1);
    assert_eq!(
        report.log.requests_of("retry-user").len(),
        2,
        "ids 7 (once) and 8"
    );
}

/// With one slow worker and a burst of 1 ms deadlines, the first job dies
/// in flight (computed but expired before send) and the queued rest are
/// cancelled unworked — both observable, both answered with `Deadline`.
#[test]
fn deadline_expiry_splits_queued_from_inflight() {
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .workers(1)
            .worker_delay(Some(Duration::from_millis(40)))
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();

    // Raw socket so the queries can be pipelined back-to-back.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write_frame(
        &mut stream,
        &ClientFrame::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(
        serde_json::from_str(&line),
        Ok(ServerFrame::Hello { .. })
    ));

    let burst = 5;
    for id in 0..burst {
        write_frame(
            &mut stream,
            &ClientFrame::Query {
                id,
                t: 0.0,
                deadline_ms: Some(1),
                request: request("deadline-user"),
                query: QueryKind::NextBus,
            },
        )
        .unwrap();
    }
    stream.flush().unwrap();
    let mut deadline_replies = 0;
    for _ in 0..burst {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match serde_json::from_str::<ServerFrame>(&line).unwrap() {
            ServerFrame::Deadline { .. } => deadline_replies += 1,
            other => panic!("expected Deadline frames, got {other:?}"),
        }
    }
    assert_eq!(deadline_replies, burst);

    let report = handle.shutdown();
    assert!(
        report.stats.deadline_expired_inflight >= 1,
        "the job holding the worker expires in flight: {:?}",
        report.stats
    );
    assert!(
        report.stats.deadline_expired_queued >= 1,
        "jobs behind it are cancelled unworked: {:?}",
        report.stats
    );
    // Expired queries never reach the observer log.
    assert_eq!(report.log.requests_of("deadline-user").len(), 0);
}

/// Truncated and corrupted reply frames break the connection's framing;
/// the retrying client rebuilds and re-asks until every query is
/// answered, without double-recording any request.
#[test]
fn truncation_and_corruption_are_absorbed_by_retries() {
    let plan = FaultPlan {
        seed: 3,
        truncate: 0.25,
        corrupt: 0.25,
        ..FaultPlan::none()
    };
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .faults(plan)
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let mut client = RetryingClient::new(handle.addr().to_string(), fast_retry(), 11).unwrap();
    let rounds = 12;
    for k in 0..rounds {
        let response = client
            .query(
                k as f64 * 30.0,
                None,
                &request("mangled-user"),
                &QueryKind::NextBus,
            )
            .unwrap();
        assert_eq!(response.answers.len(), 2);
    }
    let retry_stats = client.finish();
    assert!(retry_stats.reconnects > 0, "{retry_stats:?}");

    let report = handle.shutdown();
    assert!(report.stats.faults.truncated >= 1, "{:?}", report.stats);
    assert!(report.stats.faults.corrupted >= 1, "{:?}", report.stats);
    assert_eq!(
        report.log.requests_of("mangled-user").len(),
        rounds,
        "every query recorded exactly once despite retries"
    );
}

/// Past `max_connections`, a new connection is turned away with a typed
/// `Busy` frame before the handshake; the slot frees on disconnect.
#[test]
fn accept_gate_answers_busy_at_the_cap() {
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .max_connections(1)
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let first = ServiceClient::connect(handle.addr()).unwrap();
    // Give the acceptor time to register the first connection.
    std::thread::sleep(Duration::from_millis(50));
    let second = ServiceClient::connect(handle.addr());
    match second {
        Err(ServerError::Busy {
            limit,
            retry_after_ms,
        }) => {
            assert_eq!(limit, 1);
            // Every accept-gate bounce carries a server-computed hint.
            assert!(retry_after_ms.is_some(), "Busy must carry retry_after_ms");
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    first.bye().unwrap();
    // The freed slot admits a new connection (poll briefly: the acceptor
    // decrements asynchronously).
    let mut reconnected = None;
    for _ in 0..50 {
        match ServiceClient::connect(handle.addr()) {
            Ok(c) => {
                reconnected = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(reconnected.is_some(), "slot must free after disconnect");
    drop(reconnected);

    let stats = handle.shutdown().stats;
    assert!(stats.busy_rejects >= 1, "{stats:?}");
}

/// A connection that goes quiet past the idle timeout is reaped with a
/// typed `IdleTimeout` error and counted.
#[test]
fn idle_connections_are_reaped() {
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .idle_timeout(Some(Duration::from_millis(80)))
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    // Stay active across one idle window: queries reset the timer.
    for k in 0..3 {
        client
            .query(k as f64, &request("idle-user"), &QueryKind::NextBus)
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
    }
    // Now go quiet long enough to be reaped.
    std::thread::sleep(Duration::from_millis(400));
    let late = client.query(99.0, &request("idle-user"), &QueryKind::NextBus);
    assert!(
        late.is_err(),
        "the reaped connection must be dead: {late:?}"
    );

    let stats = handle.shutdown().stats;
    assert_eq!(stats.idle_reaped, 1, "{stats:?}");
    assert_eq!(stats.requests, 3);
}

/// The idle reaper on the v4 binary transport: a binary connection that
/// exchanges real frames and then goes quiet is reaped exactly like a
/// JSON one — the earlier idle test rides `ServiceClient`, this one
/// drives the raw binary wire so the reap path is proven per transport.
#[test]
fn idle_reap_covers_the_binary_transport() {
    use dummyloc_server::codec::{self, RawEvent, Transport, BINARY_MAGIC};
    use dummyloc_server::proto::DEFAULT_MAX_FRAME_BYTES;
    use std::io::Write as _;

    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .idle_timeout(Some(Duration::from_millis(80)))
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(&BINARY_MAGIC).unwrap();
    let encode =
        |frame: &ClientFrame| codec::encode_client_frame(frame, Transport::Binary).unwrap();
    stream
        .write_all(&encode(&ClientFrame::Hello {
            version: PROTOCOL_VERSION,
        }))
        .unwrap();
    stream
        .write_all(&encode(&ClientFrame::Query {
            id: 1,
            t: 0.0,
            deadline_ms: None,
            request: request("binary-idle"),
            query: QueryKind::NextBus,
        }))
        .unwrap();
    stream.flush().unwrap();

    let mut reader = codec::FrameReader::auto(stream.try_clone().unwrap(), DEFAULT_MAX_FRAME_BYTES);
    let mut next = || match reader.next_frame().unwrap() {
        RawEvent::Frame(raw) => Some(codec::decode_server_frame(&raw).unwrap()),
        _ => None,
    };
    assert!(matches!(next(), Some(ServerFrame::Hello { .. })));
    assert!(matches!(next(), Some(ServerFrame::Answer { .. })));

    // Quiet past the idle window: the server must cut the connection.
    std::thread::sleep(Duration::from_millis(400));
    let reaped_at = Instant::now();
    // A pre-close typed error frame is fine; EOF / reset ends it.
    while let Ok(RawEvent::Frame(_)) = reader.next_frame() {}
    assert!(
        reaped_at.elapsed() < Duration::from_secs(5),
        "the reaped socket must reach EOF promptly"
    );

    let stats = handle.shutdown().stats;
    assert_eq!(stats.idle_reaped, 1, "{stats:?}");
    assert_eq!(stats.requests, 1);
}

/// The accept gate's pre-handshake `Busy` must be readable by a v4
/// binary dialer: the bounce goes out as a JSON line before any
/// transport negotiation, and the v4 client's auto-detecting reply
/// reader is what keeps that parseable.
#[test]
fn pre_handshake_busy_reaches_a_binary_dialer() {
    use dummyloc_server::codec::{self, RawEvent, Transport, BINARY_MAGIC};
    use dummyloc_server::proto::DEFAULT_MAX_FRAME_BYTES;
    use std::io::Write as _;

    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .max_connections(1)
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    let first = ServiceClient::connect(handle.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Dial like a v4 client. The server may close right after writing
    // Busy, so the dial bytes are allowed to fail mid-write.
    let _ = stream.write_all(&BINARY_MAGIC);
    let _ = stream.write_all(
        &codec::encode_client_frame(
            &ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
            Transport::Binary,
        )
        .unwrap(),
    );
    let mut reader = codec::FrameReader::auto(stream, DEFAULT_MAX_FRAME_BYTES);
    let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
        panic!("expected a pre-handshake Busy frame");
    };
    match codec::decode_server_frame(&raw).unwrap() {
        ServerFrame::Busy {
            limit,
            retry_after_ms,
        } => {
            assert_eq!(limit, 1);
            assert!(retry_after_ms.is_some_and(|ms| ms >= 1));
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    first.bye().unwrap();
    let stats = handle.shutdown().stats;
    assert!(stats.busy_rejects >= 1, "{stats:?}");
}

/// Satellite (b) of the durability PR: `shutdown` must complete within a
/// hard bound even while a `FaultPlan` holds frames in long injected
/// delays and stalls. The delay sleep is sliced against the shutdown
/// flag, so a 30 s hold never extends the stop.
#[test]
fn shutdown_under_stall_and_delay_faults_is_bounded() {
    let plan = FaultPlan {
        seed: 13,
        delay: 1.0,       // every reply held...
        delay_ms: 30_000, // ...for 30 s, far past the asserted bound
        stall: 0.2,
        ..FaultPlan::none()
    };
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .faults(plan)
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();
    // Park several queries behind the delayed/stalled writer, then pull
    // the plug while their replies are still held back. Raw frames: the
    // test must not wait for the (30 s delayed) replies itself.
    let mut streams = Vec::new();
    for u in 0..4 {
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &ClientFrame::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        for k in 0..3u64 {
            write_frame(
                &mut stream,
                &ClientFrame::Query {
                    id: k,
                    t: k as f64,
                    deadline_ms: None,
                    request: request(&format!("stall-{u}")),
                    query: QueryKind::NextBus,
                },
            )
            .unwrap();
        }
        streams.push(stream);
    }
    std::thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    let report = handle.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "shutdown took {elapsed:?} under delay/stall faults"
    );
    assert!(
        report.stats.faults.delayed >= 1,
        "{:?}",
        report.stats.faults
    );
}

/// Worker supervision: a panicking job produces a typed `Internal` error
/// on exactly the affected connection, the worker is respawned (the
/// restart is counted), and every other connection keeps being served.
#[test]
fn worker_panic_is_contained_respawned_and_counted() {
    let handle = spawn(
        ServeOptions::new()
            .addr("127.0.0.1:0")
            .workers(2)
            .panic_pseudonym(Some("poison".to_string()))
            .build()
            .unwrap(),
        pois(),
    )
    .unwrap();

    let mut victim = ServiceClient::connect(handle.addr()).unwrap();
    let mut bystander = ServiceClient::connect(handle.addr()).unwrap();

    // Interleave poisoned queries with healthy ones: each poisoned job
    // kills one worker incarnation, each healthy one proves a respawned
    // worker picked the queue back up.
    for k in 0..3u64 {
        let outcome = victim.query(k as f64, &request("poison"), &QueryKind::NextBus);
        match outcome {
            Ok(QueryOutcome::Failed {
                kind: dummyloc_server::ErrorKind::Internal,
                message,
            }) => assert!(message.contains("panic"), "{message}"),
            other => panic!("expected a typed Internal error, got {other:?}"),
        }
        let healthy = bystander
            .query(k as f64, &request("healthy"), &QueryKind::NextBus)
            .unwrap();
        assert!(
            matches!(healthy, QueryOutcome::Answered(_)),
            "bystander must be unaffected: {healthy:?}"
        );
    }

    let stats = handle.shutdown().stats;
    assert!(
        stats.worker_restarts >= 3,
        "expected >= 3 restarts, got {}",
        stats.worker_restarts
    );
    assert_eq!(stats.requests, 3, "only the healthy queries are answered");
}
