//! Cross-crate property tests: privacy invariants that must hold for any
//! seed and any sane parameterization of the full pipeline.

use dummyloc_core::anonymity::{as_f, RegionInfo};
use dummyloc_core::metrics::ubiquity_f;
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::Grid;
use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::workload;
use proptest::prelude::*;

proptest! {
    // Whole-pipeline runs are expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn requests_never_leak_positions_outside_the_area(
        seed in any::<u64>(),
        dummies in 0usize..5,
        grid in 6u32..14,
    ) {
        let fleet = workload::nara_fleet_sized(5, 120.0, seed);
        let config = SimConfig {
            grid_size: grid,
            dummy_count: dummies,
            generator: GeneratorKind::Mn { m: 150.0 },
            ..SimConfig::nara_default(seed)
        };
        let sim = Simulation::new(config).unwrap();
        let area = sim.config().area;
        let out = sim.run(&fleet).unwrap();
        for (requests, _) in &out.streams {
            for r in requests {
                prop_assert_eq!(r.positions.len(), dummies + 1);
                for p in &r.positions {
                    prop_assert!(area.contains(*p), "{p:?} escaped the service area");
                }
            }
        }
    }

    #[test]
    fn per_request_anonymity_set_never_exceeds_k_plus_one(
        seed in any::<u64>(),
        dummies in 0usize..6,
    ) {
        let fleet = workload::nara_fleet_sized(4, 120.0, seed);
        let config = SimConfig {
            grid_size: 12,
            dummy_count: dummies,
            generator: GeneratorKind::Random,
            ..SimConfig::nara_default(seed)
        };
        let sim = Simulation::new(config).unwrap();
        let grid = sim.grid().clone();
        let out = sim.run(&fleet).unwrap();
        for (requests, _) in &out.streams {
            for r in requests {
                let info =
                    RegionInfo::from_positions(&grid, r.positions.iter().copied()).unwrap();
                let set = as_f(&info);
                prop_assert!(set >= 1);
                prop_assert!(set <= dummies + 1);
            }
        }
    }

    #[test]
    fn global_f_is_bounded_by_positions_over_regions(
        seed in any::<u64>(),
        dummies in 0usize..4,
        grid_n in 6u32..14,
    ) {
        let users = 6;
        let fleet = workload::nara_fleet_sized(users, 120.0, seed);
        let config = SimConfig {
            grid_size: grid_n,
            dummy_count: dummies,
            generator: GeneratorKind::Mln { m: 150.0, retry_budget: 3 },
            ..SimConfig::nara_default(seed)
        };
        let out = Simulation::new(config).unwrap().run(&fleet).unwrap();
        let regions = (grid_n * grid_n) as f64;
        let cap = (users * (dummies + 1)) as f64 / regions;
        for &f in &out.f_series {
            prop_assert!(f <= cap.min(1.0) + 1e-12);
            prop_assert!(f > 0.0);
        }
    }

    #[test]
    fn snapshot_population_equals_reported_positions(
        seed in any::<u64>(),
        dummies in 0usize..4,
    ) {
        // Rebuild the population from the emitted streams and confirm the
        // engine's F series is what an outside auditor would compute.
        let fleet = workload::nara_fleet_sized(4, 60.0, seed);
        let config = SimConfig {
            grid_size: 10,
            dummy_count: dummies,
            generator: GeneratorKind::Mn { m: 100.0 },
            ..SimConfig::nara_default(seed)
        };
        let sim = Simulation::new(config).unwrap();
        let grid: Grid = sim.grid().clone();
        let out = sim.run(&fleet).unwrap();
        for (round, &f_engine) in out.f_series.iter().enumerate() {
            let positions = out
                .streams
                .iter()
                .flat_map(|(reqs, _)| reqs[round].positions.iter().copied());
            let pop = PopulationGrid::from_positions(&grid, positions).unwrap();
            let f_audit = ubiquity_f(&pop);
            prop_assert!((f_engine - f_audit).abs() < 1e-12);
        }
    }
}
