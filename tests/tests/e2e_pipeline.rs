//! End-to-end integration: mobility workload → simulation engine →
//! anonymity metrics, asserting the paper's headline shapes on a reduced
//! instance of the real pipeline.

use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
use dummyloc_sim::workload;

fn fleet() -> dummyloc_trajectory::Dataset {
    workload::nara_fleet_sized(20, 900.0, 11)
}

fn run(grid: u32, dummies: usize, kind: GeneratorKind) -> dummyloc_sim::SimOutcome {
    let config = SimConfig {
        grid_size: grid,
        dummy_count: dummies,
        generator: kind,
        ..SimConfig::nara_default(11)
    };
    Simulation::new(config).unwrap().run(&fleet()).unwrap()
}

#[test]
fn figure7_shape_f_monotone_in_dummies() {
    let mut last = 0.0;
    for dummies in [0usize, 1, 2, 4, 6, 9] {
        let f = run(10, dummies, GeneratorKind::Mn { m: 120.0 }).mean_f;
        assert!(
            f > last || (f - last).abs() < 0.02,
            "F must grow (or plateau within noise) with dummies: {last} → {f} at {dummies}"
        );
        last = f;
    }
    // End-to-end magnitude: 20 users × 10 positions over 100 regions must
    // cover most of the grid.
    assert!(
        last > 0.6,
        "9 dummies should cover well over half the regions, got {last}"
    );
}

#[test]
fn figure7_shape_finer_grids_need_more_dummies() {
    let target = 0.7;
    let needed = |grid: u32| {
        (0..=9)
            .find(|&d| run(grid, d, GeneratorKind::Mn { m: 120.0 }).mean_f >= target)
            .unwrap_or(10)
    };
    let n8 = needed(8);
    let n12 = needed(12);
    assert!(n8 <= n12, "8x8 needed {n8} dummies, 12x12 needed {n12}");
}

#[test]
fn figure8_shape_mn_and_mln_beat_random_on_shift() {
    let random = run(12, 3, GeneratorKind::Random);
    let mn = run(12, 3, GeneratorKind::Mn { m: 120.0 });
    let mln = run(
        12,
        3,
        GeneratorKind::Mln {
            m: 120.0,
            retry_budget: 3,
        },
    );
    assert!(mn.shift_mean < random.shift_mean);
    assert!(mln.shift_mean < random.shift_mean);
    let (r0, ..) = random.shift_buckets.percentages();
    let (m0, ..) = mn.shift_buckets.percentages();
    let (l0, ..) = mln.shift_buckets.percentages();
    assert!(m0 > r0, "MN no-change {m0}% must beat random {r0}%");
    assert!(l0 > r0, "MLN no-change {l0}% must beat random {r0}%");
}

#[test]
fn stationary_dummies_minimize_shift() {
    let stationary = run(12, 3, GeneratorKind::Stationary);
    let mn = run(12, 3, GeneratorKind::Mn { m: 120.0 });
    assert!(stationary.shift_mean <= mn.shift_mean);
}

#[test]
fn outcome_streams_align_with_workload() {
    let out = run(10, 2, GeneratorKind::Mn { m: 100.0 });
    assert_eq!(out.streams.len(), 20);
    // 900 s window at 30 s tick → 31 rounds.
    assert_eq!(out.rounds, 31);
    for (requests, truth_idx) in &out.streams {
        assert_eq!(requests.len(), 31);
        assert!(*truth_idx < 3);
        for r in requests {
            assert_eq!(r.positions.len(), 3);
        }
    }
}

#[test]
fn full_lbs_loop_cost_matches_dummy_count() {
    use dummyloc_lbs::poi::Category;
    use dummyloc_lbs::query::QueryKind;
    use dummyloc_sim::engine::ServiceConfig;
    let config = SimConfig {
        grid_size: 10,
        dummy_count: 5,
        generator: GeneratorKind::Mn { m: 100.0 },
        service: Some(ServiceConfig {
            poi_count: 30,
            poi_seed: 3,
            query: QueryKind::NearestPoi {
                category: Some(Category::BusStop),
            },
        }),
        ..SimConfig::nara_default(11)
    };
    let out = Simulation::new(config).unwrap().run(&fleet()).unwrap();
    let cost = out.cost.expect("service attached");
    assert_eq!(cost.positions_per_request(), 6.0);
    assert_eq!(cost.requests, 31 * 20);
}
