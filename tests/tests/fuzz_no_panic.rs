//! Fuzz properties for the byte-facing parsers: arbitrary input must
//! never panic, and honest input must round-trip. The crash-recovery
//! story rests on these — a recovery path that can panic on a corrupt
//! file is just a slower crash.

use dummyloc_core::client::Request;
use dummyloc_geo::Point;
use dummyloc_server::codec::{self, RawEvent, RawFrame, Transport, BINARY_MAGIC};
use dummyloc_server::proto::{
    write_frame, ClientFrame, FrameEvent, FrameReader, QuerySpec, ServerFrame,
    DEFAULT_MAX_FRAME_BYTES,
};
use dummyloc_server::wal::{self, WalRecord};
use dummyloc_sim::SimCheckpoint;
use dummyloc_store::manifest::{Manifest, SegmentMeta, StreamMeta};
use dummyloc_store::{segment, StoreRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes through the frame reader: every call terminates
    /// with a frame, EOF or TooLarge — never a panic — and attempting to
    /// parse whatever comes out must error, not abort.
    #[test]
    fn frame_reader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
        cap in 1usize..512,
    ) {
        let mut reader = FrameReader::new(&bytes[..], cap);
        let mut frames = 0usize;
        // `Eof` and `TooLarge` both terminate the stream.
        while let FrameEvent::Frame(line) = reader.next_frame().unwrap() {
            frames += 1;
            // Parsing hostile lines is allowed to fail, not to panic.
            let _ = serde_json::from_str::<ClientFrame>(&line);
            prop_assert!(frames <= bytes.len() + 1, "reader must consume input");
        }
    }

    /// An honest frame written with `write_frame` survives any split of
    /// the wire into a prefix the reader sees first.
    #[test]
    fn written_frames_round_trip(
        id in any::<u64>(),
        pseudonym in prop::collection::vec(any::<u8>(), 0..24),
        xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..6),
    ) {
        let frame = ClientFrame::Query {
            id,
            t: 30.0,
            deadline_ms: None,
            request: Request {
                pseudonym: String::from_utf8_lossy(&pseudonym).into_owned(),
                positions: xs.iter().map(|&x| Point::new(x, -x)).collect(),
            },
            query: dummyloc_lbs::QueryKind::NextBus,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut reader = FrameReader::new(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        let FrameEvent::Frame(line) = reader.next_frame().unwrap() else {
            return Err(TestCaseError::fail("expected one frame"));
        };
        let back: ClientFrame = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// WAL recovery over arbitrary bytes: `decode_all` never panics,
    /// never reads past the input, and always stops at a record boundary
    /// it actually validated.
    #[test]
    fn wal_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let (records, end) = wal::decode_all(&bytes);
        prop_assert!(end <= bytes.len());
        // Decoding the clean prefix again reproduces the same records —
        // truncation at `end` is a fixed point, which is what lets replay
        // truncate the file in place and continue.
        let (again, end_again) = wal::decode_all(&bytes[..end]);
        prop_assert_eq!(end_again, end);
        prop_assert_eq!(again, records);
    }

    /// Committed records followed by arbitrary garbage: the garbage never
    /// corrupts the committed prefix (FNV-1a checksums catch it) and the
    /// cut lands exactly at the end of the last intact record.
    #[test]
    fn wal_garbage_tail_never_reaches_committed_records(
        n in 0usize..5,
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let records: Vec<WalRecord> = (0..n)
            .map(|k| WalRecord {
                t: k as f64 * 30.0,
                seq: k as u64,
                request_id: Some(k as u64),
                request: Request {
                    pseudonym: format!("u{k}"),
                    positions: vec![Point::new(k as f64, 1.0)],
                },
            })
            .collect();
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&wal::encode_record(r).unwrap());
        }
        let committed = wire.len();
        wire.extend_from_slice(&garbage);
        let (got, end) = wal::decode_all(&wire);
        // The prefix always survives; the garbage may *accidentally*
        // decode further only by forging a length, checksum and JSON
        // payload all at once — then it still ends on a validated record.
        prop_assert!(got.len() >= records.len());
        prop_assert_eq!(&got[..records.len()], &records[..]);
        prop_assert!(end >= committed);
    }

    /// Arbitrary bytes through the auto-detecting codec reader (the v4
    /// server's actual ingress path): every call terminates with a frame,
    /// EOF, TooLarge or a clean `Err` — never a panic — and decoding
    /// whatever comes out must error, not abort.
    #[test]
    fn codec_auto_reader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
        cap in 1usize..512,
        with_magic in any::<bool>(),
    ) {
        let mut wire = Vec::new();
        if with_magic {
            // Half the cases open with the honest preamble, so the
            // binary header/checksum path sees the hostile bytes too.
            wire.extend_from_slice(&BINARY_MAGIC);
        }
        wire.extend_from_slice(&bytes);
        let mut reader = codec::FrameReader::auto(&wire[..], cap);
        let mut frames = 0usize;
        // EOF and TooLarge terminate the stream; a checksum or magic
        // mismatch surfaces as a clean io::Error — all of them end the
        // loop, none of them abort.
        while let Ok(RawEvent::Frame(raw)) = reader.next_frame() {
            frames += 1;
            // Hostile frames may fail to decode — never abort.
            let _ = codec::decode_client_frame(&raw);
            let _ = codec::decode_server_frame(&raw);
            prop_assert!(frames <= wire.len() + 1, "reader must consume input");
        }
    }

    /// Arbitrary bytes through the payload decoders directly (no framing
    /// in the way): error or frame, never a panic.
    #[test]
    fn codec_payload_decoders_never_panic_on_arbitrary_bytes(
        payload in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        let _ = codec::decode_client_payload(&payload);
        let _ = codec::decode_server_payload(&payload);
    }

    /// Honest v4 client frames survive the full binary wire path:
    /// encode → magic-prefixed stream → auto reader → decode.
    #[test]
    fn binary_client_frames_round_trip(
        id in any::<u64>(),
        t in -1.0e6f64..1.0e6,
        has_deadline in any::<bool>(),
        deadline_val in any::<u64>(),
        pseudonym in prop::collection::vec(any::<u8>(), 0..24),
        xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..6),
        n_batch in 0usize..5,
    ) {
        let deadline = has_deadline.then_some(deadline_val);
        let spec = |k: u64| QuerySpec {
            id: id.wrapping_add(k),
            t,
            deadline_ms: deadline,
            request: Request {
                pseudonym: String::from_utf8_lossy(&pseudonym).into_owned(),
                positions: xs.iter().map(|&x| Point::new(x, -x)).collect(),
            },
            query: dummyloc_lbs::QueryKind::NextBus,
        };
        let frames = vec![
            ClientFrame::Hello { version: 4 },
            ClientFrame::Query {
                id,
                t,
                deadline_ms: deadline,
                request: spec(0).request,
                query: dummyloc_lbs::QueryKind::NearestPoi { category: None },
            },
            ClientFrame::Batch {
                queries: (0..n_batch as u64).map(spec).collect(),
            },
            ClientFrame::Stats,
            ClientFrame::Metrics,
            ClientFrame::Bye,
        ];
        let mut wire = Vec::new();
        wire.extend_from_slice(&BINARY_MAGIC);
        for frame in &frames {
            wire.extend_from_slice(&codec::encode_client_frame(frame, Transport::Binary).unwrap());
        }
        let mut reader = codec::FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        for frame in &frames {
            let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
                return Err(TestCaseError::fail("expected one frame per encode"));
            };
            prop_assert!(matches!(raw, RawFrame::Binary(_)));
            prop_assert_eq!(&codec::decode_client_frame(&raw).unwrap(), frame);
        }
        prop_assert!(matches!(reader.next_frame().unwrap(), RawEvent::Eof));
    }

    /// Honest v4 server frames survive the same binary wire path the
    /// reply stream uses.
    #[test]
    fn binary_server_frames_round_trip(
        id in any::<u64>(),
        version in any::<u32>(),
        limit in any::<u64>(),
        message_bytes in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let message = String::from_utf8_lossy(&message_bytes).into_owned();
        let frames = vec![
            ServerFrame::Hello { version },
            ServerFrame::Overloaded {
                id,
                retry_after_ms: None,
            },
            ServerFrame::Overloaded {
                id,
                retry_after_ms: Some(limit % 5_000),
            },
            ServerFrame::Deadline { id },
            ServerFrame::Busy {
                limit,
                retry_after_ms: None,
            },
            ServerFrame::Busy {
                limit,
                retry_after_ms: Some(id % 5_000),
            },
            ServerFrame::Error {
                id: Some(id),
                kind: dummyloc_server::ErrorKind::Malformed,
                message,
            },
        ];
        let mut wire = Vec::new();
        wire.extend_from_slice(&BINARY_MAGIC);
        for frame in &frames {
            wire.extend_from_slice(&codec::encode_server_frame(frame, Transport::Binary).unwrap());
        }
        let mut reader = codec::FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        for frame in &frames {
            let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
                return Err(TestCaseError::fail("expected one frame per encode"));
            };
            prop_assert_eq!(&codec::decode_server_frame(&raw).unwrap(), frame);
        }
        prop_assert!(matches!(reader.next_frame().unwrap(), RawEvent::Eof));
    }

    /// Flipping any single byte of an honest binary frame (header or
    /// payload) is detected — decoded-but-different is the one outcome
    /// the checksum must rule out.
    #[test]
    fn binary_corruption_never_decodes_to_a_different_frame(
        id in any::<u64>(),
        flip in 0usize..4096,
        bit in 0u8..8,
    ) {
        let frame = ClientFrame::Query {
            id,
            t: 30.0,
            deadline_ms: Some(250),
            request: Request {
                pseudonym: "u1".into(),
                positions: vec![Point::new(1.0, 2.0)],
            },
            query: dummyloc_lbs::QueryKind::NextBus,
        };
        let encoded = codec::encode_client_frame(&frame, Transport::Binary).unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(&BINARY_MAGIC);
        wire.extend_from_slice(&encoded);
        let at = BINARY_MAGIC.len() + flip % encoded.len();
        wire[at] ^= 1 << bit;
        let mut reader = codec::FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        match reader.next_frame() {
            // A length-field flip may leave the reader waiting for bytes
            // that never come (Eof) or over the cap (TooLarge); a payload
            // or checksum flip is an InvalidData error. If a frame does
            // come out (the flip forged a consistent header), decoding it
            // must not silently produce a *different* query.
            Ok(RawEvent::Frame(raw)) => {
                if let Ok(got) = codec::decode_client_frame(&raw) {
                    prop_assert_eq!(got, frame);
                }
            }
            Ok(RawEvent::Eof) | Ok(RawEvent::TooLarge) | Err(_) => {}
        }
    }

    /// Checkpoint decoding never panics on arbitrary bytes.
    #[test]
    fn checkpoint_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = SimCheckpoint::decode(&bytes);
    }

    /// Store segment decoding over arbitrary bytes: errors, never panics.
    /// A truncated honest segment must also stay panic-free — that is the
    /// mid-flush crash shape (partial file, manifest never committed).
    #[test]
    fn segment_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
        cut in 0usize..4096,
    ) {
        let _ = segment::decode_segment(&bytes);
        let records: Vec<StoreRecord> = (0..3)
            .map(|k| StoreRecord {
                t: k as f64 * 30.0,
                seq: k,
                request_id: Some(k),
                request: Request {
                    pseudonym: format!("u{k}"),
                    positions: vec![Point::new(k as f64, 2.0)],
                },
            })
            .collect();
        let mut honest = segment::encode_segment(&records);
        honest.truncate(cut.min(honest.len()));
        let _ = segment::decode_segment(&honest);
    }

    /// An honest segment round-trips exactly, and flipping any single
    /// byte past the magic is detected as an error, never accepted as a
    /// different record set of the same length.
    #[test]
    fn segment_round_trips_and_detects_corruption(
        n in 0usize..6,
        flip in 0usize..4096,
    ) {
        let records: Vec<StoreRecord> = (0..n as u64)
            .map(|k| StoreRecord {
                t: k as f64 * 30.0,
                seq: k * 7,
                request_id: (k % 2 == 0).then_some(k),
                request: Request {
                    pseudonym: format!("user-{}", k % 3),
                    positions: vec![Point::new(k as f64, -(k as f64)), Point::new(0.5, 9.0)],
                },
            })
            .collect();
        let wire = segment::encode_segment(&records);
        prop_assert_eq!(segment::decode_segment(&wire).unwrap(), records.clone());
        if wire.len() > segment::SEGMENT_MAGIC.len() {
            let at = segment::SEGMENT_MAGIC.len()
                + flip % (wire.len() - segment::SEGMENT_MAGIC.len());
            let mut bad = wire.clone();
            bad[at] ^= 0x20;
            // Either rejected outright, or (when the flip hits a frame
            // length) decoded shorter — never silently different records.
            if let Ok(got) = segment::decode_segment(&bad) {
                prop_assert_ne!(got, records);
            }
        }
    }

    /// Store manifest decoding never panics on arbitrary bytes.
    #[test]
    fn manifest_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = Manifest::decode(&bytes);
    }

    /// An honest manifest round-trips, and any single-byte corruption of
    /// its body is caught by the header checksum.
    #[test]
    fn manifest_round_trips_and_checksum_catches_body_edits(
        next in any::<u64>(),
        records in any::<u64>(),
        has_last in any::<bool>(),
        last_val in any::<u64>(),
        ids in prop::collection::vec(any::<u64>(), 0..8),
        flip in 0usize..4096,
    ) {
        let last = has_last.then_some(last_val);
        let manifest = Manifest {
            next_segment_id: next,
            durable_records: records,
            last_durable_seq: last,
            segments: vec![SegmentMeta {
                file: "seg-000001.seg".into(),
                records,
                bytes: records.saturating_mul(64),
            }],
            streams: vec![StreamMeta {
                pseudonym: "u1".into(),
                records,
                digest: next ^ records,
                last_seq: last.unwrap_or(0),
                ids,
            }],
        };
        let wire = manifest.encode();
        prop_assert_eq!(Manifest::decode(&wire).unwrap(), manifest);
        // Corrupt one body byte (past the header line): must be rejected.
        let header_end = wire.iter().position(|&b| b == b'\n').unwrap() + 1;
        if wire.len() > header_end {
            let at = header_end + flip % (wire.len() - header_end);
            let mut bad = wire.clone();
            bad[at] ^= 0x01;
            prop_assert!(Manifest::decode(&bad).is_err());
        }
    }
}

/// A batch grown to just under the frame-size cap round-trips intact,
/// and one more query tips the same frame over the cap into `TooLarge`
/// (not a panic, not a truncated decode).
#[test]
fn max_size_binary_batch_round_trips_and_cap_is_sharp() {
    let spec = |id: u64| QuerySpec {
        id,
        t: id as f64 * 30.0,
        deadline_ms: Some(250),
        request: Request {
            pseudonym: format!("user-{id}"),
            positions: (0..4).map(|k| Point::new(id as f64, k as f64)).collect(),
        },
        query: dummyloc_lbs::QueryKind::NextBus,
    };

    // Grow until the *next* query would overflow the cap.
    let mut queries = Vec::new();
    let encoded = loop {
        queries.push(spec(queries.len() as u64));
        let candidate = ClientFrame::Batch {
            queries: {
                let mut q = queries.clone();
                q.push(spec(q.len() as u64));
                q
            },
        };
        let grown = codec::encode_client_frame(&candidate, Transport::Binary).unwrap();
        if grown.len() - codec::BINARY_HEADER_BYTES > DEFAULT_MAX_FRAME_BYTES {
            break codec::encode_client_frame(
                &ClientFrame::Batch {
                    queries: queries.clone(),
                },
                Transport::Binary,
            )
            .unwrap();
        }
    };
    assert!(
        encoded.len() > DEFAULT_MAX_FRAME_BYTES / 2,
        "batch should approach the cap, got {} bytes",
        encoded.len()
    );

    let mut wire = Vec::new();
    wire.extend_from_slice(&BINARY_MAGIC);
    wire.extend_from_slice(&encoded);
    let mut reader = codec::FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
    let RawEvent::Frame(raw) = reader.next_frame().unwrap() else {
        panic!("expected the max-size batch as one frame");
    };
    let ClientFrame::Batch { queries: back } = codec::decode_client_frame(&raw).unwrap() else {
        panic!("expected a Batch frame back");
    };
    assert_eq!(back, queries);

    // One more query overflows the cap: the reader reports TooLarge.
    queries.push(spec(queries.len() as u64));
    let over =
        codec::encode_client_frame(&ClientFrame::Batch { queries }, Transport::Binary).unwrap();
    let mut wire = Vec::new();
    wire.extend_from_slice(&BINARY_MAGIC);
    wire.extend_from_slice(&over);
    let mut reader = codec::FrameReader::auto(&wire[..], DEFAULT_MAX_FRAME_BYTES);
    assert!(matches!(reader.next_frame().unwrap(), RawEvent::TooLarge));
}
