//! Fuzz properties for the byte-facing parsers: arbitrary input must
//! never panic, and honest input must round-trip. The crash-recovery
//! story rests on these — a recovery path that can panic on a corrupt
//! file is just a slower crash.

use dummyloc_core::client::Request;
use dummyloc_geo::Point;
use dummyloc_server::proto::{
    write_frame, ClientFrame, FrameEvent, FrameReader, DEFAULT_MAX_FRAME_BYTES,
};
use dummyloc_server::wal::{self, WalRecord};
use dummyloc_sim::SimCheckpoint;
use dummyloc_store::manifest::{Manifest, SegmentMeta, StreamMeta};
use dummyloc_store::{segment, StoreRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary bytes through the frame reader: every call terminates
    /// with a frame, EOF or TooLarge — never a panic — and attempting to
    /// parse whatever comes out must error, not abort.
    #[test]
    fn frame_reader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
        cap in 1usize..512,
    ) {
        let mut reader = FrameReader::new(&bytes[..], cap);
        let mut frames = 0usize;
        // `Eof` and `TooLarge` both terminate the stream.
        while let FrameEvent::Frame(line) = reader.next_frame().unwrap() {
            frames += 1;
            // Parsing hostile lines is allowed to fail, not to panic.
            let _ = serde_json::from_str::<ClientFrame>(&line);
            prop_assert!(frames <= bytes.len() + 1, "reader must consume input");
        }
    }

    /// An honest frame written with `write_frame` survives any split of
    /// the wire into a prefix the reader sees first.
    #[test]
    fn written_frames_round_trip(
        id in any::<u64>(),
        pseudonym in prop::collection::vec(any::<u8>(), 0..24),
        xs in prop::collection::vec(-1.0e6f64..1.0e6, 1..6),
    ) {
        let frame = ClientFrame::Query {
            id,
            t: 30.0,
            deadline_ms: None,
            request: Request {
                pseudonym: String::from_utf8_lossy(&pseudonym).into_owned(),
                positions: xs.iter().map(|&x| Point::new(x, -x)).collect(),
            },
            query: dummyloc_lbs::QueryKind::NextBus,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut reader = FrameReader::new(&wire[..], DEFAULT_MAX_FRAME_BYTES);
        let FrameEvent::Frame(line) = reader.next_frame().unwrap() else {
            return Err(TestCaseError::fail("expected one frame"));
        };
        let back: ClientFrame = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// WAL recovery over arbitrary bytes: `decode_all` never panics,
    /// never reads past the input, and always stops at a record boundary
    /// it actually validated.
    #[test]
    fn wal_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let (records, end) = wal::decode_all(&bytes);
        prop_assert!(end <= bytes.len());
        // Decoding the clean prefix again reproduces the same records —
        // truncation at `end` is a fixed point, which is what lets replay
        // truncate the file in place and continue.
        let (again, end_again) = wal::decode_all(&bytes[..end]);
        prop_assert_eq!(end_again, end);
        prop_assert_eq!(again, records);
    }

    /// Committed records followed by arbitrary garbage: the garbage never
    /// corrupts the committed prefix (FNV-1a checksums catch it) and the
    /// cut lands exactly at the end of the last intact record.
    #[test]
    fn wal_garbage_tail_never_reaches_committed_records(
        n in 0usize..5,
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let records: Vec<WalRecord> = (0..n)
            .map(|k| WalRecord {
                t: k as f64 * 30.0,
                seq: k as u64,
                request_id: Some(k as u64),
                request: Request {
                    pseudonym: format!("u{k}"),
                    positions: vec![Point::new(k as f64, 1.0)],
                },
            })
            .collect();
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&wal::encode_record(r).unwrap());
        }
        let committed = wire.len();
        wire.extend_from_slice(&garbage);
        let (got, end) = wal::decode_all(&wire);
        // The prefix always survives; the garbage may *accidentally*
        // decode further only by forging a length, checksum and JSON
        // payload all at once — then it still ends on a validated record.
        prop_assert!(got.len() >= records.len());
        prop_assert_eq!(&got[..records.len()], &records[..]);
        prop_assert!(end >= committed);
    }

    /// Checkpoint decoding never panics on arbitrary bytes.
    #[test]
    fn checkpoint_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = SimCheckpoint::decode(&bytes);
    }

    /// Store segment decoding over arbitrary bytes: errors, never panics.
    /// A truncated honest segment must also stay panic-free — that is the
    /// mid-flush crash shape (partial file, manifest never committed).
    #[test]
    fn segment_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..4096),
        cut in 0usize..4096,
    ) {
        let _ = segment::decode_segment(&bytes);
        let records: Vec<StoreRecord> = (0..3)
            .map(|k| StoreRecord {
                t: k as f64 * 30.0,
                seq: k,
                request_id: Some(k),
                request: Request {
                    pseudonym: format!("u{k}"),
                    positions: vec![Point::new(k as f64, 2.0)],
                },
            })
            .collect();
        let mut honest = segment::encode_segment(&records);
        honest.truncate(cut.min(honest.len()));
        let _ = segment::decode_segment(&honest);
    }

    /// An honest segment round-trips exactly, and flipping any single
    /// byte past the magic is detected as an error, never accepted as a
    /// different record set of the same length.
    #[test]
    fn segment_round_trips_and_detects_corruption(
        n in 0usize..6,
        flip in 0usize..4096,
    ) {
        let records: Vec<StoreRecord> = (0..n as u64)
            .map(|k| StoreRecord {
                t: k as f64 * 30.0,
                seq: k * 7,
                request_id: (k % 2 == 0).then_some(k),
                request: Request {
                    pseudonym: format!("user-{}", k % 3),
                    positions: vec![Point::new(k as f64, -(k as f64)), Point::new(0.5, 9.0)],
                },
            })
            .collect();
        let wire = segment::encode_segment(&records);
        prop_assert_eq!(segment::decode_segment(&wire).unwrap(), records.clone());
        if wire.len() > segment::SEGMENT_MAGIC.len() {
            let at = segment::SEGMENT_MAGIC.len()
                + flip % (wire.len() - segment::SEGMENT_MAGIC.len());
            let mut bad = wire.clone();
            bad[at] ^= 0x20;
            // Either rejected outright, or (when the flip hits a frame
            // length) decoded shorter — never silently different records.
            if let Ok(got) = segment::decode_segment(&bad) {
                prop_assert_ne!(got, records);
            }
        }
    }

    /// Store manifest decoding never panics on arbitrary bytes.
    #[test]
    fn manifest_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = Manifest::decode(&bytes);
    }

    /// An honest manifest round-trips, and any single-byte corruption of
    /// its body is caught by the header checksum.
    #[test]
    fn manifest_round_trips_and_checksum_catches_body_edits(
        next in any::<u64>(),
        records in any::<u64>(),
        has_last in any::<bool>(),
        last_val in any::<u64>(),
        ids in prop::collection::vec(any::<u64>(), 0..8),
        flip in 0usize..4096,
    ) {
        let last = has_last.then_some(last_val);
        let manifest = Manifest {
            next_segment_id: next,
            durable_records: records,
            last_durable_seq: last,
            segments: vec![SegmentMeta {
                file: "seg-000001.seg".into(),
                records,
                bytes: records.saturating_mul(64),
            }],
            streams: vec![StreamMeta {
                pseudonym: "u1".into(),
                records,
                digest: next ^ records,
                last_seq: last.unwrap_or(0),
                ids,
            }],
        };
        let wire = manifest.encode();
        prop_assert_eq!(Manifest::decode(&wire).unwrap(), manifest);
        // Corrupt one body byte (past the header line): must be rejected.
        let header_end = wire.iter().position(|&b| b == b'\n').unwrap() + 1;
        if wire.len() > header_end {
            let at = header_end + flip % (wire.len() - header_end);
            let mut bad = wire.clone();
            bad[at] ^= 0x01;
            prop_assert!(Manifest::decode(&bad).is_err());
        }
    }
}
