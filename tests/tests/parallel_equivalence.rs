//! The headline claim of the parallel engine, enforced end to end:
//! **parallel output is byte-identical to serial output** for the raw
//! engine and for every registered experiment, at any thread count.
//!
//! Float comparisons are bitwise (`f64::to_bits`) — "close enough" would
//! hide schedule-dependent reassociation, which is exactly the bug class
//! this suite exists to catch. Experiment reports are compared as whole
//! rendered strings and JSON documents.
//!
//! Tests that flip the process-wide default-thread knob serialize on
//! [`KNOB`]; everything else pins thread counts explicitly and can run
//! concurrently.

use std::sync::Mutex;

use dummyloc_ext::experiments::registry_with_extensions;
use dummyloc_sim::engine::{GeneratorKind, ServiceConfig, SimConfig, SimOutcome, Simulation};
use dummyloc_sim::{workload, ParallelEngine};

/// Serializes tests that mutate the process-wide default thread count.
static KNOB: Mutex<()> = Mutex::new(());

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_identical(serial: &SimOutcome, parallel: &SimOutcome, label: &str) {
    assert_eq!(serial.rounds, parallel.rounds, "{label}: rounds");
    assert!(
        bitwise_eq(&serial.f_series, &parallel.f_series),
        "{label}: f_series diverged"
    );
    assert_eq!(
        serial.mean_f.to_bits(),
        parallel.mean_f.to_bits(),
        "{label}: mean_f"
    );
    assert_eq!(
        serial.shift_buckets, parallel.shift_buckets,
        "{label}: shift_buckets"
    );
    assert_eq!(
        serial.shift_mean.to_bits(),
        parallel.shift_mean.to_bits(),
        "{label}: shift_mean"
    );
    assert_eq!(
        serial.congestion_cv.to_bits(),
        parallel.congestion_cv.to_bits(),
        "{label}: congestion_cv"
    );
    assert_eq!(serial.streams, parallel.streams, "{label}: request streams");
    assert_eq!(serial.cost, parallel.cost, "{label}: provider cost");
}

#[test]
fn raw_engine_is_identical_at_every_thread_count() {
    let fleet = workload::nara_fleet_sized(11, 240.0, 17);
    for generator in [
        GeneratorKind::Random,
        GeneratorKind::Mn { m: 120.0 },
        GeneratorKind::Mln {
            m: 120.0,
            retry_budget: 3,
        },
    ] {
        let config = SimConfig {
            grid_size: 9,
            dummy_count: 4,
            generator,
            ..SimConfig::nara_default(23)
        };
        let serial = ParallelEngine::new(config, 1).unwrap().run(&fleet).unwrap();
        for threads in [2, 3, 8] {
            let parallel = ParallelEngine::new(config, threads)
                .unwrap()
                .run(&fleet)
                .unwrap();
            assert_identical(
                &serial,
                &parallel,
                &format!("{generator:?} at {threads} threads"),
            );
        }
    }
}

#[test]
fn engine_with_service_and_quantization_is_thread_count_invariant() {
    use dummyloc_lbs::poi::Category;
    use dummyloc_lbs::query::QueryKind;

    let fleet = workload::nara_fleet_sized(7, 180.0, 5);
    let mut config = SimConfig {
        grid_size: 8,
        dummy_count: 3,
        generator: GeneratorKind::Mn { m: 100.0 },
        ..SimConfig::nara_default(31)
    };
    config.quantize = true;
    config.service = Some(ServiceConfig {
        poi_count: 40,
        poi_seed: 6,
        query: QueryKind::NearestPoi {
            category: Some(Category::Restaurant),
        },
    });
    // `--threads 1` must be the serial engine itself, not merely
    // equivalent to it — compare against `Simulation::run` directly.
    let serial = Simulation::new(config).unwrap().run(&fleet).unwrap();
    for threads in [1, 2, 3, 8] {
        let parallel = ParallelEngine::new(config, threads)
            .unwrap()
            .run(&fleet)
            .unwrap();
        assert_identical(&serial, &parallel, &format!("service at {threads} threads"));
    }
}

#[test]
fn every_registered_experiment_is_thread_count_invariant() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let registry = registry_with_extensions();
    let fleet = workload::nara_fleet_sized(8, 300.0, 42);

    let run_at = |threads: usize| {
        dummyloc_core::pool::set_default_threads(threads);
        let reports: Vec<_> = registry
            .iter()
            .map(|e| (e.name(), e.run(42, &fleet).unwrap()))
            .collect();
        dummyloc_core::pool::set_default_threads(0);
        reports
    };

    let serial = run_at(1);
    assert!(serial.len() >= 13, "registry shrank to {}", serial.len());
    let mut parallel_runs = Vec::new();
    for threads in [2, 3, 8] {
        let parallel = run_at(threads);
        for ((name, one), (name_p, p)) in serial.iter().zip(&parallel) {
            assert_eq!(name, name_p);
            assert_eq!(
                one.rendered, p.rendered,
                "{name}: rendered table at {threads} threads"
            );
            assert_eq!(
                one.json, p.json,
                "{name}: JSON sidecar at {threads} threads"
            );
        }
        parallel_runs.push(parallel);
    }
    // And two parallel runs at different thread counts match each other
    // directly, not just through the serial reference.
    assert_eq!(parallel_runs[0], parallel_runs[2], "2 vs 8 threads");
}

#[test]
fn run_all_matches_individual_runs_at_any_thread_count() {
    let _guard = KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let registry = registry_with_extensions();
    let fleet = workload::nara_fleet_sized(6, 240.0, 7);

    dummyloc_core::pool::set_default_threads(1);
    let serial = registry.run_all(7, &fleet).unwrap();
    dummyloc_core::pool::set_default_threads(3);
    let parallel = registry.run_all(7, &fleet).unwrap();
    dummyloc_core::pool::set_default_threads(0);

    assert_eq!(serial.len(), registry.names().len());
    assert_eq!(
        serial.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        registry.names(),
        "run_all must preserve listing order"
    );
    for ((name, a), (name_b, b)) in serial.iter().zip(&parallel) {
        assert_eq!(name, name_b);
        assert_eq!(a, b, "{name}: run_all report diverged across threads");
    }
}
