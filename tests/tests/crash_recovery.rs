//! Crash-injection recovery suite: the durability layer's end-to-end
//! guarantees under real process death and interrupted runs.
//!
//! * A WAL-backed server killed with SIGKILL mid-traffic loses **no
//!   acknowledged query**: the restarted process replays the log and,
//!   after the client retries everything under the same idempotent ids,
//!   its observer log is indistinguishable from a never-crashed one.
//! * A WAL whose final record was torn at *any* byte offset recovers the
//!   committed prefix, truncates the tail in place and accepts appends.
//! * A simulation aborted at a random round boundary resumes from its
//!   on-disk checkpoint **bitwise identical** to an uninterrupted run,
//!   at `--threads 1` and at higher thread counts.
//!
//! The kill -9 harness re-execs this test binary: the `#[ignore]`d
//! `crash_child_serve_forever` entry point runs a WAL-backed server until
//! killed, and publishes its ephemeral address through a file.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dummyloc_core::client::Request;
use dummyloc_geo::rng::{derive_seed, rng_from_seed, sample_uniform};
use dummyloc_geo::{BBox, Point};
use dummyloc_lbs::{PoiDatabase, QueryKind};
use dummyloc_server::client::{QueryOutcome, ServiceClient};
use dummyloc_server::server::{spawn, ServerHandle};
use dummyloc_server::wal::{self, FsyncPolicy, WalConfig, WalRecord, WalWriter};
use dummyloc_server::{LogStoreConfig, ServeOptions};
use dummyloc_sim::engine::{GeneratorKind, SimConfig};
use dummyloc_sim::{workload, CheckpointSpec, ParallelEngine, SimCheckpoint, SimError};
use dummyloc_store::{segment, MemoryBackend, Storage, StoreRecord};

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap()
}

fn pois() -> PoiDatabase {
    PoiDatabase::generate(area(), 100, 42)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dummyloc-crash-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_with_wal(wal: &Path) -> ServerHandle {
    spawn_with_durability(wal, None)
}

/// Spawns a server with a per-record-fsync WAL and, optionally, a durable
/// store with the given flush threshold (small thresholds force flushes —
/// and WAL truncations — mid-traffic).
fn spawn_with_durability(wal: &Path, store: Option<(&Path, usize)>) -> ServerHandle {
    let config = ServeOptions::new()
        .addr("127.0.0.1:0")
        .workers(2)
        .wal(Some(WalConfig {
            fsync: FsyncPolicy::Always,
            ..WalConfig::new(wal.to_path_buf())
        }))
        .store(store.map(|(dir, flush_threshold_bytes)| LogStoreConfig {
            flush_threshold_bytes,
            ..LogStoreConfig::new(dir)
        }))
        .build()
        .unwrap();
    spawn(config, pois()).unwrap()
}

/// A deterministic request stream for one simulated user.
fn user_requests(user: u64, rounds: usize) -> Vec<(f64, Request)> {
    let mut rng = rng_from_seed(derive_seed(7700, user));
    (0..rounds)
        .map(|k| {
            let positions = (0..3).map(|_| sample_uniform(&mut rng, &area())).collect();
            (
                k as f64 * 30.0,
                Request {
                    pseudonym: format!("user-{user}"),
                    positions,
                },
            )
        })
        .collect()
}

/// Re-exec helper, not a test: runs a WAL-backed server until killed.
/// The parent sets the env vars, so a stray `--ignored` run is a no-op.
#[test]
#[ignore = "re-exec entry point for the kill -9 harness"]
fn crash_child_serve_forever() {
    let Ok(wal_path) = std::env::var("DUMMYLOC_CRASH_WAL") else {
        return;
    };
    let addr_file = std::env::var("DUMMYLOC_CRASH_ADDR_FILE").expect("harness sets both vars");
    // With DUMMYLOC_CRASH_STORE the child also runs the durable store,
    // at a deliberately tiny flush threshold so segments and WAL
    // truncations happen while the parent is still driving traffic.
    let store_dir = std::env::var("DUMMYLOC_CRASH_STORE").ok();
    let flush_bytes: usize = std::env::var("DUMMYLOC_CRASH_FLUSH_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512);
    let handle = spawn_with_durability(
        Path::new(&wal_path),
        store_dir.as_deref().map(|d| (Path::new(d), flush_bytes)),
    );
    // Publish the bound address atomically so the parent never reads a
    // half-written line.
    let tmp = format!("{addr_file}.tmp");
    std::fs::write(&tmp, handle.addr().to_string()).unwrap();
    std::fs::rename(&tmp, &addr_file).unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn spawn_child(wal: &Path, addr_file: &Path) -> Child {
    spawn_child_with_store(wal, addr_file, None)
}

fn spawn_child_with_store(wal: &Path, addr_file: &Path, store: Option<(&Path, usize)>) -> Child {
    let mut command = Command::new(std::env::current_exe().unwrap());
    command
        .args([
            "crash_child_serve_forever",
            "--exact",
            "--ignored",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("DUMMYLOC_CRASH_WAL", wal)
        .env("DUMMYLOC_CRASH_ADDR_FILE", addr_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some((dir, flush_bytes)) = store {
        command
            .env("DUMMYLOC_CRASH_STORE", dir)
            .env("DUMMYLOC_CRASH_FLUSH_BYTES", flush_bytes.to_string());
    }
    command.spawn().expect("re-exec the test binary")
}

fn wait_for_addr(addr_file: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = std::fs::read_to_string(addr_file) {
            if !s.is_empty() {
                return s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "child server never published its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SIGKILL a WAL-backed server mid-traffic; the restart replays every
/// acknowledged query, retried queries dedup instead of double-logging,
/// and the final observer log matches a server that never crashed.
#[test]
fn kill_nine_mid_traffic_loses_no_acknowledged_query() {
    let dir = scratch_dir("kill9");
    let wal = dir.join("observer.wal");
    let addr_file = dir.join("addr.txt");
    let mut child = spawn_child(&wal, &addr_file);
    let addr = wait_for_addr(&addr_file);

    let users: u64 = 2;
    let rounds = 12;
    let acked = 5;
    let query = QueryKind::NextBus;

    // Phase 1: each user gets the first `acked` queries answered — these
    // are the ones the crash must not lose.
    let mut clients: Vec<ServiceClient> = (0..users)
        .map(|_| ServiceClient::connect_with_timeout(&addr, Some(Duration::from_secs(20))).unwrap())
        .collect();
    for (u, client) in clients.iter_mut().enumerate() {
        for (k, (t, request)) in user_requests(u as u64, rounds)
            .iter()
            .take(acked)
            .enumerate()
        {
            let outcome = client
                .query_with_id(k as u64, *t, None, request, &query)
                .unwrap();
            assert!(
                matches!(outcome, QueryOutcome::Answered(_)),
                "user {u} round {k}: {outcome:?}"
            );
        }
    }

    // Phase 2: kill -9. No graceful shutdown, no drain, no final fsync
    // beyond the per-record policy.
    child.kill().unwrap();
    child.wait().unwrap();
    drop(clients);

    // Phase 3: restart over the same WAL, in-process this time. Replay
    // restores exactly the acknowledged records (nothing was in flight at
    // kill time, so no torn tail either).
    let recovered = spawn_with_wal(&wal);
    let stats = recovered.stats();
    assert_eq!(stats.wal.replayed, users * acked as u64);
    assert_eq!(stats.wal.torn_truncations, 0);

    // Phase 4: the client-side crash story — retry *everything* under the
    // same idempotent ids. Replayed rounds dedup; the rest get recorded.
    let mut client = ServiceClient::connect(recovered.addr()).unwrap();
    for u in 0..users {
        for (k, (t, request)) in user_requests(u, rounds).iter().enumerate() {
            // Ids are per-pseudonym, so reusing 0..rounds per user is the
            // same id scheme as phase 1.
            let outcome = client
                .query_with_id(k as u64, *t, None, request, &query)
                .unwrap();
            assert!(matches!(outcome, QueryOutcome::Answered(_)));
        }
    }
    let stats = recovered.stats();
    assert_eq!(stats.dedup_hits, users * acked as u64);
    assert_eq!(stats.wal.appended, users * (rounds - acked) as u64);

    // Phase 5: a pristine server that saw each query exactly once agrees
    // on every per-pseudonym stream digest.
    let pristine = spawn(dummyloc_server::ServerConfig::default(), pois()).unwrap();
    let mut reference = ServiceClient::connect(pristine.addr()).unwrap();
    for u in 0..users {
        for (k, (t, request)) in user_requests(u, rounds).iter().enumerate() {
            reference
                .query_with_id(k as u64, *t, None, request, &query)
                .unwrap();
        }
    }
    assert_eq!(
        recovered.observer_log().stream_digests(),
        pristine.observer_log().stream_digests()
    );
    recovered.shutdown();
    pristine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A second restart replays what the first restart's traffic appended:
/// recovery composes across any number of crashes.
#[test]
fn recovery_composes_across_repeated_crashes() {
    let dir = scratch_dir("repeat");
    let wal = dir.join("observer.wal");
    let query = QueryKind::NextBus;
    let requests = user_requests(0, 9);

    // Three "process lifetimes", each acknowledging three more rounds and
    // then dying without a shutdown (dropping the handle's threads is as
    // close as in-process gets; the WAL was fsynced per record either way).
    for life in 0..3 {
        let handle = spawn_with_wal(&wal);
        assert_eq!(handle.stats().wal.replayed, life * 3);
        let mut client = ServiceClient::connect(handle.addr()).unwrap();
        for (k, (t, request)) in requests.iter().enumerate().skip(life as usize * 3).take(3) {
            client
                .query_with_id(k as u64, *t, None, request, &query)
                .unwrap();
        }
        // No shutdown: leak the handle's threads like a dying process
        // leaks everything. The next spawn must see all records anyway.
        std::mem::forget(handle);
    }

    let final_handle = spawn_with_wal(&wal);
    assert_eq!(final_handle.stats().wal.replayed, 9);
    let pristine = spawn(dummyloc_server::ServerConfig::default(), pois()).unwrap();
    let mut reference = ServiceClient::connect(pristine.addr()).unwrap();
    for (k, (t, request)) in requests.iter().enumerate() {
        reference
            .query_with_id(k as u64, *t, None, request, &query)
            .unwrap();
    }
    assert_eq!(
        final_handle.observer_log().stream_digests(),
        pristine.observer_log().stream_digests()
    );
    final_handle.shutdown();
    pristine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGKILL a server running the durable store (tiny flush threshold, so
/// real segments and WAL truncations happened mid-traffic): the restart
/// recovers from the manifest plus the short WAL tail, retried queries
/// dedup against the recovered id sets, and the final store digests are
/// byte-identical to a server that never crashed.
#[test]
fn kill_nine_with_store_recovers_identical_digests() {
    let dir = scratch_dir("kill9-store");
    let wal = dir.join("observer.wal");
    let store_dir = dir.join("store");
    let addr_file = dir.join("addr.txt");
    // ~512 bytes is two-three records: every few appends flush a segment
    // and truncate the WAL, so the kill lands on a real mixed image.
    let flush_bytes = 512;
    let mut child = spawn_child_with_store(&wal, &addr_file, Some((&store_dir, flush_bytes)));
    let addr = wait_for_addr(&addr_file);

    let users: u64 = 2;
    let rounds = 12;
    let acked = 7;
    let query = QueryKind::NextBus;

    let mut clients: Vec<ServiceClient> = (0..users)
        .map(|_| ServiceClient::connect_with_timeout(&addr, Some(Duration::from_secs(20))).unwrap())
        .collect();
    for (u, client) in clients.iter_mut().enumerate() {
        for (k, (t, request)) in user_requests(u as u64, rounds)
            .iter()
            .take(acked)
            .enumerate()
        {
            let outcome = client
                .query_with_id(k as u64, *t, None, request, &query)
                .unwrap();
            assert!(
                matches!(outcome, QueryOutcome::Answered(_)),
                "user {u} round {k}: {outcome:?}"
            );
        }
    }

    child.kill().unwrap();
    child.wait().unwrap();
    drop(clients);

    // Restart over the same WAL + store. The manifest restores the
    // durable prefix without reading a record payload; WAL tail replay
    // restores only what landed after the last flush.
    let recovered = spawn_with_durability(&wal, Some((&store_dir, flush_bytes)));
    let recovery = recovered.store_recovery().unwrap();
    assert_eq!(
        recovery.durable_records + recovery.tail_replayed,
        users * acked as u64,
        "{recovery:?}"
    );
    assert!(
        recovery.segments >= 1,
        "the tiny threshold must have flushed pre-crash: {recovery:?}"
    );
    assert!(
        recovered.stats().wal.replayed < users * acked as u64,
        "tail replay must be shorter than the full history"
    );

    // The client-side crash story: retry everything under the same
    // idempotent ids. Recovered rounds dedup; the rest get recorded.
    let mut client = ServiceClient::connect(recovered.addr()).unwrap();
    for u in 0..users {
        for (k, (t, request)) in user_requests(u, rounds).iter().enumerate() {
            let outcome = client
                .query_with_id(k as u64, *t, None, request, &query)
                .unwrap();
            assert!(matches!(outcome, QueryOutcome::Answered(_)));
        }
    }
    assert_eq!(recovered.stats().dedup_hits, users * acked as u64);

    // A pristine in-memory server that saw each query exactly once agrees
    // on every stream digest — the recipe is pinned across backends.
    let pristine = spawn(dummyloc_server::ServerConfig::default(), pois()).unwrap();
    let mut reference = ServiceClient::connect(pristine.addr()).unwrap();
    for u in 0..users {
        for (k, (t, request)) in user_requests(u, rounds).iter().enumerate() {
            reference
                .query_with_id(k as u64, *t, None, request, &query)
                .unwrap();
        }
    }
    assert_eq!(
        recovered.store_digests().unwrap(),
        pristine.observer_log().stream_digests()
    );
    recovered.shutdown();
    pristine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Deterministic crash images around the store's two commit points. A
/// flush writes the segment *then* commits the manifest; a compaction
/// writes the merged segment *then* commits *then* deletes the old
/// files; the WAL truncate comes last. Crashing between any two of those
/// steps leaves: an uncommitted (possibly torn) orphan segment, a merged
/// orphan next to the old manifest, stale segment files next to a new
/// manifest, or a committed manifest with an untruncated WAL. Every one
/// of these images must recover digests identical to a full-WAL replay.
#[test]
fn flush_and_compaction_crash_images_recover_identical_digests() {
    let dir = scratch_dir("store-images");
    let rounds = 10;
    let users = 2usize;
    let per_user: Vec<Vec<(f64, Request)>> = (0..users)
        .map(|u| user_requests(u as u64, rounds))
        .collect();
    let mut records: Vec<WalRecord> = Vec::new();
    for k in 0..rounds {
        for stream in per_user.iter() {
            let (t, request) = &stream[k];
            records.push(WalRecord {
                t: *t,
                seq: records.len() as u64,
                request_id: Some(k as u64),
                request: request.clone(),
            });
        }
    }
    let as_store = |r: &WalRecord| StoreRecord {
        t: r.t,
        seq: r.seq,
        request_id: r.request_id,
        request: r.request.clone(),
    };

    // The oracle: the full history through the in-memory backend.
    let mut reference = MemoryBackend::default();
    for r in &records {
        reference.append(as_store(r)).unwrap();
    }
    let expect = reference.stream_digests();

    let write_full_wal = |path: &Path| {
        let config = WalConfig {
            fsync: FsyncPolicy::Os,
            ..WalConfig::new(path.to_path_buf())
        };
        let mut writer = WalWriter::open(&config).unwrap();
        for r in &records {
            writer.append(r).unwrap();
        }
    };
    // A store whose durable prefix is `durable` records, split into
    // `segments` flushes — the state just before the simulated crash.
    let build_store = |dir: &Path, durable: usize, segments: usize| {
        let (mut store, _) = dummyloc_store::LogStore::open(LogStoreConfig::new(dir)).unwrap();
        for (i, chunk) in records[..durable]
            .chunks(durable.div_ceil(segments))
            .enumerate()
        {
            for r in chunk {
                store.append(as_store(r)).unwrap();
            }
            let out = store.flush().unwrap();
            assert!(out.segment.is_some(), "chunk {i} must flush");
        }
        store
    };
    let check = |name: &str, wal: &Path, store_dir: &Path, orphans: u64| {
        let handle = spawn_with_durability(wal, Some((store_dir, 1 << 20)));
        let recovery = handle.store_recovery().unwrap();
        assert_eq!(recovery.orphans_removed, orphans, "{name}: {recovery:?}");
        assert_eq!(handle.store_digests().unwrap(), expect, "{name}");
        handle.shutdown();
    };

    // Image A — crash mid-flush: the segment file hit disk (torn, even)
    // but the manifest never committed, and the WAL was never truncated.
    let a = dir.join("a");
    std::fs::create_dir_all(&a).unwrap();
    let wal_a = a.join("observer.wal");
    write_full_wal(&wal_a);
    let store_a = a.join("store");
    drop(build_store(&store_a, 12, 2));
    let orphan: Vec<StoreRecord> = records[12..16].iter().map(as_store).collect();
    let mut torn = segment::encode_segment(&orphan);
    torn.truncate(torn.len() - 7);
    std::fs::write(store_a.join("seg-000099.seg"), torn).unwrap();
    check("mid-flush", &wal_a, &store_a, 1);

    // Image B — crash mid-compaction, before the manifest commit: the
    // merged run exists as an orphan next to the old (still
    // authoritative) manifest and segments.
    let b = dir.join("b");
    std::fs::create_dir_all(&b).unwrap();
    let wal_b = b.join("observer.wal");
    write_full_wal(&wal_b);
    let store_b = b.join("store");
    drop(build_store(&store_b, 12, 3));
    let merged: Vec<StoreRecord> = records[..12].iter().map(as_store).collect();
    std::fs::write(
        store_b.join("seg-000100.seg"),
        segment::encode_segment(&merged),
    )
    .unwrap();
    check("mid-compaction", &wal_b, &store_b, 1);

    // Image C — crash after the compaction's manifest commit but before
    // the old segment files were deleted (and before the WAL truncate):
    // stale files next to a manifest that no longer references them.
    let c = dir.join("c");
    std::fs::create_dir_all(&c).unwrap();
    let wal_c = c.join("observer.wal");
    write_full_wal(&wal_c);
    let store_c = c.join("store");
    let mut store = build_store(&store_c, 12, 3);
    let outcome = store.compact().unwrap();
    assert_eq!(outcome.segments_after, 1);
    drop(store);
    let stale: Vec<StoreRecord> = records[..4].iter().map(as_store).collect();
    std::fs::write(
        store_c.join("seg-000001.seg"),
        segment::encode_segment(&stale),
    )
    .unwrap();
    check("post-compaction-commit", &wal_c, &store_c, 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// Write a real WAL file, then tear its final record at every byte
/// offset: each truncation recovers exactly the committed prefix, fixes
/// the file in place, and leaves it appendable.
#[test]
fn torn_wal_file_recovers_at_every_truncation_offset() {
    let dir = scratch_dir("torn");
    let records: Vec<WalRecord> = user_requests(3, 4)
        .into_iter()
        .enumerate()
        .map(|(k, (t, request))| WalRecord {
            t,
            seq: k as u64,
            request_id: Some(k as u64),
            request,
        })
        .collect();
    let mut wire = Vec::new();
    let mut committed = 0usize;
    for (i, r) in records.iter().enumerate() {
        if i + 1 == records.len() {
            committed = wire.len();
        }
        wire.extend_from_slice(&wal::encode_record(r).unwrap());
    }

    let path = dir.join("torn.wal");
    for cut in committed..=wire.len() {
        std::fs::write(&path, &wire[..cut]).unwrap();
        let mut got = Vec::new();
        let summary = wal::replay(&path, |r| got.push(r)).unwrap();
        let whole_tail_landed = cut == wire.len();
        let expect = if whole_tail_landed {
            &records[..]
        } else {
            &records[..records.len() - 1]
        };
        assert_eq!(got, expect, "cut at {cut}");
        assert_eq!(summary.records, expect.len() as u64);
        assert_eq!(summary.torn, cut != committed && !whole_tail_landed);
        // The file was truncated to a clean end-of-log in place …
        let clean_len = if whole_tail_landed {
            wire.len()
        } else {
            committed
        };
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len as u64);
        // … so appending continues without corrupting earlier records.
        let config = WalConfig {
            fsync: FsyncPolicy::Os,
            ..WalConfig::new(path.clone())
        };
        let mut writer = WalWriter::open(&config).unwrap();
        writer.append(records.last().unwrap()).unwrap();
        drop(writer);
        let mut after = Vec::new();
        let summary = wal::replay(&path, |r| after.push(r)).unwrap();
        assert!(!summary.torn);
        assert_eq!(after.len(), expect.len() + 1);
        assert_eq!(after.last(), records.last());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Abort a simulation at a seeded-random round boundary (the checkpoint
/// sink "crashes" the run after rolling `latest.ckpt`), then resume from
/// the file. The resumed outcome must be bitwise identical to an
/// uninterrupted run — serially and at a higher thread count.
#[test]
fn interrupted_simulation_resumes_bitwise_identical() {
    let fleet = workload::nara_fleet_sized(6, 420.0, 5);
    let config = SimConfig {
        grid_size: 10,
        dummy_count: 2,
        generator: GeneratorKind::Mln {
            m: 150.0,
            retry_budget: 3,
        },
        ..SimConfig::nara_default(5)
    };
    let reference =
        ParallelEngine::from_simulation(dummyloc_sim::Simulation::new(config).unwrap(), 1)
            .run(&fleet)
            .unwrap();
    assert!(reference.rounds >= 4, "workload too short for this test");

    let dir = scratch_dir("sim-resume");
    let ckpt_path = dir.join("latest.ckpt");
    for trial in 0..3u64 {
        // Crash after a seeded-random number of completed rounds (never
        // the final round — a finished run has nothing to resume).
        let crash_after = 1 + (derive_seed(31337, trial) % (reference.rounds as u64 - 2)) as usize;
        let threads = [1usize, 4][trial as usize % 2];
        let engine = ParallelEngine::from_simulation(
            dummyloc_sim::Simulation::new(config).unwrap(),
            threads,
        );
        let mut captured = 0usize;
        let crashed = {
            let mut sink = |c: &SimCheckpoint| {
                c.write_to(&ckpt_path)?;
                captured += 1;
                if captured == crash_after {
                    return Err(SimError::Checkpoint {
                        message: "injected crash".into(),
                    });
                }
                Ok(())
            };
            engine.run_session(
                &fleet,
                None,
                Some(CheckpointSpec {
                    every: 1,
                    sink: &mut sink,
                }),
            )
        };
        assert!(crashed.is_err(), "trial {trial}: the injected crash fires");

        let ckpt = SimCheckpoint::read_from(&ckpt_path).unwrap();
        assert_eq!(ckpt.completed_rounds, crash_after);
        for resume_threads in [1usize, 4] {
            let engine = ParallelEngine::from_simulation(
                dummyloc_sim::Simulation::new(config).unwrap(),
                resume_threads,
            );
            let resumed = engine.run_session(&fleet, Some(&ckpt), None).unwrap();
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&resumed.f_series), bits(&reference.f_series));
            assert_eq!(resumed.mean_f.to_bits(), reference.mean_f.to_bits());
            assert_eq!(resumed.shift_mean.to_bits(), reference.shift_mean.to_bits());
            assert_eq!(
                resumed.congestion_cv.to_bits(),
                reference.congestion_cv.to_bits()
            );
            assert_eq!(resumed.shift_buckets, reference.shift_buckets);
            assert_eq!(resumed.streams, reference.streams);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The background size-tiered compactor runs while queries are being
/// acknowledged: with a tiny flush threshold and a two-segment tier
/// trigger, the segment count converges to the tier policy instead of
/// growing one segment per flush, the merges are visible in the
/// `server.store.compact.*` counters, and the final digests are
/// byte-identical to a compaction-free server over the same workload.
#[test]
fn background_compaction_converges_under_live_traffic() {
    let dir = scratch_dir("bg-compact");
    let spawn_store_only = |store_dir: &Path, compact_tiers: usize| {
        let config = ServeOptions::new()
            .addr("127.0.0.1:0")
            .workers(2)
            .store(Some(LogStoreConfig {
                flush_threshold_bytes: 512,
                compact_tiers,
                ..LogStoreConfig::new(store_dir)
            }))
            .build()
            .unwrap();
        spawn(config, pois()).unwrap()
    };
    let drive = |handle: &ServerHandle| {
        let query = QueryKind::NextBus;
        for user in 0..4u64 {
            let mut client = ServiceClient::connect(handle.addr()).unwrap();
            for (k, (t, request)) in user_requests(user, 40).iter().enumerate() {
                client
                    .query_with_id(user * 1000 + k as u64, *t, None, request, &query)
                    .unwrap();
            }
        }
    };

    let compacted = spawn_store_only(&dir.join("tiered"), 2);
    drive(&compacted);
    // The appends are acknowledged; now wait for the compactor to fold
    // every full tier. Converged means at most one segment per size
    // tier — far below the several dozen flushes the traffic forced.
    let deadline = Instant::now() + Duration::from_secs(20);
    let (flushes, segments) = loop {
        let stats = compacted.store_stats().expect("store is configured");
        let flushes = compacted.stats().store.flushes;
        if (stats.segments <= 10 && compacted.stats().store.compact_runs > 0)
            || Instant::now() > deadline
        {
            break (flushes, stats.segments);
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let snap = compacted.stats();
    assert!(
        snap.store.compact_runs > 0,
        "background compactor never committed a merge"
    );
    assert!(
        segments <= 10 && segments < flushes,
        "segment count failed to converge: {segments} segments after {flushes} flushes"
    );
    assert!(snap.store.compact_segments_in >= 2 * snap.store.compact_runs);
    assert!(snap.store.compact_bytes > 0);
    let reg = compacted.registry().snapshot();
    assert_eq!(
        reg.counter("server.store.compact.runs"),
        Some(snap.store.compact_runs)
    );

    // Digest invariance against a compaction-free server: background
    // merges rewrite files, never history.
    let reference = spawn_store_only(&dir.join("flat"), 0);
    drive(&reference);
    assert_eq!(reference.stats().store.compact_runs, 0);
    let compacted_digests = compacted.shutdown().store_digests.unwrap();
    let reference_digests = reference.shutdown().store_digests.unwrap();
    assert_eq!(compacted_digests, reference_digests);
    std::fs::remove_dir_all(&dir).ok();
}
