//! Exporters: JSONL event streams, human-readable text dumps, and the
//! on-disk layout of a run (`<prefix>.manifest.json` + `<prefix>.events.jsonl`).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::manifest::RunManifest;
use crate::metrics::RegistrySnapshot;
use crate::recorder::Event;

/// Writes `events` as JSON Lines: one event object per line.
pub fn write_events_jsonl<W: Write>(mut w: W, events: &[Event]) -> io::Result<()> {
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Renders a registry snapshot as an aligned human-readable dump — what
/// `dummyloc metrics <addr>` prints.
pub fn render_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    if snap.is_empty() {
        out.push_str("(no metrics registered)\n");
        return out;
    }
    let width = snap
        .counters
        .iter()
        .map(|c| c.name.len())
        .chain(snap.gauges.iter().map(|g| g.name.len()))
        .chain(snap.histograms.iter().map(|h| h.name.len()))
        .max()
        .unwrap_or(0);
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for c in &snap.counters {
            let _ = writeln!(out, "  {:width$}  {}", c.name, c.value);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for g in &snap.gauges {
            let _ = writeln!(out, "  {:width$}  {}", g.name, g.value);
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms: {:w$}  {:>10} {:>10} {:>10} {:>10} {:>10}",
            "",
            "count",
            "p50",
            "p99",
            "p999",
            "max",
            w = width.saturating_sub(10)
        );
        for h in &snap.histograms {
            let s = &h.histogram;
            let _ = writeln!(
                out,
                "  {:width$}  {:>10} {:>10} {:>10} {:>10} {:>10}",
                h.name,
                s.count,
                s.percentile(50.0),
                s.percentile(99.0),
                s.percentile(99.9),
                s.max,
            );
        }
    }
    out
}

/// Where [`write_run`] put a run's artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPaths {
    /// The manifest JSON.
    pub manifest: PathBuf,
    /// The JSONL event stream.
    pub events: PathBuf,
}

/// Writes one run's artifacts into `dir` (created if missing):
/// `<prefix>.manifest.json` (pretty JSON) and `<prefix>.events.jsonl`.
pub fn write_run(
    dir: &Path,
    prefix: &str,
    manifest: &RunManifest,
    events: &[Event],
) -> io::Result<RunPaths> {
    std::fs::create_dir_all(dir)?;
    let paths = RunPaths {
        manifest: dir.join(format!("{prefix}.manifest.json")),
        events: dir.join(format!("{prefix}.events.jsonl")),
    };
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&paths.manifest, json)?;
    let file = std::fs::File::create(&paths.events)?;
    write_events_jsonl(io::BufWriter::new(file), events)?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricRegistry;
    use crate::recorder::Recorder;
    use std::time::Duration;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dummyloc-telemetry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn jsonl_round_trips_line_per_event() {
        let r = Recorder::new(4);
        r.record("a", vec![("k".into(), "v".into())]);
        r.record("b", Vec::new());
        let events = r.drain();
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, event) in lines.iter().zip(&events) {
            let back: Event = serde_json::from_str(line).unwrap();
            assert_eq!(&back, event);
        }
    }

    #[test]
    fn text_dump_lists_every_metric() {
        let reg = MetricRegistry::new();
        reg.counter("server.requests").add(12);
        reg.gauge("server.active").set(3);
        reg.histogram_log2("server.latency_us").record(100);
        let text = render_text(&reg.snapshot());
        assert!(text.contains("server.requests"), "{text}");
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("server.active"), "{text}");
        assert!(text.contains("server.latency_us"), "{text}");
        assert!(render_text(&MetricRegistry::new().snapshot()).contains("no metrics"));
    }

    #[test]
    fn write_run_lays_out_manifest_and_events() {
        let reg = MetricRegistry::new();
        reg.counter("n").inc();
        let manifest = RunManifest::capture("test", 1, &"cfg", &reg, 1, Duration::from_millis(10));
        let r = Recorder::new(4);
        r.record("done", Vec::new());
        let dir = tmp("run-layout");
        let paths = write_run(&dir, "demo", &manifest, &r.drain()).unwrap();
        assert!(paths.manifest.ends_with("demo.manifest.json"));
        let back: RunManifest =
            serde_json::from_str(&std::fs::read_to_string(&paths.manifest).unwrap()).unwrap();
        assert_eq!(back, manifest);
        let events = std::fs::read_to_string(&paths.events).unwrap();
        assert_eq!(events.lines().count(), 1);
    }
}
