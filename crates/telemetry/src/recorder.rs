//! A bounded, non-blocking structured-event ring buffer.
//!
//! Workers on a hot path must never stall on observability: [`Recorder::record`]
//! uses `try_lock` and a hard capacity, so under lock contention or
//! overflow the event is *dropped and counted* instead of blocking the
//! caller. The drop tally is itself observable, so a saturated recorder
//! is visible rather than silent.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One structured event: a name, a time offset from recorder creation,
/// and string key/value fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Microseconds since the recorder was created.
    pub t_us: u64,
    /// Event name (dotted, e.g. `user.done`).
    pub name: String,
    /// Key/value payload.
    pub fields: Vec<(String, String)>,
}

/// The bounded event buffer. All recording is non-blocking.
#[derive(Debug)]
pub struct Recorder {
    start: Instant,
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Recorder {
    /// A recorder holding at most `capacity` undrained events.
    pub fn new(capacity: usize) -> Self {
        Recorder {
            start: Instant::now(),
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of undrained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event. Returns `false` when the event was dropped —
    /// either the buffer is full or another thread holds the lock; in
    /// both cases the caller continues immediately.
    pub fn record(&self, name: &str, fields: Vec<(String, String)>) -> bool {
        let t_us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let Ok(mut buf) = self.buf.try_lock() else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        if buf.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        buf.push_back(Event {
            t_us,
            name: name.to_string(),
            fields,
        });
        self.recorded.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Removes and returns every buffered event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().expect("recorder lock").drain(..).collect()
    }

    /// Events currently buffered (recorded and not yet drained).
    pub fn len(&self) -> usize {
        self.buf.lock().expect("recorder lock").len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events accepted over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events dropped (overflow or contention) over the lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(k: &str, v: &str) -> Vec<(String, String)> {
        vec![(k.to_string(), v.to_string())]
    }

    #[test]
    fn records_in_order_and_drains() {
        let r = Recorder::new(8);
        assert!(r.record("a", kv("x", "1")));
        assert!(r.record("b", Vec::new()));
        assert_eq!(r.len(), 2);
        let events = r.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].fields, kv("x", "1"));
        assert_eq!(events[1].name, "b");
        assert!(events[0].t_us <= events[1].t_us);
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let r = Recorder::new(3);
        for i in 0..5 {
            r.record("e", kv("i", &i.to_string()));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 3);
        assert_eq!(r.dropped(), 2);
        // The survivors are the oldest three.
        let names: Vec<String> = r
            .drain()
            .into_iter()
            .map(|e| e.fields[0].1.clone())
            .collect();
        assert_eq!(names, vec!["0", "1", "2"]);
        // Draining frees capacity again.
        assert!(r.record("e", Vec::new()));
    }

    #[test]
    fn events_round_trip_through_json() {
        let r = Recorder::new(4);
        r.record("user.done", kv("digest", "abc"));
        let events = r.drain();
        let json = serde_json::to_string(&events[0]).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events[0]);
    }
}
