//! Named metrics: lock-free counters, gauges and fixed-bucket histograms
//! behind one registry.
//!
//! The record path (`inc`/`add`/`set`/`record`) touches only relaxed
//! atomics through pre-registered `Arc` handles — no lock, no allocation,
//! no syscall — so it is safe to call from server workers and simulation
//! hot loops. Registration and [`MetricRegistry::snapshot`] take a plain
//! mutex; both are cold paths (startup and scrape time).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A monotone tally. All operations are relaxed atomics: the value is a
/// statistic, not a synchronization point.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, active connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (negative to decrease).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets a [`Histogram::log2`] histogram carries: bounds
/// 1, 2, 4, … 2²⁹ (in microseconds that spans 1 µs to ~9 minutes) plus
/// the implicit overflow bucket.
pub const LOG2_BUCKETS: usize = 30;

/// A fixed-bucket histogram with inclusive upper bounds and one implicit
/// overflow bucket. Recording is lock-free (one relaxed `fetch_add` per
/// observation plus sum/max upkeep); the bucket layout is immutable after
/// construction so snapshots need no coordination.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit inclusive upper `bounds` (must be
    /// non-empty and strictly increasing — a violated layout is a
    /// programming error and panics).
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The standard log₂-scale layout: bounds 1, 2, 4, … 2^([`LOG2_BUCKETS`]−1).
    pub fn log2() -> Self {
        let bounds: Vec<u64> = (0..LOG2_BUCKETS as u32).map(|i| 1u64 << i).collect();
        Self::with_bounds(&bounds)
    }

    /// The inclusive upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&ub| ub < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the workspace's latency unit).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Point-in-time copy of every bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Serialized view of one [`Histogram`]. `counts` has one entry per bound
/// plus a final overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds.
    pub bounds: Vec<u64>,
    /// Observations per bucket (last entry = over the largest bound).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from raw bucket data (e.g. a wire-format
    /// histogram that carries no sum/max); percentile estimates then fall
    /// back to bucket bounds for the overflow bucket.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>) -> Self {
        let count = counts.iter().sum();
        HistogramSnapshot {
            bounds,
            counts,
            count,
            sum: 0,
            max: 0,
        }
    }

    /// Upper-bound percentile estimate: the inclusive bound of the bucket
    /// containing the `p`-th percentile observation (the recorded maximum
    /// for the overflow bucket). Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.min(self.count) {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow: the true value exceeds every bound; the
                    // recorded max is exact, the last bound a floor.
                    self.max.max(*self.bounds.last().expect("non-empty bounds"))
                };
            }
        }
        self.max
    }

    /// Arithmetic mean of all observations (0 when empty or when the
    /// snapshot was rebuilt without a sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One named counter value in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One named gauge value in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One named histogram in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedHistogram {
    /// Metric name.
    pub name: String,
    /// Bucket data at snapshot time.
    pub histogram: HistogramSnapshot,
}

/// Serialized point-in-time copy of a whole [`MetricRegistry`], sorted by
/// name so two snapshots of identical state compare equal. This is the
/// payload of the wire protocol's `Metrics` frame and of [`crate::manifest::RunManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, name-sorted.
    pub histograms: Vec<NamedHistogram>,
}

impl RegistrySnapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.histogram)
    }

    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A copy without any metric carrying a `.worker.` name segment.
    /// Per-worker metrics (e.g. the parallel engine's
    /// `sim.worker.3.step_us`) legitimately vary with the thread count,
    /// so any snapshot meant to be thread-count-invariant — scrubbed run
    /// manifests above all — must drop them entirely, names included.
    pub fn drop_worker_metrics(&self) -> RegistrySnapshot {
        let keep = |name: &str| !name.contains(".worker.");
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| keep(&c.name))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| keep(&g.name))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| keep(&h.name))
                .cloned()
                .collect(),
        }
    }

    /// A copy with every wall-clock-dependent quantity removed: histogram
    /// bucket distributions, sums and maxima are zeroed while observation
    /// *counts* (which are deterministic for a seeded run) are kept, and
    /// counters whose name ends in `_us` — accumulated durations by the
    /// naming convention — are zeroed as well.
    /// Two identical seeded runs must produce equal scrubbed snapshots.
    pub fn scrub_timings(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name.clone(),
                    value: if c.name.ends_with("_us") { 0 } else { c.value },
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| NamedHistogram {
                    name: h.name.clone(),
                    histogram: HistogramSnapshot {
                        bounds: h.histogram.bounds.clone(),
                        counts: vec![0; h.histogram.counts.len()],
                        count: h.histogram.count,
                        sum: 0,
                        max: 0,
                    },
                })
                .collect(),
        }
    }
}

/// The registry: named metrics, get-or-register semantics, snapshot on
/// demand. Cloneable handles ([`Arc<Counter>`] etc.) keep the record path
/// lock-free; the registry itself is only locked to register or snapshot.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("registry lock")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("registry lock")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name`, registering it with `bounds` on first
    /// use. A later call with different bounds returns the *existing*
    /// histogram — the first registration wins.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("registry lock")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_bounds(bounds))),
        )
    }

    /// The histogram named `name` with the standard log₂ layout.
    pub fn histogram_log2(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("registry lock")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::log2())),
        )
    }

    /// Point-in-time copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(name, c)| CounterSnapshot {
                    name: name.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(name, h)| NamedHistogram {
                    name: name.clone(),
                    histogram: h.snapshot(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricRegistry::new();
        let c = reg.counter("a.requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Get-or-register returns the same metric.
        assert_eq!(reg.counter("a.requests").get(), 5);
        let g = reg.gauge("a.depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.requests"), Some(5));
        assert_eq!(snap.gauge("a.depth"), Some(4));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_inclusive_upper_bound() {
        let h = Histogram::with_bounds(&[50, 100, 200]);
        h.record(50); // bucket 0 (inclusive)
        h.record(51); // bucket 1
        h.record(200); // bucket 2
        h.record(201); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 50 + 51 + 200 + 201);
        assert_eq!(s.max, 201);
    }

    #[test]
    fn log2_histogram_spans_microsecond_latencies() {
        let h = Histogram::log2();
        assert_eq!(h.bounds().len(), LOG2_BUCKETS);
        assert_eq!(h.bounds()[0], 1);
        h.record_duration(Duration::from_micros(3));
        let s = h.snapshot();
        // 3 µs lands in the (2, 4] bucket.
        assert_eq!(s.counts[2], 1);
    }

    #[test]
    fn percentile_estimates_from_buckets() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for _ in 0..98 {
            h.record(5); // ≤ 10
        }
        h.record(500); // ≤ 1000
        h.record(5000); // overflow
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), 10);
        assert_eq!(s.percentile(99.0), 1000);
        assert_eq!(s.percentile(100.0), 5000); // overflow → recorded max
        assert_eq!(
            HistogramSnapshot::from_parts(vec![], vec![]).percentile(50.0),
            0
        );
        // Rebuilt without a max: overflow falls back to the last bound.
        let parts = HistogramSnapshot::from_parts(vec![10, 100], vec![0, 0, 3]);
        assert_eq!(parts.percentile(50.0), 100);
        assert!((s.mean() - (98.0 * 5.0 + 500.0 + 5000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_name_sorted_and_round_trips() {
        let reg = MetricRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.histogram_log2("m.lat").record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a.first");
        assert_eq!(snap.counters[1].name, "z.last");
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn scrub_timings_keeps_counts_zeroes_distribution() {
        let reg = MetricRegistry::new();
        reg.counter("runs").add(3);
        reg.counter("overhead_us").add(1234);
        let h = reg.histogram_log2("lat");
        h.record(7);
        h.record(900);
        let scrubbed = reg.snapshot().scrub_timings();
        assert_eq!(scrubbed.counter("runs"), Some(3));
        assert_eq!(scrubbed.counter("overhead_us"), Some(0));
        let hist = scrubbed.histogram("lat").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 0);
        assert_eq!(hist.max, 0);
        assert!(hist.counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn drop_worker_metrics_removes_only_worker_names() {
        let reg = MetricRegistry::new();
        reg.counter("sim.rounds").add(4);
        reg.counter("sim.worker.0.users").add(9);
        reg.counter("sim.workers").add(2); // no `.worker.` segment: kept
        reg.gauge("sim.worker.1.depth").set(3);
        reg.histogram_log2("sim.phase.metrics_us").record(5);
        reg.histogram_log2("sim.worker.1.step_us").record(5);
        let kept = reg.snapshot().drop_worker_metrics();
        assert_eq!(kept.counter("sim.rounds"), Some(4));
        assert_eq!(kept.counter("sim.workers"), Some(2));
        assert_eq!(kept.counter("sim.worker.0.users"), None);
        assert_eq!(kept.gauge("sim.worker.1.depth"), None);
        assert!(kept.histogram("sim.phase.metrics_us").is_some());
        assert!(kept.histogram("sim.worker.1.step_us").is_none());
    }

    #[test]
    fn first_bounds_registration_wins() {
        let reg = MetricRegistry::new();
        let a = reg.histogram("h", &[1, 2, 3]);
        let b = reg.histogram("h", &[100]);
        assert_eq!(a.bounds(), b.bounds());
    }
}
