//! Observability substrate for the dummyloc workspace (DESIGN.md S14).
//!
//! Every long-running part of the stack — the TCP query service, the
//! simulation engine, the load generator, the bench harnesses — reports
//! through this one crate so numbers are comparable across runs and
//! subsystems:
//!
//! * [`metrics`] — a [`MetricRegistry`] of named atomic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket [`Histogram`]s (log₂ scale by default).
//!   Recording is lock-free; snapshots are taken on demand and serialize
//!   for the wire protocol's `Metrics` frame.
//! * [`span`] — RAII [`Span`] timers that report elapsed microseconds
//!   into a histogram and/or the event stream on drop.
//! * [`recorder`] — a bounded, non-blocking structured-event ring buffer
//!   ([`Recorder`]). A full or contended buffer drops-and-counts; it
//!   never stalls a worker.
//! * [`manifest`] — the [`RunManifest`] written alongside every
//!   experiment/loadgen/bench run: seed, config digest, git revision,
//!   wall time, throughput, full metric snapshot.
//! * [`export`] — JSONL event streams, human text dumps, and the
//!   `<prefix>.manifest.json` / `<prefix>.events.jsonl` run layout.
//!
//! # Example
//!
//! ```
//! use dummyloc_telemetry::Telemetry;
//! use std::time::Duration;
//!
//! let telemetry = Telemetry::new(1024);
//! let answered = telemetry.registry.counter("demo.answered");
//! {
//!     let _span = telemetry.span("demo.round_us");
//!     answered.inc();
//! }
//! telemetry.recorder.record("round.done", vec![("round".into(), "0".into())]);
//! let manifest = telemetry.manifest("demo", 42, &"config", Duration::from_millis(5));
//! assert_eq!(manifest.metrics.counter("demo.answered"), Some(1));
//! assert_eq!(manifest.metrics.histogram("demo.round_us").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod span;

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use serde::Serialize;

pub use export::{render_text, write_events_jsonl, write_run, RunPaths};
pub use manifest::{config_digest, fnv1a, git_rev, ResumeLineage, RunManifest, Throughput};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricRegistry, RegistrySnapshot};
pub use recorder::{Event, Recorder};
pub use span::Span;

/// The standard bundle a run carries around: one registry + one recorder.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Named metrics of the run.
    pub registry: Arc<MetricRegistry>,
    /// Structured-event buffer of the run.
    pub recorder: Arc<Recorder>,
}

impl Telemetry {
    /// A fresh bundle whose recorder holds at most `event_capacity`
    /// undrained events.
    pub fn new(event_capacity: usize) -> Self {
        Telemetry {
            registry: Arc::new(MetricRegistry::new()),
            recorder: Arc::new(Recorder::new(event_capacity)),
        }
    }

    /// An RAII timer recording into the log₂ histogram named `name` on
    /// drop.
    pub fn span(&self, name: &str) -> Span {
        Span::timed(self.registry.histogram_log2(name))
    }

    /// Builds the run manifest: `events` defaults to everything the
    /// recorder accepted.
    pub fn manifest<C: Serialize>(
        &self,
        tool: &str,
        seed: u64,
        config: &C,
        wall: Duration,
    ) -> RunManifest {
        RunManifest::capture(
            tool,
            seed,
            config,
            &self.registry,
            self.recorder.recorded(),
            wall,
        )
    }

    /// Drains the recorder and writes `<prefix>.manifest.json` +
    /// `<prefix>.events.jsonl` into `dir`.
    pub fn write_run(
        &self,
        dir: &Path,
        prefix: &str,
        manifest: &RunManifest,
    ) -> io::Result<RunPaths> {
        write_run(dir, prefix, manifest, &self.recorder.drain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_wires_registry_recorder_and_manifest() {
        let t = Telemetry::new(8);
        t.registry.counter("x").add(3);
        t.recorder.record("e", Vec::new());
        {
            let _s = t.span("phase_us");
        }
        let m = t.manifest("tool", 7, &42u64, Duration::from_millis(1));
        assert_eq!(m.metrics.counter("x"), Some(3));
        assert_eq!(m.throughput.events, 1);
        let dir = std::env::temp_dir().join("dummyloc-telemetry-tests/bundle");
        let paths = t.write_run(&dir, "t", &m).unwrap();
        assert!(paths.manifest.exists());
        assert!(paths.events.exists());
        assert!(t.recorder.is_empty());
    }
}
