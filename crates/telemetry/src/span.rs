//! RAII span timers.
//!
//! A [`Span`] measures the wall time between its creation and drop, then
//! records the elapsed microseconds into a [`Histogram`] and/or emits a
//! structured event into a [`Recorder`]. Dropping is the only way a span
//! reports, so every exit path of the timed scope — including early
//! returns and panics during unwinding — is covered.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::Histogram;
use crate::recorder::Recorder;

/// A running timer; reports on drop.
#[derive(Debug)]
pub struct Span {
    start: Instant,
    hist: Option<Arc<Histogram>>,
    event: Option<(Arc<Recorder>, String)>,
}

impl Span {
    /// Times into `hist` (elapsed microseconds) on drop.
    pub fn timed(hist: Arc<Histogram>) -> Self {
        Span {
            start: Instant::now(),
            hist: Some(hist),
            event: None,
        }
    }

    /// Emits an event named `name` with a `us` field on drop.
    pub fn traced(recorder: Arc<Recorder>, name: impl Into<String>) -> Self {
        Span {
            start: Instant::now(),
            hist: None,
            event: Some((recorder, name.into())),
        }
    }

    /// Both: histogram sample and event.
    pub fn timed_traced(
        hist: Arc<Histogram>,
        recorder: Arc<Recorder>,
        name: impl Into<String>,
    ) -> Self {
        Span {
            start: Instant::now(),
            hist: Some(hist),
            event: Some((recorder, name.into())),
        }
    }

    /// Time elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        if let Some(hist) = &self.hist {
            hist.record(us);
        }
        if let Some((recorder, name)) = &self.event {
            recorder.record(name, vec![("us".to_string(), us.to_string())]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricRegistry;

    #[test]
    fn span_records_on_drop() {
        let reg = MetricRegistry::new();
        let hist = reg.histogram_log2("op_us");
        {
            let _span = Span::timed(Arc::clone(&hist));
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 1_000, "slept ≥ 1 ms, recorded {} µs", snap.max);
    }

    #[test]
    fn span_emits_event_on_drop() {
        let recorder = Arc::new(Recorder::new(4));
        let reg = MetricRegistry::new();
        let hist = reg.histogram_log2("op_us");
        drop(Span::timed_traced(hist, Arc::clone(&recorder), "op"));
        let events = recorder.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "op");
        assert_eq!(events[0].fields[0].0, "us");
    }

    #[test]
    fn early_return_still_reports() {
        let reg = MetricRegistry::new();
        let hist = reg.histogram_log2("op_us");
        let run = |fail: bool| -> Result<(), ()> {
            let _span = Span::timed(reg.histogram_log2("op_us"));
            if fail {
                return Err(());
            }
            Ok(())
        };
        let _ = run(true);
        let _ = run(false);
        assert_eq!(hist.snapshot().count, 2);
    }
}
