//! Run manifests: the machine-readable record written alongside every
//! experiment, load-generation or bench run.
//!
//! A manifest names the tool, the seed, a digest of the exact
//! configuration, the git revision the binary was built from (when the
//! run happens inside a checkout), wall time, a throughput summary and a
//! full [`RegistrySnapshot`]. Two identical seeded runs agree on every
//! field except the wall-clock-derived ones — [`RunManifest::scrubbed`]
//! removes exactly those, which is what the determinism tests compare.

use std::path::Path;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::metrics::{MetricRegistry, RegistrySnapshot};

/// Events-per-second summary of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Work units completed (queries answered, rounds simulated, …).
    pub events: u64,
    /// `events` per wall-clock second.
    pub per_sec: f64,
}

/// Where a resumed run picked up from. Both fields are derived from the
/// checkpoint contents (never the wall clock), so two runs that resume
/// from the same checkpoint record identical lineage and scrubbed
/// manifests stay comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResumeLineage {
    /// Digest (16 hex digits) of the checkpoint the run resumed from —
    /// the "parent run id".
    pub parent: String,
    /// Work units already complete at resume time (simulation rounds, or
    /// cached experiment reports reused).
    pub resumed_at_round: u64,
}

/// The manifest of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Which tool produced the run (`loadgen`, `simulate`, `bench-fig7`, …).
    pub tool: String,
    /// Master seed of the run.
    pub seed: u64,
    /// FNV-1a digest (hex) of the canonical JSON of the run configuration.
    pub config_digest: String,
    /// Git revision of the enclosing checkout, when one exists.
    pub git_rev: Option<String>,
    /// Wall-clock start in milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Work-unit throughput summary.
    pub throughput: Throughput,
    /// Full metric snapshot at the end of the run.
    pub metrics: RegistrySnapshot,
    /// Lineage of a resumed run; `None` for an uninterrupted one.
    pub resume: Option<ResumeLineage>,
}

impl RunManifest {
    /// Builds a manifest for a finished run: digests `config`, stamps the
    /// wall clock, resolves the git revision from the current directory,
    /// and snapshots `registry`.
    pub fn capture<C: Serialize>(
        tool: &str,
        seed: u64,
        config: &C,
        registry: &MetricRegistry,
        events: u64,
        wall: Duration,
    ) -> Self {
        let wall_secs = wall.as_secs_f64();
        RunManifest {
            tool: tool.to_string(),
            seed,
            config_digest: config_digest(config),
            git_rev: git_rev(),
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
                .unwrap_or(0)
                .saturating_sub(wall.as_millis().min(u128::from(u64::MAX)) as u64),
            wall_secs,
            throughput: Throughput {
                events,
                per_sec: if wall_secs > 0.0 {
                    events as f64 / wall_secs
                } else {
                    0.0
                },
            },
            metrics: registry.snapshot(),
            resume: None,
        }
    }

    /// Records that this run resumed from a checkpoint: `parent` is the
    /// checkpoint digest (16 hex digits), `resumed_at_round` the work
    /// already completed when the run picked up.
    pub fn with_resume(mut self, parent: String, resumed_at_round: u64) -> Self {
        self.resume = Some(ResumeLineage {
            parent,
            resumed_at_round,
        });
        self
    }

    /// A copy with every wall-clock-derived field removed: start time and
    /// duration zeroed, throughput rate zeroed (the event *count* is
    /// kept), histogram timing distributions scrubbed, and per-worker
    /// (`.worker.`-named) metrics dropped entirely — those vary with the
    /// thread count even for a fixed seed. Two identical seeded runs
    /// produce equal scrubbed manifests *at any thread count*.
    pub fn scrubbed(&self) -> RunManifest {
        RunManifest {
            tool: self.tool.clone(),
            seed: self.seed,
            config_digest: self.config_digest.clone(),
            git_rev: self.git_rev.clone(),
            started_unix_ms: 0,
            wall_secs: 0.0,
            throughput: Throughput {
                events: self.throughput.events,
                per_sec: 0.0,
            },
            metrics: self.metrics.drop_worker_metrics().scrub_timings(),
            // Lineage is checkpoint-derived, not wall-clock-derived: a
            // resumed run *should* compare unequal to an uninterrupted
            // one unless it resumed from the same checkpoint.
            resume: self.resume.clone(),
        }
    }
}

/// FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a digest (hex) of the canonical JSON rendering of `config`.
/// Serialization failures degrade to a digest of the type name rather
/// than failing the run — a manifest must never abort the work it
/// describes.
pub fn config_digest<C: Serialize>(config: &C) -> String {
    let bytes =
        serde_json::to_string(config).unwrap_or_else(|_| std::any::type_name::<C>().to_string());
    format!("{:016x}", fnv1a(bytes.as_bytes()))
}

/// The commit hash of the git checkout enclosing the current directory,
/// resolved without invoking git (reads `.git/HEAD`, following one level
/// of `ref:` indirection through loose and packed refs). `None` outside a
/// checkout or on any read failure.
pub fn git_rev() -> Option<String> {
    let start = std::env::current_dir().ok()?;
    git_rev_from(&start)
}

/// [`git_rev`] starting the upward `.git` search from `start`.
pub fn git_rev_from(start: &Path) -> Option<String> {
    let mut dir = start.to_path_buf();
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            let Some(reference) = head.strip_prefix("ref: ") else {
                // Detached HEAD: the hash is right there.
                return Some(head.to_string());
            };
            let reference = reference.trim();
            if let Ok(rev) = std::fs::read_to_string(git.join(reference)) {
                return Some(rev.trim().to_string());
            }
            let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
            return packed.lines().find_map(|line| {
                let (rev, name) = line.split_once(' ')?;
                (name == reference).then(|| rev.to_string())
            });
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_config_sensitive() {
        let a = config_digest(&("fig7", 42u64));
        let b = config_digest(&("fig7", 42u64));
        let c = config_digest(&("fig7", 43u64));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn capture_and_scrub() {
        let reg = MetricRegistry::new();
        reg.counter("runs").inc();
        reg.histogram_log2("lat").record(77);
        let m = RunManifest::capture("test", 9, &"cfg", &reg, 10, Duration::from_secs(2));
        assert_eq!(m.tool, "test");
        assert_eq!(m.seed, 9);
        assert!((m.throughput.per_sec - 5.0).abs() < 1e-9);
        assert_eq!(m.metrics.counter("runs"), Some(1));
        let s = m.scrubbed();
        assert_eq!(s.started_unix_ms, 0);
        assert_eq!(s.wall_secs, 0.0);
        assert_eq!(s.throughput.events, 10);
        assert_eq!(s.throughput.per_sec, 0.0);
        assert_eq!(s.metrics.histogram("lat").unwrap().sum, 0);
        assert_eq!(s.metrics.histogram("lat").unwrap().count, 1);
        // Round-trips through JSON.
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn scrubbed_manifest_is_thread_count_invariant() {
        // Two registries that agree on everything except per-worker
        // metrics — as runs of the parallel engine at different thread
        // counts do — scrub to the same manifest.
        let build = |workers: usize| {
            let reg = MetricRegistry::new();
            reg.counter("sim.rounds").add(21);
            reg.histogram_log2("sim.phase.dummy_gen_us").record(100);
            for w in 0..workers {
                reg.counter(&format!("sim.worker.{w}.users")).add(7);
                reg.histogram_log2(&format!("sim.worker.{w}.step_us"))
                    .record(50);
            }
            RunManifest::capture("simulate", 42, &"cfg", &reg, 21, Duration::from_millis(5))
        };
        let one = build(1).scrubbed();
        let four = build(4).scrubbed();
        assert_eq!(one, four);
        assert!(one
            .metrics
            .counters
            .iter()
            .all(|c| !c.name.contains(".worker.")));
    }

    #[test]
    fn resume_lineage_survives_scrubbing_and_round_trips() {
        let reg = MetricRegistry::new();
        let fresh = RunManifest::capture("simulate", 7, &"cfg", &reg, 5, Duration::from_secs(1));
        assert_eq!(fresh.resume, None);
        let resumed = fresh.clone().with_resume("00deadbeef00cafe".into(), 3);
        let lineage = resumed.resume.clone().unwrap();
        assert_eq!(lineage.parent, "00deadbeef00cafe");
        assert_eq!(lineage.resumed_at_round, 3);
        // Scrubbing keeps lineage (it is checkpoint-derived, so two runs
        // resuming from the same checkpoint still compare equal) …
        assert_eq!(resumed.scrubbed().resume, Some(lineage));
        // … which also means a resumed run is distinguishable from an
        // uninterrupted one.
        assert_ne!(fresh.scrubbed(), resumed.scrubbed());
        let json = serde_json::to_string(&resumed).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resumed);
    }

    #[test]
    fn git_rev_resolves_this_checkout() {
        // The repo this test runs in is a git checkout, so a revision must
        // resolve; outside one, None is the contract.
        if let Some(rev) = git_rev() {
            assert!(rev.len() >= 7, "unexpected revision {rev:?}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn git_rev_outside_checkout_is_none() {
        assert_eq!(git_rev_from(Path::new("/")), None);
    }
}
