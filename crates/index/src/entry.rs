use dummyloc_geo::Point;

/// One indexed `(position, payload)` pair.
///
/// Each entry carries the sequence number it was inserted with; k-NN ties
/// are broken on it so that query results are deterministic regardless of
/// index internals.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry<T> {
    pos: Point,
    item: T,
    seq: u64,
}

impl<T> Entry<T> {
    /// Creates an entry (used by the index implementations).
    pub(crate) fn new(pos: Point, item: T, seq: u64) -> Self {
        Entry { pos, item, seq }
    }

    /// Indexed position.
    #[inline]
    pub fn pos(&self) -> Point {
        self.pos
    }

    /// Payload reference.
    #[inline]
    pub fn item(&self) -> &T {
        &self.item
    }

    /// Insertion sequence number (0-based, per index instance).
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Euclidean distance from this entry to `q`.
    #[inline]
    pub fn distance_to(&self, q: Point) -> f64 {
        self.pos.distance(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = Entry::new(Point::new(3.0, 4.0), "poi", 7);
        assert_eq!(e.pos(), Point::new(3.0, 4.0));
        assert_eq!(*e.item(), "poi");
        assert_eq!(e.seq(), 7);
        assert_eq!(e.distance_to(Point::ORIGIN), 5.0);
    }
}
