use dummyloc_geo::{BBox, GeoError, Point};

use crate::{Entry, PointIndex};

/// Default leaf capacity before a node splits.
const DEFAULT_NODE_CAPACITY: usize = 8;

/// A point-region quadtree supporting dynamic insertion.
///
/// The tree covers a fixed bounding box given at construction; insertions
/// outside it are rejected. Leaves split into four quadrants when they
/// exceed the node capacity. Points exactly on a split line go to the
/// right/top child (half-open split), matching [`Grid`](dummyloc_geo::Grid)
/// semantics.
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    bounds: BBox,
    capacity: usize,
    nodes: Vec<QNode<T>>,
    len: usize,
    next_seq: u64,
}

#[derive(Debug, Clone)]
enum QNode<T> {
    Leaf {
        bbox: BBox,
        entries: Vec<Entry<T>>,
    },
    /// Children indexed `[sw, se, nw, ne]`.
    Internal {
        bbox: BBox,
        children: [usize; 4],
    },
}

impl<T> QNode<T> {
    fn bbox(&self) -> &BBox {
        match self {
            QNode::Leaf { bbox, .. } | QNode::Internal { bbox, .. } => bbox,
        }
    }
}

impl<T> QuadTree<T> {
    /// Creates an empty tree over `bounds` with the default leaf capacity.
    pub fn new(bounds: BBox) -> Self {
        Self::with_capacity(bounds, DEFAULT_NODE_CAPACITY)
    }

    /// Creates an empty tree over `bounds`, splitting leaves that exceed
    /// `capacity` entries (minimum 1).
    pub fn with_capacity(bounds: BBox, capacity: usize) -> Self {
        QuadTree {
            bounds,
            capacity: capacity.max(1),
            nodes: vec![QNode::Leaf {
                bbox: bounds,
                entries: Vec::new(),
            }],
            len: 0,
            next_seq: 0,
        }
    }

    /// Builds a tree over `bounds` from `(position, item)` pairs; fails on
    /// the first out-of-bounds position.
    pub fn bulk_build(
        bounds: BBox,
        items: impl IntoIterator<Item = (Point, T)>,
    ) -> Result<Self, GeoError> {
        let mut t = QuadTree::new(bounds);
        for (pos, item) in items {
            t.insert(pos, item)?;
        }
        Ok(t)
    }

    /// The covered area.
    pub fn bounds(&self) -> BBox {
        self.bounds
    }

    /// Adds one entry; errors if `pos` is outside the tree bounds.
    pub fn insert(&mut self, pos: Point, item: T) -> Result<(), GeoError> {
        if !self.bounds.contains(pos) {
            return Err(GeoError::OutOfBounds {
                point: (pos.x, pos.y),
            });
        }
        let entry = Entry::new(pos, item, self.next_seq);
        self.next_seq += 1;
        self.len += 1;
        let mut node = 0usize;
        loop {
            match &mut self.nodes[node] {
                QNode::Internal { bbox, children } => {
                    node = children[quadrant(bbox, pos)];
                }
                QNode::Leaf { bbox, entries } => {
                    entries.push(entry);
                    let should_split = entries.len() > self.capacity && splittable(bbox);
                    if should_split {
                        self.split(node);
                    }
                    return Ok(());
                }
            }
        }
    }

    fn split(&mut self, node: usize) {
        let (bbox, entries) = match &mut self.nodes[node] {
            QNode::Leaf { bbox, entries } => (*bbox, std::mem::take(entries)),
            QNode::Internal { .. } => unreachable!("split is only called on leaves"),
        };
        let c = bbox.center();
        let quads = [
            BBox::new(bbox.min(), c).expect("valid sub-box"),
            BBox::new(Point::new(c.x, bbox.min().y), Point::new(bbox.max().x, c.y))
                .expect("valid sub-box"),
            BBox::new(Point::new(bbox.min().x, c.y), Point::new(c.x, bbox.max().y))
                .expect("valid sub-box"),
            BBox::new(c, bbox.max()).expect("valid sub-box"),
        ];
        let base = self.nodes.len();
        for q in quads {
            self.nodes.push(QNode::Leaf {
                bbox: q,
                entries: Vec::new(),
            });
        }
        for e in entries {
            let qi = quadrant(&bbox, e.pos());
            match &mut self.nodes[base + qi] {
                QNode::Leaf { entries, .. } => entries.push(e),
                QNode::Internal { .. } => unreachable!("fresh children are leaves"),
            }
        }
        self.nodes[node] = QNode::Internal {
            bbox,
            children: [base, base + 1, base + 2, base + 3],
        };
        // Note: children over capacity (duplicate points piling up in one
        // quadrant) recursively split on the *next* insertion touching them;
        // splittable() bounds the recursion for degenerate boxes.
    }

    /// Number of nodes (leaves + internals) — exposed for tests/benches.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all entries in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                QNode::Leaf { entries, .. } => Some(entries.iter()),
                QNode::Internal { .. } => None,
            })
            .flatten()
    }
}

/// Which quadrant of `bbox` contains `pos`: 0=sw, 1=se, 2=nw, 3=ne.
/// Points on the split lines go east/north (half-open semantics).
fn quadrant(bbox: &BBox, pos: Point) -> usize {
    let c = bbox.center();
    let east = pos.x >= c.x;
    let north = pos.y >= c.y;
    (north as usize) * 2 + east as usize
}

/// A box is splittable while its children would still be distinguishable at
/// f64 precision; stops pathological recursion on duplicate points.
fn splittable(bbox: &BBox) -> bool {
    let c = bbox.center();
    (c.x > bbox.min().x || c.y > bbox.min().y)
        && (bbox.width() > f64::EPSILON * c.x.abs().max(1.0)
            || bbox.height() > f64::EPSILON * c.y.abs().max(1.0))
}

impl<T> PointIndex<T> for QuadTree<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn k_nearest(&self, query: Point, k: usize) -> Vec<&Entry<T>> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Best-first search over nodes ordered by bbox distance.
        let mut best: Vec<(f64, &Entry<T>)> = Vec::new();
        let mut stack: Vec<(f64, usize)> = vec![(self.bounds.distance_sq_to(query), 0)];
        while let Some((dist, node)) = pop_nearest(&mut stack) {
            let kth = if best.len() >= k {
                best[best.len() - 1].0
            } else {
                f64::INFINITY
            };
            if dist > kth {
                break;
            }
            match &self.nodes[node] {
                QNode::Leaf { entries, .. } => {
                    for e in entries {
                        crate::kdtree::push_candidate(
                            &mut best,
                            k,
                            (e.pos().distance_sq(&query), e),
                        );
                    }
                }
                QNode::Internal { children, .. } => {
                    for &c in children {
                        stack.push((self.nodes[c].bbox().distance_sq_to(query), c));
                    }
                }
            }
        }
        best.into_iter().map(|(_, e)| e).collect()
    }

    fn in_bbox(&self, bbox: &BBox) -> Vec<&Entry<T>> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            match &self.nodes[node] {
                QNode::Leaf { bbox: nb, entries } => {
                    if nb.intersects(bbox) {
                        out.extend(entries.iter().filter(|e| bbox.contains(e.pos())));
                    }
                }
                QNode::Internal { bbox: nb, children } => {
                    if nb.intersects(bbox) {
                        stack.extend_from_slice(children);
                    }
                }
            }
        }
        out.sort_by_key(|e| e.seq());
        out
    }
}

/// Pops the stack element with the smallest distance (linear scan; frontier
/// stays small because children are pushed only when reachable).
fn pop_nearest(stack: &mut Vec<(f64, usize)>) -> Option<(f64, usize)> {
    if stack.is_empty() {
        return None;
    }
    let mut min_i = 0;
    for i in 1..stack.len() {
        if stack[i].0 < stack[min_i].0 {
            min_i = i;
        }
    }
    Some(stack.swap_remove(min_i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap()
    }

    #[test]
    fn insert_rejects_out_of_bounds() {
        let mut t = QuadTree::new(bounds());
        assert!(t.insert(Point::new(101.0, 0.0), 0).is_err());
        assert!(t.insert(Point::new(100.0, 100.0), 1).is_ok());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn split_happens_beyond_capacity() {
        let mut t = QuadTree::with_capacity(bounds(), 2);
        assert_eq!(t.node_count(), 1);
        t.insert(Point::new(10.0, 10.0), 0).unwrap();
        t.insert(Point::new(90.0, 10.0), 1).unwrap();
        assert_eq!(t.node_count(), 1);
        t.insert(Point::new(10.0, 90.0), 2).unwrap();
        assert_eq!(t.node_count(), 5); // root split into 4 leaves
        assert_eq!(t.len(), 3);
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn duplicate_points_do_not_recurse_forever() {
        let mut t = QuadTree::with_capacity(bounds(), 2);
        let p = Point::new(50.0, 50.0);
        for i in 0..64 {
            t.insert(p, i).unwrap();
        }
        assert_eq!(t.len(), 64);
        let hits = t.k_nearest(p, 64);
        assert_eq!(hits.len(), 64);
        // seq order on ties
        assert!(hits.windows(2).all(|w| w[0].seq() < w[1].seq()));
    }

    #[test]
    fn nearest_matches_expectation() {
        let t = QuadTree::bulk_build(
            bounds(),
            vec![
                (Point::new(10.0, 10.0), "a"),
                (Point::new(90.0, 90.0), "b"),
                (Point::new(50.0, 40.0), "c"),
            ],
        )
        .unwrap();
        assert_eq!(*t.nearest(Point::new(55.0, 45.0)).unwrap().item(), "c");
        assert_eq!(*t.nearest(Point::new(0.0, 0.0)).unwrap().item(), "a");
    }

    #[test]
    fn k_nearest_after_many_inserts() {
        let mut t = QuadTree::with_capacity(bounds(), 4);
        for i in 0..100 {
            let x = (i % 10) as f64 * 10.0 + 5.0;
            let y = (i / 10) as f64 * 10.0 + 5.0;
            t.insert(Point::new(x, y), i).unwrap();
        }
        let hits = t.k_nearest(Point::new(55.0, 55.0), 5);
        assert_eq!(hits.len(), 5);
        assert_eq!(*hits[0].item(), 55);
        // The next four are the 4-neighborhood at distance 10.
        let mut items: Vec<usize> = hits[1..].iter().map(|e| *e.item()).collect();
        items.sort_unstable();
        assert_eq!(items, vec![45, 54, 56, 65]);
    }

    #[test]
    fn in_bbox_exact() {
        let mut t = QuadTree::with_capacity(bounds(), 4);
        for i in 0..100 {
            let x = (i % 10) as f64 * 10.0 + 5.0;
            let y = (i / 10) as f64 * 10.0 + 5.0;
            t.insert(Point::new(x, y), i).unwrap();
        }
        let q = BBox::new(Point::new(0.0, 0.0), Point::new(25.0, 25.0)).unwrap();
        let items: Vec<usize> = t.in_bbox(&q).iter().map(|e| *e.item()).collect();
        assert_eq!(items, vec![0, 1, 2, 10, 11, 12, 20, 21, 22]);
    }

    #[test]
    fn boundary_point_on_split_line_is_findable() {
        let mut t = QuadTree::with_capacity(bounds(), 1);
        t.insert(Point::new(50.0, 50.0), "center").unwrap(); // exactly on split lines
        t.insert(Point::new(10.0, 10.0), "sw").unwrap();
        t.insert(Point::new(90.0, 90.0), "ne").unwrap();
        assert_eq!(*t.nearest(Point::new(50.0, 50.0)).unwrap().item(), "center");
        let all = t.in_bbox(&bounds());
        assert_eq!(all.len(), 3);
    }
}
