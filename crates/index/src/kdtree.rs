use dummyloc_geo::{BBox, Point};

use crate::{Entry, PointIndex};

/// A statically bulk-built 2-d k-d tree.
///
/// Built once over a point set with median splits (guaranteeing a balanced
/// tree of depth `⌈log₂ n⌉`), then queried read-only. This is the index of
/// choice for the LBS provider's POI database, which never changes during a
/// simulation.
#[derive(Debug, Clone)]
pub struct KdTree<T> {
    entries: Vec<Entry<T>>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

/// One tree node; `entry` indexes into `entries`, children into `nodes`.
#[derive(Debug, Clone)]
struct Node {
    entry: usize,
    axis: Axis,
    left: Option<usize>,
    right: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
}

impl Axis {
    fn coord(self, p: Point) -> f64 {
        match self {
            Axis::X => p.x,
            Axis::Y => p.y,
        }
    }

    fn next(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

impl<T> KdTree<T> {
    /// Builds a balanced tree from `(position, item)` pairs.
    pub fn bulk_build(items: impl IntoIterator<Item = (Point, T)>) -> Self {
        let entries: Vec<Entry<T>> = items
            .into_iter()
            .enumerate()
            .map(|(i, (pos, item))| Entry::new(pos, item, i as u64))
            .collect();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        let mut nodes = Vec::with_capacity(entries.len());
        let root = Self::build(&entries, &mut order[..], Axis::X, &mut nodes);
        KdTree {
            entries,
            nodes,
            root,
        }
    }

    fn build(
        entries: &[Entry<T>],
        order: &mut [usize],
        axis: Axis,
        nodes: &mut Vec<Node>,
    ) -> Option<usize> {
        if order.is_empty() {
            return None;
        }
        let mid = order.len() / 2;
        // Median split on the axis; ties broken by seq for determinism.
        order.select_nth_unstable_by(mid, |&a, &b| {
            axis.coord(entries[a].pos())
                .partial_cmp(&axis.coord(entries[b].pos()))
                .expect("positions are finite")
                .then(entries[a].seq().cmp(&entries[b].seq()))
        });
        let entry = order[mid];
        let node_idx = nodes.len();
        nodes.push(Node {
            entry,
            axis,
            left: None,
            right: None,
        });
        let (lo, rest) = order.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = Self::build(entries, lo, axis.next(), nodes);
        let right = Self::build(entries, hi, axis.next(), nodes);
        nodes[node_idx].left = left;
        nodes[node_idx].right = right;
        Some(node_idx)
    }

    /// Depth of the tree (0 for an empty tree) — exposed for tests and
    /// benches asserting balance.
    pub fn depth(&self) -> usize {
        fn go<T>(tree: &KdTree<T>, node: Option<usize>) -> usize {
            node.map_or(0, |n| {
                1 + go(tree, tree.nodes[n].left).max(go(tree, tree.nodes[n].right))
            })
        }
        go(self, self.root)
    }

    fn knn_recurse<'a>(
        &'a self,
        node: Option<usize>,
        query: Point,
        k: usize,
        best: &mut Vec<(f64, &'a Entry<T>)>,
    ) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        let e = &self.entries[n.entry];
        let d = e.pos().distance_sq(&query);
        push_candidate(best, k, (d, e));

        let diff = n.axis.coord(query) - n.axis.coord(e.pos());
        let (near, far) = if diff <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.knn_recurse(near, query, k, best);
        // Visit the far side only if the splitting plane is closer than the
        // current kth distance (or we still lack k candidates).
        let kth = if best.len() >= k {
            best[best.len() - 1].0
        } else {
            f64::INFINITY
        };
        if diff * diff <= kth {
            self.knn_recurse(far, query, k, best);
        }
    }

    fn range_recurse<'a>(&'a self, node: Option<usize>, bbox: &BBox, out: &mut Vec<&'a Entry<T>>) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        let e = &self.entries[n.entry];
        if bbox.contains(e.pos()) {
            out.push(e);
        }
        let c = n.axis.coord(e.pos());
        let (lo, hi) = match n.axis {
            Axis::X => (bbox.min().x, bbox.max().x),
            Axis::Y => (bbox.min().y, bbox.max().y),
        };
        if lo <= c {
            self.range_recurse(n.left, bbox, out);
        }
        if hi >= c {
            self.range_recurse(n.right, bbox, out);
        }
    }
}

/// Maintains `best` as the sorted top-k candidate list (shared with the
/// quadtree's best-first search).
pub(crate) fn push_candidate<'a, T>(
    best: &mut Vec<(f64, &'a Entry<T>)>,
    k: usize,
    cand: (f64, &'a Entry<T>),
) {
    let pos = best
        .binary_search_by(|probe| {
            probe
                .0
                .partial_cmp(&cand.0)
                .expect("positions are finite")
                .then(probe.1.seq().cmp(&cand.1.seq()))
        })
        .unwrap_or_else(|p| p);
    if pos < k {
        best.insert(pos, cand);
        best.truncate(k);
    }
}

impl<T> PointIndex<T> for KdTree<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn k_nearest(&self, query: Point, k: usize) -> Vec<&Entry<T>> {
        if k == 0 {
            return Vec::new();
        }
        let mut best = Vec::with_capacity(k.min(self.entries.len()) + 1);
        self.knn_recurse(self.root, query, k, &mut best);
        best.into_iter().map(|(_, e)| e).collect()
    }

    fn in_bbox(&self, bbox: &BBox) -> Vec<&Entry<T>> {
        let mut out = Vec::new();
        self.range_recurse(self.root, bbox, &mut out);
        out.sort_by_key(|e| e.seq());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagonal(n: usize) -> KdTree<usize> {
        KdTree::bulk_build((0..n).map(|i| (Point::new(i as f64, i as f64), i)))
    }

    #[test]
    fn empty_tree() {
        let t: KdTree<()> = KdTree::bulk_build(std::iter::empty());
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
        assert!(t.nearest(Point::ORIGIN).is_none());
        assert!(t
            .in_bbox(&BBox::centered(Point::ORIGIN, 10.0).unwrap())
            .is_empty());
    }

    #[test]
    fn balanced_depth() {
        let t = diagonal(1023);
        assert_eq!(t.len(), 1023);
        assert_eq!(t.depth(), 10); // perfectly balanced: 2^10 - 1 nodes
    }

    #[test]
    fn nearest_finds_closest_diagonal_point() {
        let t = diagonal(100);
        let hit = t.nearest(Point::new(41.4, 41.7)).unwrap();
        assert_eq!(*hit.item(), 42);
        // (41.4, 41.6) is exactly equidistant to 41 and 42; the insertion-
        // order tie-break must pick 41.
        let tie = t.nearest(Point::new(41.4, 41.6)).unwrap();
        assert_eq!(*tie.item(), 41);
    }

    #[test]
    fn k_nearest_ordering_and_count() {
        let t = diagonal(10);
        let hits = t.k_nearest(Point::new(5.0, 5.0), 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(*hits[0].item(), 5);
        // 4 and 6 are equidistant; insertion order puts 4 first.
        assert_eq!(*hits[1].item(), 4);
        assert_eq!(*hits[2].item(), 6);
        assert_eq!(t.k_nearest(Point::ORIGIN, 100).len(), 10);
    }

    #[test]
    fn in_bbox_exact() {
        let t = diagonal(10);
        let b = BBox::new(Point::new(2.5, 0.0), Point::new(6.5, 9.0)).unwrap();
        let hits = t.in_bbox(&b);
        let items: Vec<usize> = hits.iter().map(|e| *e.item()).collect();
        assert_eq!(items, vec![3, 4, 5, 6]);
    }

    #[test]
    fn duplicate_positions_all_returned() {
        let p = Point::new(1.0, 1.0);
        let t = KdTree::bulk_build(vec![(p, "x"), (p, "y"), (p, "z")]);
        let hits = t.k_nearest(Point::ORIGIN, 3);
        let items: Vec<&str> = hits.iter().map(|e| *e.item()).collect();
        assert_eq!(items, vec!["x", "y", "z"]); // seq order on ties
        assert_eq!(t.count_in_bbox(&BBox::centered(p, 0.5).unwrap()), 3);
    }
}
