//! An R-tree over rectangles.
//!
//! The point indexes serve POIs and reported positions; the *cloaking*
//! baseline produces **regions**, and a provider storing cloaked requests
//! needs rectangle queries ("which stored cloaks intersect this area?",
//! "which cloak is nearest to this point?"). This R-tree stores
//! [`BBox`]-keyed entries with quadratic-split insertion — the classic
//! Guttman formulation — and supports intersection and nearest-rectangle
//! queries.

use dummyloc_geo::{BBox, Point};

/// Maximum entries per node before it splits.
const MAX_ENTRIES: usize = 8;
/// Minimum entries after a split (Guttman recommends ~40 % of max).
const MIN_ENTRIES: usize = 3;

/// One stored rectangle with its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RectEntry<T> {
    /// The indexed rectangle.
    pub bbox: BBox,
    /// The payload.
    pub item: T,
    /// Insertion sequence number (deterministic tie-breaks).
    pub seq: u64,
}

#[derive(Debug, Clone)]
enum RNode<T> {
    Leaf {
        bbox: BBox,
        entries: Vec<RectEntry<T>>,
    },
    Internal {
        bbox: BBox,
        children: Vec<RNode<T>>,
    },
}

impl<T> RNode<T> {
    fn bbox(&self) -> BBox {
        match self {
            RNode::Leaf { bbox, .. } | RNode::Internal { bbox, .. } => *bbox,
        }
    }

    fn recompute_bbox(&mut self) {
        match self {
            RNode::Leaf { bbox, entries } => {
                *bbox = union_of(entries.iter().map(|e| e.bbox));
            }
            RNode::Internal { bbox, children } => {
                *bbox = union_of(children.iter().map(|c| c.bbox()));
            }
        }
    }
}

fn union_of<I: IntoIterator<Item = BBox>>(boxes: I) -> BBox {
    let mut it = boxes.into_iter();
    let first = it.next().expect("nodes are never empty");
    it.fold(first, |acc, b| acc.union(&b))
}

/// How much `node` would have to grow to cover `bbox`.
fn enlargement(node: &BBox, bbox: &BBox) -> f64 {
    node.union(bbox).area() - node.area()
}

/// An R-tree mapping rectangles to payloads.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<RNode<T>>,
    len: usize,
    next_seq: u64,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            root: None,
            len: 0,
            next_seq: 0,
        }
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts one rectangle.
    pub fn insert(&mut self, bbox: BBox, item: T) {
        let entry = RectEntry {
            bbox,
            item,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(RNode::Leaf {
                    bbox,
                    entries: vec![entry],
                });
            }
            Some(mut root) => {
                if let Some(sibling) = insert_recursive(&mut root, entry) {
                    // Root split: grow the tree by one level.
                    let bbox = root.bbox().union(&sibling.bbox());
                    self.root = Some(RNode::Internal {
                        bbox,
                        children: vec![root, sibling],
                    });
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Builds a tree from `(bbox, item)` pairs.
    pub fn bulk_build(items: impl IntoIterator<Item = (BBox, T)>) -> Self {
        let mut tree = RTree::new();
        for (bbox, item) in items {
            tree.insert(bbox, item);
        }
        tree
    }

    /// All entries whose rectangle intersects `query` (boundary touching
    /// counts), in insertion order.
    pub fn intersecting(&self, query: &BBox) -> Vec<&RectEntry<T>> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            collect_intersecting(root, query, &mut out);
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// All entries whose rectangle contains `p`, in insertion order.
    pub fn containing(&self, p: Point) -> Vec<&RectEntry<T>> {
        let pt = BBox::new(p, p).expect("a point is a valid degenerate box");
        self.intersecting(&pt)
            .into_iter()
            .filter(|e| e.bbox.contains(p))
            .collect()
    }

    /// The entry whose rectangle is nearest to `p` (distance 0 when `p`
    /// is inside one); ties broken by insertion order.
    pub fn nearest(&self, p: Point) -> Option<&RectEntry<T>> {
        let root = self.root.as_ref()?;
        let mut best: Option<(f64, &RectEntry<T>)> = None;
        nearest_recursive(root, p, &mut best);
        best.map(|(_, e)| e)
    }

    /// Iterates over all entries in no particular order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = &RectEntry<T>> + '_> {
        match &self.root {
            None => Box::new(std::iter::empty()),
            Some(root) => iter_node(root),
        }
    }

    /// Height of the tree (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        fn go<T>(node: &RNode<T>) -> usize {
            match node {
                RNode::Leaf { .. } => 1,
                RNode::Internal { children, .. } => 1 + go(&children[0]),
            }
        }
        self.root.as_ref().map_or(0, go)
    }
}

fn iter_node<'a, T>(node: &'a RNode<T>) -> Box<dyn Iterator<Item = &'a RectEntry<T>> + 'a> {
    match node {
        RNode::Leaf { entries, .. } => Box::new(entries.iter()),
        RNode::Internal { children, .. } => Box::new(children.iter().flat_map(|c| iter_node(c))),
    }
}

fn collect_intersecting<'a, T>(node: &'a RNode<T>, query: &BBox, out: &mut Vec<&'a RectEntry<T>>) {
    if !node.bbox().intersects(query) {
        return;
    }
    match node {
        RNode::Leaf { entries, .. } => {
            out.extend(entries.iter().filter(|e| e.bbox.intersects(query)));
        }
        RNode::Internal { children, .. } => {
            for c in children {
                collect_intersecting(c, query, out);
            }
        }
    }
}

fn nearest_recursive<'a, T>(
    node: &'a RNode<T>,
    p: Point,
    best: &mut Option<(f64, &'a RectEntry<T>)>,
) {
    if let Some((d, _)) = best {
        if node.bbox().distance_sq_to(p) > *d {
            return;
        }
    }
    match node {
        RNode::Leaf { entries, .. } => {
            for e in entries {
                let d = e.bbox.distance_sq_to(p);
                let better = match best {
                    None => true,
                    Some((bd, be)) => d < *bd || (d == *bd && e.seq < be.seq),
                };
                if better {
                    *best = Some((d, e));
                }
            }
        }
        RNode::Internal { children, .. } => {
            // Visit children nearest-first for better pruning.
            let mut order: Vec<&RNode<T>> = children.iter().collect();
            order.sort_by(|a, b| {
                a.bbox()
                    .distance_sq_to(p)
                    .partial_cmp(&b.bbox().distance_sq_to(p))
                    .expect("finite boxes")
            });
            for c in order {
                nearest_recursive(c, p, best);
            }
        }
    }
}

/// Inserts into the subtree; returns a new sibling if the node split.
fn insert_recursive<T>(node: &mut RNode<T>, entry: RectEntry<T>) -> Option<RNode<T>> {
    match node {
        RNode::Leaf { bbox, entries } => {
            *bbox = if entries.is_empty() {
                entry.bbox
            } else {
                bbox.union(&entry.bbox)
            };
            entries.push(entry);
            if entries.len() > MAX_ENTRIES {
                let (left, right) = quadratic_split(std::mem::take(entries));
                let right_bbox = union_of(right.iter().map(|e| e.bbox));
                *entries = left;
                node.recompute_bbox();
                Some(RNode::Leaf {
                    bbox: right_bbox,
                    entries: right,
                })
            } else {
                None
            }
        }
        RNode::Internal { bbox, children } => {
            *bbox = bbox.union(&entry.bbox);
            // Choose the child needing least enlargement (ties: smaller
            // area, then first).
            let chosen = (0..children.len())
                .min_by(|&a, &b| {
                    let ea = enlargement(&children[a].bbox(), &entry.bbox);
                    let eb = enlargement(&children[b].bbox(), &entry.bbox);
                    ea.partial_cmp(&eb).expect("finite boxes").then(
                        children[a]
                            .bbox()
                            .area()
                            .partial_cmp(&children[b].bbox().area())
                            .expect("finite boxes"),
                    )
                })
                .expect("internal nodes are never empty");
            if let Some(sibling) = insert_recursive(&mut children[chosen], entry) {
                children.push(sibling);
                if children.len() > MAX_ENTRIES {
                    let (left, right) = quadratic_split_nodes(std::mem::take(children));
                    let right_bbox = union_of(right.iter().map(|n| n.bbox()));
                    *children = left;
                    node.recompute_bbox();
                    return Some(RNode::Internal {
                        bbox: right_bbox,
                        children: right,
                    });
                }
            }
            node.recompute_bbox();
            None
        }
    }
}

/// Guttman's quadratic split for leaf entries.
fn quadratic_split<T>(entries: Vec<RectEntry<T>>) -> (Vec<RectEntry<T>>, Vec<RectEntry<T>>) {
    split_generic(entries, |e| e.bbox)
}

/// Guttman's quadratic split for child nodes.
fn quadratic_split_nodes<T>(nodes: Vec<RNode<T>>) -> (Vec<RNode<T>>, Vec<RNode<T>>) {
    split_generic(nodes, |n| n.bbox())
}

fn split_generic<E>(mut items: Vec<E>, bbox_of: impl Fn(&E) -> BBox) -> (Vec<E>, Vec<E>) {
    debug_assert!(items.len() >= 2);
    // Pick the two seeds wasting the most area if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let a = bbox_of(&items[i]);
            let b = bbox_of(&items[j]);
            let waste = a.union(&b).area() - a.area() - b.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    // Remove the higher index first so the lower stays valid.
    let (hi, lo) = if seed_a > seed_b {
        (seed_a, seed_b)
    } else {
        (seed_b, seed_a)
    };
    let item_hi = items.swap_remove(hi);
    let item_lo = items.swap_remove(lo);
    let mut left = vec![item_lo];
    let mut right = vec![item_hi];
    let mut left_bbox = bbox_of(&left[0]);
    let mut right_bbox = bbox_of(&right[0]);

    while let Some(item) = items.pop() {
        // Honor the minimum fill: if one side must take everything left.
        let remaining = items.len() + 1;
        if left.len() + remaining <= MIN_ENTRIES {
            left_bbox = left_bbox.union(&bbox_of(&item));
            left.push(item);
            continue;
        }
        if right.len() + remaining <= MIN_ENTRIES {
            right_bbox = right_bbox.union(&bbox_of(&item));
            right.push(item);
            continue;
        }
        let b = bbox_of(&item);
        let grow_l = enlargement(&left_bbox, &b);
        let grow_r = enlargement(&right_bbox, &b);
        if grow_l < grow_r || (grow_l == grow_r && left.len() <= right.len()) {
            left_bbox = left_bbox.union(&b);
            left.push(item);
        } else {
            right_bbox = right_bbox.union(&b);
            right.push(item);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x0: f64, y0: f64, x1: f64, y1: f64) -> BBox {
        BBox::new(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    /// A grid of 10×10 unit boxes spaced 10 apart.
    fn grid_tree() -> RTree<usize> {
        let mut t = RTree::new();
        for i in 0..100 {
            let x = (i % 10) as f64 * 10.0;
            let y = (i / 10) as f64 * 10.0;
            t.insert(bb(x, y, x + 8.0, y + 8.0), i);
        }
        t
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: RTree<()> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.nearest(Point::ORIGIN).is_none());
        assert!(t.intersecting(&bb(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.containing(Point::ORIGIN).is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn insert_and_count() {
        let t = grid_tree();
        assert_eq!(t.len(), 100);
        assert_eq!(t.iter().count(), 100);
        assert!(t.height() >= 2, "100 entries at fanout 8 must split");
    }

    #[test]
    fn intersecting_matches_brute_force() {
        let t = grid_tree();
        let queries = [
            bb(0.0, 0.0, 9.0, 9.0),
            bb(5.0, 5.0, 25.0, 25.0),
            bb(95.0, 95.0, 200.0, 200.0),
            bb(-10.0, -10.0, -1.0, -1.0),
            bb(0.0, 0.0, 100.0, 100.0),
        ];
        let brute: Vec<RectEntry<usize>> = t.iter().cloned().collect();
        for q in queries {
            let got: Vec<usize> = t.intersecting(&q).iter().map(|e| e.item).collect();
            let mut want: Vec<usize> = brute
                .iter()
                .filter(|e| e.bbox.intersects(&q))
                .map(|e| e.item)
                .collect();
            want.sort_unstable();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            assert_eq!(got_sorted, want, "query {q:?}");
            // Insertion order within results.
            assert!(got.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn containing_point() {
        let t = grid_tree();
        // (4, 4) lies inside box 0 only.
        let hits = t.containing(Point::new(4.0, 4.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].item, 0);
        // (9, 9) lies in the gap between boxes.
        assert!(t.containing(Point::new(9.0, 9.0)).is_empty());
    }

    #[test]
    fn nearest_rectangle() {
        let t = grid_tree();
        // Inside box 55 → distance 0.
        let n = t.nearest(Point::new(53.0, 53.0)).unwrap();
        assert_eq!(n.item, 55);
        // In the gap at (9, 4): box 0 ends at x=8 (distance 1).
        let n = t.nearest(Point::new(9.0, 4.0)).unwrap();
        assert_eq!(n.item, 0);
        // Far outside: the nearest corner box.
        let n = t.nearest(Point::new(1000.0, 1000.0)).unwrap();
        assert_eq!(n.item, 99);
    }

    #[test]
    fn nearest_tie_breaks_by_insertion() {
        let mut t = RTree::new();
        t.insert(bb(0.0, 0.0, 1.0, 1.0), "first");
        t.insert(bb(3.0, 0.0, 4.0, 1.0), "second");
        // (2, 0.5) is exactly 1 away from both.
        assert_eq!(t.nearest(Point::new(2.0, 0.5)).unwrap().item, "first");
    }

    #[test]
    fn overlapping_rectangles_all_found() {
        let mut t = RTree::new();
        for i in 0..30 {
            t.insert(bb(0.0, 0.0, 10.0 + i as f64, 10.0), i);
        }
        let hits = t.containing(Point::new(5.0, 5.0));
        assert_eq!(hits.len(), 30);
    }

    #[test]
    fn cloak_storage_use_case() {
        // Store adaptive cloaks; ask which stored cloaks overlap a survey
        // area — the provider-side analytics the baseline enables.
        use dummyloc_geo::Grid;
        let area = bb(0.0, 0.0, 1000.0, 1000.0);
        let grid = Grid::square(area, 8).unwrap();
        let mut t = RTree::new();
        for (i, cell) in grid.cells().enumerate() {
            if i % 3 == 0 {
                t.insert(grid.cell_bbox(cell).unwrap(), i);
            }
        }
        let survey = bb(0.0, 0.0, 250.0, 250.0);
        let overlapping = t.intersecting(&survey);
        assert!(!overlapping.is_empty());
        for e in overlapping {
            assert!(e.bbox.intersects(&survey));
        }
    }
}
