use dummyloc_geo::{BBox, CellId, GeoError, Grid, Point};

use crate::{Entry, PointIndex};

/// A bucketing index over a uniform [`Grid`].
///
/// Besides the generic [`PointIndex`] queries, the grid index exposes the
/// per-region counters the paper's machinery is built on:
///
/// * [`GridIndex::count_at`] is exactly MLN's `position(x, y)` probe —
///   *"return the amount of position data where (x, y, t−1) belongs"*,
/// * [`GridIndex::cell_counts`] is the population vector behind the `P`
///   (congestion) and `Shift(P)` metrics,
/// * [`GridIndex::occupied_cells`] is the region set behind `F` (ubiquity).
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    grid: Grid,
    buckets: Vec<Vec<Entry<T>>>,
    len: usize,
    next_seq: u64,
}

impl<T> GridIndex<T> {
    /// Creates an empty index over `grid`.
    pub fn new(grid: Grid) -> Self {
        let buckets = (0..grid.cell_count()).map(|_| Vec::new()).collect();
        GridIndex {
            grid,
            buckets,
            len: 0,
            next_seq: 0,
        }
    }

    /// Builds an index over `grid` from `(position, item)` pairs; fails on
    /// the first out-of-bounds position.
    pub fn bulk_build(
        grid: Grid,
        items: impl IntoIterator<Item = (Point, T)>,
    ) -> Result<Self, GeoError> {
        let mut ix = GridIndex::new(grid);
        for (pos, item) in items {
            ix.insert(pos, item)?;
        }
        Ok(ix)
    }

    /// The underlying region partition.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Adds one entry; errors if `pos` is outside the grid.
    pub fn insert(&mut self, pos: Point, item: T) -> Result<(), GeoError> {
        let cell = self.grid.cell_of(pos)?;
        let idx = self
            .grid
            .linear_index(cell)
            .expect("cell_of returns valid cells");
        self.buckets[idx].push(Entry::new(pos, item, self.next_seq));
        self.next_seq += 1;
        self.len += 1;
        Ok(())
    }

    /// Removes every entry while keeping the grid (bucket capacity is
    /// retained, making per-tick rebuilds allocation-free in steady state).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.next_seq = 0;
    }

    /// Number of entries in the region containing `p` — the MLN density
    /// probe. Errors if `p` is outside the grid.
    pub fn count_at(&self, p: Point) -> Result<usize, GeoError> {
        let cell = self.grid.cell_of(p)?;
        Ok(self.count_in_cell(cell))
    }

    /// Number of entries in one region (zero for out-of-range cells).
    pub fn count_in_cell(&self, cell: CellId) -> usize {
        self.grid
            .linear_index(cell)
            .map_or(0, |i| self.buckets[i].len())
    }

    /// Entries in one region, in insertion order.
    pub fn entries_in_cell(&self, cell: CellId) -> &[Entry<T>] {
        self.grid
            .linear_index(cell)
            .map_or(&[], |i| &self.buckets[i])
    }

    /// Per-region entry counts in row-major (linear-index) order.
    pub fn cell_counts(&self) -> Vec<usize> {
        self.buckets.iter().map(Vec::len).collect()
    }

    /// Number of regions holding at least one entry (the numerator of the
    /// ubiquity metric `F`).
    pub fn occupied_cells(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }

    /// Iterates over all entries in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        self.buckets.iter().flatten()
    }

    /// Minimum distance from `q` to any cell at Chebyshev ring `r` around
    /// `center`, used to prune the ring expansion in k-NN. Returns 0 when no
    /// useful bound exists (e.g. `q` outside the inner box).
    fn ring_min_distance_sq(&self, q: Point, center: CellId, r: u32) -> f64 {
        if r == 0 {
            return 0.0;
        }
        // Cells at ring r lie outside the (unclipped) box of cells within
        // Chebyshev distance r-1 of the center; the nearest a ring cell can
        // be is q's distance to that box's boundary.
        let cw = self.grid.cell_width();
        let ch = self.grid.cell_height();
        let min = self.grid.bounds().min();
        let inner_min_x = min.x + (center.col as f64 - (r - 1) as f64) * cw;
        let inner_max_x = min.x + (center.col as f64 + r as f64) * cw;
        let inner_min_y = min.y + (center.row as f64 - (r - 1) as f64) * ch;
        let inner_max_y = min.y + (center.row as f64 + r as f64) * ch;
        let d = (q.x - inner_min_x)
            .min(inner_max_x - q.x)
            .min(q.y - inner_min_y)
            .min(inner_max_y - q.y);
        if d <= 0.0 {
            0.0
        } else {
            d * d
        }
    }

    /// Cells at exactly Chebyshev distance `r` from `center`, clipped to the
    /// grid.
    fn ring_cells(&self, center: CellId, r: u32) -> Vec<CellId> {
        let (cols, rows) = (self.grid.cols() as i64, self.grid.rows() as i64);
        let (c0, r0) = (center.col as i64, center.row as i64);
        let ri = r as i64;
        let mut out = Vec::new();
        let mut push = |c: i64, w: i64| {
            if c >= 0 && w >= 0 && c < cols && w < rows {
                out.push(CellId::new(c as u32, w as u32));
            }
        };
        if r == 0 {
            push(c0, r0);
            return out;
        }
        for c in (c0 - ri)..=(c0 + ri) {
            push(c, r0 - ri);
            push(c, r0 + ri);
        }
        for w in (r0 - ri + 1)..=(r0 + ri - 1) {
            push(c0 - ri, w);
            push(c0 + ri, w);
        }
        out
    }
}

impl<T> PointIndex<T> for GridIndex<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn k_nearest(&self, query: Point, k: usize) -> Vec<&Entry<T>> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let center = self.grid.cell_of_clamped(query);
        let max_ring = self.grid.cols().max(self.grid.rows());
        let mut cands: Vec<(f64, &Entry<T>)> = Vec::new();
        let mut kth_sq = f64::INFINITY;
        for r in 0..=max_ring {
            if cands.len() >= k && self.ring_min_distance_sq(query, center, r) > kth_sq {
                break;
            }
            for cell in self.ring_cells(center, r) {
                let idx = self
                    .grid
                    .linear_index(cell)
                    .expect("ring cells are clipped");
                if self.buckets[idx].is_empty() {
                    continue;
                }
                if cands.len() >= k {
                    let cb = self.grid.cell_bbox(cell).expect("valid cell");
                    if cb.distance_sq_to(query) > kth_sq {
                        continue;
                    }
                }
                for e in &self.buckets[idx] {
                    cands.push((e.pos().distance_sq(&query), e));
                }
            }
            if cands.len() >= k {
                cands.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("positions are finite")
                        .then(a.1.seq().cmp(&b.1.seq()))
                });
                cands.truncate(k);
                kth_sq = cands[cands.len() - 1].0;
            }
        }
        cands.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("positions are finite")
                .then(a.1.seq().cmp(&b.1.seq()))
        });
        cands.truncate(k);
        cands.into_iter().map(|(_, e)| e).collect()
    }

    fn in_bbox(&self, bbox: &BBox) -> Vec<&Entry<T>> {
        let mut out: Vec<&Entry<T>> = Vec::new();
        for cell in self.grid.cells_intersecting(bbox) {
            let idx = self
                .grid
                .linear_index(cell)
                .expect("intersecting cells are valid");
            for e in &self.buckets[idx] {
                if bbox.contains(e.pos()) {
                    out.push(e);
                }
            }
        }
        out.sort_by_key(|e| e.seq());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        Grid::square(b, 10).unwrap()
    }

    #[test]
    fn insert_rejects_out_of_bounds() {
        let mut ix = GridIndex::new(grid());
        assert!(ix.insert(Point::new(-1.0, 0.0), 0).is_err());
        assert!(ix.insert(Point::new(50.0, 50.0), 1).is_ok());
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn count_at_is_the_mln_probe() {
        let mut ix = GridIndex::new(grid());
        // Three entries in the cell covering (5,5): cell (0,0) spans [0,10).
        for i in 0..3 {
            ix.insert(Point::new(2.0 + i as f64, 3.0), i).unwrap();
        }
        ix.insert(Point::new(55.0, 55.0), 9).unwrap();
        assert_eq!(ix.count_at(Point::new(9.0, 9.0)).unwrap(), 3);
        assert_eq!(ix.count_at(Point::new(55.0, 55.0)).unwrap(), 1);
        assert_eq!(ix.count_at(Point::new(95.0, 95.0)).unwrap(), 0);
        assert!(ix.count_at(Point::new(200.0, 0.0)).is_err());
    }

    #[test]
    fn occupied_cells_and_counts() {
        let mut ix = GridIndex::new(grid());
        ix.insert(Point::new(5.0, 5.0), 0).unwrap();
        ix.insert(Point::new(6.0, 6.0), 1).unwrap();
        ix.insert(Point::new(95.0, 95.0), 2).unwrap();
        assert_eq!(ix.occupied_cells(), 2);
        let counts = ix.cell_counts();
        assert_eq!(counts.iter().sum::<usize>(), 3);
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 2);
        assert_eq!(ix.count_in_cell(CellId::new(0, 0)), 2);
        assert_eq!(ix.entries_in_cell(CellId::new(0, 0)).len(), 2);
        // Out-of-range cells report zero rather than panicking.
        assert_eq!(ix.count_in_cell(CellId::new(99, 99)), 0);
    }

    #[test]
    fn clear_resets() {
        let mut ix = GridIndex::new(grid());
        ix.insert(Point::new(5.0, 5.0), 0).unwrap();
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.occupied_cells(), 0);
        ix.insert(Point::new(5.0, 5.0), 0).unwrap();
        assert_eq!(ix.iter().next().unwrap().seq(), 0);
    }

    #[test]
    fn k_nearest_simple() {
        let ix = GridIndex::bulk_build(
            grid(),
            vec![
                (Point::new(10.0, 10.0), "a"),
                (Point::new(90.0, 90.0), "b"),
                (Point::new(12.0, 10.0), "c"),
            ],
        )
        .unwrap();
        let hits = ix.k_nearest(Point::new(11.0, 10.0), 2);
        assert_eq!(hits.len(), 2);
        // a and c are both at distance 1; insertion order puts a first.
        assert_eq!(*hits[0].item(), "a");
        assert_eq!(*hits[1].item(), "c");
    }

    #[test]
    fn k_nearest_query_outside_grid() {
        let ix = GridIndex::bulk_build(
            grid(),
            vec![(Point::new(10.0, 10.0), "a"), (Point::new(90.0, 90.0), "b")],
        )
        .unwrap();
        let hits = ix.k_nearest(Point::new(-50.0, -50.0), 1);
        assert_eq!(*hits[0].item(), "a");
    }

    #[test]
    fn in_bbox_is_exact_and_insertion_ordered() {
        let ix = GridIndex::bulk_build(
            grid(),
            vec![
                (Point::new(10.0, 10.0), 0),
                (Point::new(10.5, 10.5), 1),
                (Point::new(30.0, 30.0), 2),
            ],
        )
        .unwrap();
        let q = BBox::new(Point::new(9.0, 9.0), Point::new(11.0, 11.0)).unwrap();
        let hits = ix.in_bbox(&q);
        assert_eq!(hits.len(), 2);
        assert_eq!(*hits[0].item(), 0);
        assert_eq!(*hits[1].item(), 1);
    }

    #[test]
    fn ring_cells_cover_grid_exactly_once() {
        let ix: GridIndex<()> = GridIndex::new(grid());
        let center = CellId::new(3, 7);
        let mut seen = std::collections::HashSet::new();
        for r in 0..=10 {
            for c in ix.ring_cells(center, r) {
                assert_eq!(center.chebyshev_distance(&c), r);
                assert!(seen.insert(c), "cell {c:?} visited twice");
            }
        }
        assert_eq!(seen.len(), 100);
    }
}
