//! Spatial index substrate for the `dummyloc` workspace.
//!
//! Three point indexes behind one trait:
//!
//! * [`GridIndex`] — bucketing over a [`Grid`](dummyloc_geo::Grid). This is
//!   the workhorse: MLN's `position(x, y)` density probe is a grid-bucket
//!   count, and the per-region population counters behind the paper's `P`
//!   and `Shift(P)` metrics are grid buckets too.
//! * [`QuadTree`] — a dynamically built point-region quadtree for POI
//!   databases that grow at runtime.
//! * [`KdTree`] — a statically bulk-built k-d tree, fastest for the
//!   read-only POI sets the LBS provider serves.
//!
//! A fourth index, [`RTree`], stores *rectangles* rather than points —
//! the shape produced by the spatial-cloaking baseline — with
//! intersection, containment and nearest-rectangle queries.
//!
//! All three point indexes implement [`PointIndex`], so the provider, the adversary
//! models and the benches can swap them freely. k-NN results are exact and
//! returned in ascending distance order with deterministic tie-breaking (by
//! insertion order), so experiments are reproducible across index choices.
//!
//! # Example
//!
//! ```
//! use dummyloc_geo::Point;
//! use dummyloc_index::{KdTree, PointIndex};
//!
//! let pois = vec![
//!     (Point::new(0.0, 0.0), "station"),
//!     (Point::new(50.0, 10.0), "temple"),
//!     (Point::new(90.0, 90.0), "park"),
//! ];
//! let tree = KdTree::bulk_build(pois);
//! let hits = tree.k_nearest(Point::new(60.0, 20.0), 1);
//! assert_eq!(*hits[0].item(), "temple");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entry;
mod grid_index;
mod kdtree;
mod quadtree;
mod rtree;

pub use entry::Entry;
pub use grid_index::GridIndex;
pub use kdtree::KdTree;
pub use quadtree::QuadTree;
pub use rtree::{RTree, RectEntry};

use dummyloc_geo::{BBox, Point};

/// Common interface over the point indexes.
///
/// Implementations must return *exact* answers: `k_nearest` is the true
/// k-nearest-neighbor set in ascending distance order (ties broken by
/// insertion order), and `in_bbox` returns exactly the entries whose
/// position lies in the closed box.
pub trait PointIndex<T> {
    /// Number of indexed entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` entries nearest to `query`, ascending by Euclidean distance,
    /// ties broken by insertion order. Returns fewer than `k` when the index
    /// holds fewer entries.
    fn k_nearest(&self, query: Point, k: usize) -> Vec<&Entry<T>>;

    /// The nearest entry, or `None` for an empty index.
    fn nearest(&self, query: Point) -> Option<&Entry<T>> {
        self.k_nearest(query, 1).into_iter().next()
    }

    /// All entries whose position lies inside the closed `bbox`, in
    /// insertion order.
    fn in_bbox(&self, bbox: &BBox) -> Vec<&Entry<T>>;

    /// Number of entries inside the closed `bbox`.
    fn count_in_bbox(&self, bbox: &BBox) -> usize {
        self.in_bbox(bbox).len()
    }
}

/// Reference brute-force implementation used to cross-check the real
/// indexes in tests and benches.
#[derive(Debug, Clone, Default)]
pub struct BruteForce<T> {
    entries: Vec<Entry<T>>,
}

impl<T> BruteForce<T> {
    /// Creates an empty brute-force index.
    pub fn new() -> Self {
        BruteForce {
            entries: Vec::new(),
        }
    }

    /// Builds from `(position, item)` pairs.
    pub fn bulk_build(items: impl IntoIterator<Item = (Point, T)>) -> Self {
        let mut ix = BruteForce::new();
        for (pos, item) in items {
            ix.insert(pos, item);
        }
        ix
    }

    /// Adds one entry.
    pub fn insert(&mut self, pos: Point, item: T) {
        let seq = self.entries.len() as u64;
        self.entries.push(Entry::new(pos, item, seq));
    }
}

impl<T> PointIndex<T> for BruteForce<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn k_nearest(&self, query: Point, k: usize) -> Vec<&Entry<T>> {
        let mut refs: Vec<&Entry<T>> = self.entries.iter().collect();
        refs.sort_by(|a, b| {
            a.pos()
                .distance_sq(&query)
                .partial_cmp(&b.pos().distance_sq(&query))
                .expect("positions are finite")
                .then(a.seq().cmp(&b.seq()))
        });
        refs.truncate(k);
        refs
    }

    fn in_bbox(&self, bbox: &BBox) -> Vec<&Entry<T>> {
        self.entries
            .iter()
            .filter(|e| bbox.contains(e.pos()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_orders_by_distance_then_seq() {
        let mut ix = BruteForce::new();
        ix.insert(Point::new(1.0, 0.0), "b"); // same distance as "a"
        ix.insert(Point::new(-1.0, 0.0), "a");
        ix.insert(Point::new(5.0, 0.0), "c");
        let hits = ix.k_nearest(Point::ORIGIN, 3);
        // Tie between first two broken by insertion order: "b" first.
        assert_eq!(*hits[0].item(), "b");
        assert_eq!(*hits[1].item(), "a");
        assert_eq!(*hits[2].item(), "c");
        assert!(ix.nearest(Point::ORIGIN).is_some());
        assert_eq!(ix.k_nearest(Point::ORIGIN, 10).len(), 3);
    }

    #[test]
    fn brute_force_bbox_filter() {
        let ix = BruteForce::bulk_build(vec![
            (Point::new(0.0, 0.0), 1),
            (Point::new(10.0, 10.0), 2),
            (Point::new(5.0, 5.0), 3),
        ]);
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(6.0, 6.0)).unwrap();
        let hits = ix.in_bbox(&b);
        assert_eq!(hits.len(), 2);
        assert_eq!(ix.count_in_bbox(&b), 2);
    }

    #[test]
    fn empty_index_behaviour() {
        let ix: BruteForce<()> = BruteForce::new();
        assert!(ix.is_empty());
        assert!(ix.nearest(Point::ORIGIN).is_none());
        assert!(ix.k_nearest(Point::ORIGIN, 3).is_empty());
    }
}
