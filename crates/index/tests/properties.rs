//! Property-based cross-checks: every index must agree exactly with the
//! brute-force reference on k-NN and range queries.

use dummyloc_geo::{BBox, Grid, Point};
use dummyloc_index::{BruteForce, GridIndex, KdTree, PointIndex, QuadTree, RTree};
use proptest::prelude::*;

const SIDE: f64 = 1000.0;

fn bounds() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)).unwrap()
}

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..=SIDE, 0.0..=SIDE), 0..120)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn arb_query() -> impl Strategy<Value = Point> {
    (-100.0..=SIDE + 100.0, -100.0..=SIDE + 100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_query_bbox() -> impl Strategy<Value = BBox> {
    (0.0..=SIDE, 0.0..=SIDE, 0.0..=SIDE, 0.0..=SIDE).prop_map(|(x0, y0, x1, y1)| {
        BBox::from_corners(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    })
}

/// Same items (payload = index) for every implementation.
fn items(points: &[Point]) -> Vec<(Point, usize)> {
    points.iter().copied().zip(0..).collect()
}

fn assert_same_knn<A: PointIndex<usize>, B: PointIndex<usize>>(
    a: &A,
    b: &B,
    query: Point,
    k: usize,
) -> Result<(), TestCaseError> {
    let ha: Vec<usize> = a.k_nearest(query, k).iter().map(|e| *e.item()).collect();
    let hb: Vec<usize> = b.k_nearest(query, k).iter().map(|e| *e.item()).collect();
    prop_assert_eq!(ha, hb);
    Ok(())
}

fn assert_same_range<A: PointIndex<usize>, B: PointIndex<usize>>(
    a: &A,
    b: &B,
    query: &BBox,
) -> Result<(), TestCaseError> {
    let ha: Vec<usize> = a.in_bbox(query).iter().map(|e| *e.item()).collect();
    let hb: Vec<usize> = b.in_bbox(query).iter().map(|e| *e.item()).collect();
    prop_assert_eq!(ha, hb);
    Ok(())
}

proptest! {
    #[test]
    fn kdtree_matches_brute_force(
        points in arb_points(),
        query in arb_query(),
        k in 0usize..20,
    ) {
        let reference = BruteForce::bulk_build(items(&points));
        let tree = KdTree::bulk_build(items(&points));
        prop_assert_eq!(tree.len(), reference.len());
        assert_same_knn(&tree, &reference, query, k)?;
    }

    #[test]
    fn quadtree_matches_brute_force(
        points in arb_points(),
        query in arb_query(),
        k in 0usize..20,
        cap in 1usize..16,
    ) {
        let reference = BruteForce::bulk_build(items(&points));
        let mut tree = QuadTree::with_capacity(bounds(), cap);
        for (p, i) in items(&points) {
            tree.insert(p, i).unwrap();
        }
        assert_same_knn(&tree, &reference, query, k)?;
    }

    #[test]
    fn grid_index_matches_brute_force(
        points in arb_points(),
        query in arb_query(),
        k in 0usize..20,
        n in 1u32..24,
    ) {
        let reference = BruteForce::bulk_build(items(&points));
        let grid = Grid::square(bounds(), n).unwrap();
        let ix = GridIndex::bulk_build(grid, items(&points)).unwrap();
        assert_same_knn(&ix, &reference, query, k)?;
    }

    #[test]
    fn range_queries_match_brute_force(
        points in arb_points(),
        qb in arb_query_bbox(),
        n in 1u32..24,
        cap in 1usize..16,
    ) {
        let reference = BruteForce::bulk_build(items(&points));
        let kd = KdTree::bulk_build(items(&points));
        let grid = Grid::square(bounds(), n).unwrap();
        let gi = GridIndex::bulk_build(grid, items(&points)).unwrap();
        let mut qt = QuadTree::with_capacity(bounds(), cap);
        for (p, i) in items(&points) {
            qt.insert(p, i).unwrap();
        }
        assert_same_range(&kd, &reference, &qb)?;
        assert_same_range(&gi, &reference, &qb)?;
        assert_same_range(&qt, &reference, &qb)?;
    }

    #[test]
    fn grid_counters_are_consistent(points in arb_points(), n in 1u32..24) {
        let grid = Grid::square(bounds(), n).unwrap();
        let ix = GridIndex::bulk_build(grid.clone(), items(&points)).unwrap();
        let counts = ix.cell_counts();
        prop_assert_eq!(counts.iter().sum::<usize>(), points.len());
        prop_assert_eq!(
            counts.iter().filter(|&&c| c > 0).count(),
            ix.occupied_cells()
        );
        // count_at must agree with the per-cell counter for every point.
        for p in &points {
            let cell = grid.cell_of(*p).unwrap();
            prop_assert_eq!(ix.count_at(*p).unwrap(), ix.count_in_cell(cell));
            prop_assert!(ix.count_at(*p).unwrap() >= 1);
        }
    }

    #[test]
    fn knn_distances_are_sorted(points in arb_points(), query in arb_query(), k in 1usize..30) {
        let tree = KdTree::bulk_build(items(&points));
        let hits = tree.k_nearest(query, k);
        let dists: Vec<f64> = hits.iter().map(|e| e.distance_to(query)).collect();
        for w in dists.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(hits.len(), k.min(points.len()));
    }

    #[test]
    fn rtree_intersecting_matches_brute_force(
        boxes in prop::collection::vec(
            (0.0..=SIDE, 0.0..=SIDE, 0.0..=100.0f64, 0.0..=100.0f64),
            0..80,
        ),
        qb in arb_query_bbox(),
    ) {
        let rects: Vec<BBox> = boxes
            .iter()
            .map(|&(x, y, w, h)| {
                BBox::new(Point::new(x, y), Point::new(x + w, y + h)).unwrap()
            })
            .collect();
        let tree = RTree::bulk_build(rects.iter().copied().zip(0usize..));
        prop_assert_eq!(tree.len(), rects.len());
        let got: Vec<usize> = tree.intersecting(&qb).iter().map(|e| e.item).collect();
        let want: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&qb))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want); // both in insertion order
    }

    #[test]
    fn rtree_nearest_matches_brute_force(
        boxes in prop::collection::vec(
            (0.0..=SIDE, 0.0..=SIDE, 0.0..=100.0f64, 0.0..=100.0f64),
            1..80,
        ),
        qx in -100.0..=SIDE + 100.0,
        qy in -100.0..=SIDE + 100.0,
    ) {
        let q = Point::new(qx, qy);
        let rects: Vec<BBox> = boxes
            .iter()
            .map(|&(x, y, w, h)| {
                BBox::new(Point::new(x, y), Point::new(x + w, y + h)).unwrap()
            })
            .collect();
        let tree = RTree::bulk_build(rects.iter().copied().zip(0usize..));
        let got = tree.nearest(q).unwrap();
        let want = rects
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.distance_sq_to(q)
                    .partial_cmp(&b.1.distance_sq_to(q))
                    .unwrap()
                    .then(a.0.cmp(&b.0))
            })
            .unwrap();
        prop_assert_eq!(got.item, want.0);
        // Containment query agrees with geometry.
        for e in tree.containing(q) {
            prop_assert!(e.bbox.contains(q));
        }
    }
}
