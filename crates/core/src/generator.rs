//! Dummy generation algorithms (§3.2 of the paper).
//!
//! A dummy that teleports is no dummy at all: *"If dummies are generated
//! randomly, we can easily find differences between true position data and
//! dummies when using LBSs that need position data continuously."* The
//! paper therefore constrains each dummy's next position to a neighborhood
//! of its previous one:
//!
//! * [`RandomGenerator`] — the strawman: every step redraws every dummy
//!   uniformly over the whole service area (no temporal consistency).
//! * [`MnGenerator`] — **Moving in a Neighborhood** (Table 2): the next
//!   position of each dummy is drawn uniformly from the `±m` box around
//!   its previous position.
//! * [`MlnGenerator`] — **Moving in a Limited Neighborhood** (Table 3):
//!   like MN, but a candidate landing in a region already holding more
//!   position data than a density threshold (`avep`) is rejected and
//!   redrawn, up to a retry budget — steering dummies toward under-
//!   populated regions and thereby balancing congestion.
//!
//! Two ablation variants are included: [`DiscMnGenerator`] (uniform draw
//! from a disc instead of a box — DESIGN.md ablation A1) and
//! [`StationaryGenerator`] (dummies never move — a degenerate lower bound
//! for `Shift(P)`).
//!
//! All generators are deterministic given the caller's RNG and are
//! object-safe (`Box<dyn DummyGenerator>` works), which is how the
//! simulation engine mixes techniques in one experiment.

use dummyloc_geo::rng::{sample_disc, sample_uniform};
use dummyloc_geo::{BBox, Point, Vec2};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::population::PopulationGrid;
use crate::{CoreError, Result};

/// Read-only view of how many position data each region held at the
/// previous step — the input to MLN's `position(x, y)` probe.
///
/// The paper's MLN assumes *"the communication device of the user can get
/// other users' position data"*; the simulation engine passes last tick's
/// [`PopulationGrid`], and clients without that capability pass
/// [`NoDensity`].
pub trait DensityView {
    /// Number of position data in the region containing `p` at the
    /// previous step (0 for positions outside the tracked area).
    fn count_at(&self, p: Point) -> usize;

    /// Mean count over occupied regions — the natural `avep` threshold.
    fn mean_occupied(&self) -> f64;
}

/// A [`DensityView`] for clients that cannot observe other users: every
/// region looks empty, so MLN degenerates to MN.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDensity;

impl DensityView for NoDensity {
    fn count_at(&self, _p: Point) -> usize {
        0
    }

    fn mean_occupied(&self) -> f64 {
        0.0
    }
}

impl DensityView for PopulationGrid {
    fn count_at(&self, p: Point) -> usize {
        PopulationGrid::count_at(self, p).map_or(0, |c| c as usize)
    }

    fn mean_occupied(&self) -> f64 {
        PopulationGrid::mean_occupied(self)
    }
}

/// A [`DensityView`] over a global population *minus one client's own
/// previously reported positions*.
///
/// The paper's MLN has the device consult *"the **other** user's position
/// data"* — a dummy must not flee a region merely because it was standing
/// in it itself last round. Feeding the raw global [`PopulationGrid`]
/// instead makes MLN dummies self-repelling and visibly jumpier than MN
/// (we measured it; see `EXPERIMENTS.md`), so the simulation engine wraps
/// each client's density in this view.
#[derive(Debug, Clone, Copy)]
pub struct OthersDensity<'a> {
    pop: &'a PopulationGrid,
    own_prev: &'a [Point],
}

impl<'a> OthersDensity<'a> {
    /// Wraps the previous round's global population, excluding
    /// `own_prev` — the positions (true + dummies) this client itself
    /// reported in that round.
    pub fn new(pop: &'a PopulationGrid, own_prev: &'a [Point]) -> Self {
        OthersDensity { pop, own_prev }
    }
}

impl DensityView for OthersDensity<'_> {
    fn count_at(&self, p: Point) -> usize {
        let Ok(cell) = self.pop.grid().cell_of(p) else {
            return 0;
        };
        let total = self.pop.count(cell) as usize;
        let own = self
            .own_prev
            .iter()
            .filter(|q| self.pop.grid().cell_of(**q) == Ok(cell))
            .count();
        total.saturating_sub(own)
    }

    fn mean_occupied(&self) -> f64 {
        self.pop.mean_occupied()
    }
}

/// A dummy-motion algorithm.
///
/// The trait is object-safe; the RNG comes in as `&mut dyn RngCore` so a
/// boxed generator can still be driven from any seeded RNG. `Send` is a
/// supertrait so a boxed generator (and the [`crate::client::Client`]
/// owning it) can migrate onto a worker thread of the parallel engine —
/// generators are plain data, so every implementation satisfies it.
pub trait DummyGenerator: Send {
    /// Short algorithm name used in experiment reports ("random", "mn",
    /// "mln", …).
    fn name(&self) -> &'static str;

    /// The service area dummies must stay inside.
    fn area(&self) -> BBox;

    /// Places `count` fresh dummies at the start of a session.
    ///
    /// The default draws them uniformly over the service area,
    /// *independent of the true position*: seeding dummies near the user
    /// would leak the very information they exist to hide, and uniform
    /// placement maximizes ubiquity from the first report. `true_pos` is
    /// provided for variants that trade leakage for realism.
    fn init(&mut self, rng: &mut dyn RngCore, true_pos: Point, count: usize) -> Vec<Point> {
        let _ = true_pos;
        let area = self.area();
        (0..count).map(|_| sample_uniform(rng, &area)).collect()
    }

    /// Moves every dummy one step: `prev` are the positions at `t−1`, the
    /// result are the positions at `t`. `density` describes the previous
    /// step's per-region population for density-aware algorithms.
    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        density: &dyn DensityView,
    ) -> Vec<Point>;
}

impl<G: DummyGenerator + ?Sized> DummyGenerator for Box<G> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn area(&self) -> BBox {
        (**self).area()
    }

    fn init(&mut self, rng: &mut dyn RngCore, true_pos: Point, count: usize) -> Vec<Point> {
        (**self).init(rng, true_pos, count)
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        density: &dyn DensityView,
    ) -> Vec<Point> {
        (**self).step(rng, prev, density)
    }
}

fn validate_area(area: BBox) -> Result<()> {
    if area.width() > 0.0 && area.height() > 0.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidParameter {
            what: "service area extent",
            value: area.area(),
        })
    }
}

fn validate_radius(m: f64) -> Result<()> {
    if m.is_finite() && m > 0.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidParameter {
            what: "neighborhood radius m",
            value: m,
        })
    }
}

/// Draws the MN next position: uniform in the `±m` box around `prev`,
/// clipped to the service area (a dummy drifting off the map would be a
/// giveaway, so the feasible neighborhood is the intersection).
fn mn_next(rng: &mut dyn RngCore, area: &BBox, prev: Point, m: f64) -> Point {
    let hood = BBox::centered(prev, m).expect("m validated finite and positive");
    let feasible = hood
        .intersection(area)
        .expect("previous dummy positions stay inside the area");
    sample_uniform(rng, &feasible)
}

/// The random strawman: every dummy is redrawn uniformly over the whole
/// service area at every step. Maximal ubiquity, no temporal consistency —
/// the baseline MN/MLN beat in Figure 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomGenerator {
    area: BBox,
}

impl RandomGenerator {
    /// Creates the generator over a service area with positive extent.
    pub fn new(area: BBox) -> Result<Self> {
        validate_area(area)?;
        Ok(RandomGenerator { area })
    }
}

impl DummyGenerator for RandomGenerator {
    fn name(&self) -> &'static str {
        "random"
    }

    fn area(&self) -> BBox {
        self.area
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        prev.iter()
            .map(|_| sample_uniform(rng, &self.area))
            .collect()
    }
}

/// **Moving in a Neighborhood** (paper Table 2).
///
/// `next[i] = (random(prev[i].x ± m), random(prev[i].y ± m))`, clipped to
/// the service area. The client device *"memorizes the previous position
/// of each dummy"* (that state lives in [`Client`](crate::client::Client))
/// *"and generates dummies around the memory"*.
///
/// ```
/// use dummyloc_core::generator::{DummyGenerator, MnGenerator, NoDensity};
/// use dummyloc_geo::{rng::rng_from_seed, BBox, Point};
///
/// let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
/// let mut gen = MnGenerator::new(area, 50.0).unwrap();
/// let mut rng = rng_from_seed(1);
/// let dummies = gen.init(&mut rng, Point::new(500.0, 500.0), 3);
/// let moved = gen.step(&mut rng, &dummies, &NoDensity);
/// for (a, b) in dummies.iter().zip(&moved) {
///     assert!((a.x - b.x).abs() <= 50.0 && (a.y - b.y).abs() <= 50.0);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MnGenerator {
    area: BBox,
    m: f64,
}

impl MnGenerator {
    /// Creates the generator; `m` is the paper's neighborhood half-extent.
    pub fn new(area: BBox, m: f64) -> Result<Self> {
        validate_area(area)?;
        validate_radius(m)?;
        Ok(MnGenerator { area, m })
    }

    /// The neighborhood half-extent `m`.
    pub fn m(&self) -> f64 {
        self.m
    }
}

impl DummyGenerator for MnGenerator {
    fn name(&self) -> &'static str {
        "mn"
    }

    fn area(&self) -> BBox {
        self.area
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        prev.iter()
            .map(|&p| mn_next(rng, &self.area, p, self.m))
            .collect()
    }
}

/// How [`MlnGenerator`] decides that a candidate region is "too crowded".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DensityThreshold {
    /// Reject regions holding strictly more than this many position data —
    /// the paper's explicit `avep` parameter.
    Fixed(f64),
    /// Reject regions holding strictly more than the previous step's mean
    /// count over occupied regions (self-tuning `avep`).
    MeanOccupied,
}

/// Per-step statistics of the MLN rejection loop, for the A2 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MlnStepStats {
    /// Candidate draws rejected for landing in a crowded region.
    pub rejections: u64,
    /// Dummies that exhausted the retry budget and kept a crowded
    /// candidate anyway.
    pub budget_exhausted: u64,
}

/// **Moving in a Limited Neighborhood** (paper Table 3).
///
/// MN plus a density filter: a candidate next position whose region
/// already holds more than `avep` position data is rejected and redrawn
/// (*"if there are many users in the generated region, the device
/// generates the dummy again. The process is repeated several times"* —
/// the pseudocode's retry counter caps at 3, our `retry_budget` default).
/// After the budget is exhausted the last candidate is accepted, matching
/// the pseudocode's fall-through.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlnGenerator {
    area: BBox,
    m: f64,
    threshold: DensityThreshold,
    retry_budget: u32,
}

impl MlnGenerator {
    /// The paper's retry cap (`if (k <= 3)` in Table 3).
    pub const DEFAULT_RETRY_BUDGET: u32 = 3;

    /// Creates the generator with the paper's defaults: self-tuning
    /// threshold, retry budget 3.
    pub fn new(area: BBox, m: f64) -> Result<Self> {
        Self::with_options(
            area,
            m,
            DensityThreshold::MeanOccupied,
            Self::DEFAULT_RETRY_BUDGET,
        )
    }

    /// Creates the generator with an explicit threshold and retry budget.
    pub fn with_options(
        area: BBox,
        m: f64,
        threshold: DensityThreshold,
        retry_budget: u32,
    ) -> Result<Self> {
        validate_area(area)?;
        validate_radius(m)?;
        if let DensityThreshold::Fixed(v) = threshold {
            if !(v.is_finite() && v >= 0.0) {
                return Err(CoreError::InvalidParameter {
                    what: "density threshold avep",
                    value: v,
                });
            }
        }
        Ok(MlnGenerator {
            area,
            m,
            threshold,
            retry_budget,
        })
    }

    /// The neighborhood half-extent `m`.
    pub fn m(&self) -> f64 {
        self.m
    }

    /// The configured retry budget.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Like [`DummyGenerator::step`] but also reporting rejection-loop
    /// statistics (ablation A2).
    pub fn step_with_stats(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        density: &dyn DensityView,
    ) -> (Vec<Point>, MlnStepStats) {
        let avep = match self.threshold {
            DensityThreshold::Fixed(v) => v,
            DensityThreshold::MeanOccupied => density.mean_occupied(),
        };
        let mut stats = MlnStepStats::default();
        let next = prev
            .iter()
            .map(|&p| {
                let mut candidate = mn_next(rng, &self.area, p, self.m);
                let mut tries = 0u32;
                while (density.count_at(candidate) as f64) > avep {
                    if tries >= self.retry_budget {
                        stats.budget_exhausted += 1;
                        break;
                    }
                    stats.rejections += 1;
                    tries += 1;
                    candidate = mn_next(rng, &self.area, p, self.m);
                }
                candidate
            })
            .collect();
        (next, stats)
    }
}

impl DummyGenerator for MlnGenerator {
    fn name(&self) -> &'static str {
        "mln"
    }

    fn area(&self) -> BBox {
        self.area
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        density: &dyn DensityView,
    ) -> Vec<Point> {
        self.step_with_stats(rng, prev, density).0
    }
}

/// Ablation variant of MN drawing the next position uniformly from the
/// *disc* of radius `m` (isotropic steps) instead of the paper's box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscMnGenerator {
    area: BBox,
    m: f64,
}

impl DiscMnGenerator {
    /// Creates the generator.
    pub fn new(area: BBox, m: f64) -> Result<Self> {
        validate_area(area)?;
        validate_radius(m)?;
        Ok(DiscMnGenerator { area, m })
    }
}

impl DummyGenerator for DiscMnGenerator {
    fn name(&self) -> &'static str {
        "mn-disc"
    }

    fn area(&self) -> BBox {
        self.area
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        prev.iter()
            .map(|&p| {
                // Rejection-sample into the area; a handful of tries covers
                // all but pathological corner cases, then clamp.
                for _ in 0..16 {
                    let c = sample_disc(rng, p, self.m);
                    if self.area.contains(c) {
                        return c;
                    }
                }
                self.area.clamp(sample_disc(rng, p, self.m))
            })
            .collect()
    }
}

/// Degenerate baseline: dummies never move. Perfect temporal consistency
/// (`Shift(P)` contribution of zero) but trivially identifiable as the
/// only never-moving "users" — included to bound ablation plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationaryGenerator {
    area: BBox,
}

impl StationaryGenerator {
    /// Creates the generator.
    pub fn new(area: BBox) -> Result<Self> {
        validate_area(area)?;
        Ok(StationaryGenerator { area })
    }
}

impl DummyGenerator for StationaryGenerator {
    fn name(&self) -> &'static str {
        "stationary"
    }

    fn area(&self) -> BBox {
        self.area
    }

    fn step(
        &mut self,
        _rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        prev.to_vec()
    }
}

/// **Extension** (beyond the paper): heading-persistent dummies.
///
/// MN's next position is direction-free — a dummy is as likely to double
/// back as to continue, while real movers keep their heading for many
/// steps. `MomentumGenerator` gives each dummy a velocity that persists
/// (`velocity <- rho*velocity + noise`, reflected at the service-area
/// walls), producing smooth tracks whose turning statistics resemble
/// pedestrians/vehicles rather than diffusing grains.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentumGenerator {
    area: BBox,
    max_step: f64,
    persistence: f64,
    velocities: Vec<Vec2>,
}

impl MomentumGenerator {
    /// Creates the generator: dummies move at most `max_step` per round
    /// and keep a fraction `persistence` (in `[0, 1)`) of their velocity
    /// between rounds (0 degenerates toward an MN-like diffusion).
    pub fn new(area: BBox, max_step: f64, persistence: f64) -> Result<Self> {
        validate_area(area)?;
        validate_radius(max_step)?;
        if !(persistence.is_finite() && (0.0..1.0).contains(&persistence)) {
            return Err(CoreError::InvalidParameter {
                what: "persistence (must be in [0, 1))",
                value: persistence,
            });
        }
        Ok(MomentumGenerator {
            area,
            max_step,
            persistence,
            velocities: Vec::new(),
        })
    }

    fn noise(&self, rng: &mut dyn RngCore) -> Vec2 {
        use rand::Rng;
        let scale = self.max_step * (1.0 - self.persistence);
        Vec2::new(rng.gen_range(-scale..=scale), rng.gen_range(-scale..=scale))
    }

    fn random_velocity(&self, rng: &mut dyn RngCore) -> Vec2 {
        use rand::Rng;
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        Vec2::from_angle(angle) * (self.max_step * 0.6)
    }
}

impl DummyGenerator for MomentumGenerator {
    fn name(&self) -> &'static str {
        "momentum"
    }

    fn area(&self) -> BBox {
        self.area
    }

    fn init(&mut self, rng: &mut dyn RngCore, _true_pos: Point, count: usize) -> Vec<Point> {
        self.velocities = (0..count).map(|_| self.random_velocity(rng)).collect();
        (0..count)
            .map(|_| sample_uniform(rng, &self.area))
            .collect()
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        // Self-heal on count mismatch (client built around existing
        // positions).
        if self.velocities.len() != prev.len() {
            self.velocities = prev.iter().map(|_| self.random_velocity(rng)).collect();
        }
        let persistence = self.persistence;
        let max_step = self.max_step;
        let area = self.area;
        let noises: Vec<Vec2> = prev.iter().map(|_| self.noise(rng)).collect();
        prev.iter()
            .zip(self.velocities.iter_mut())
            .zip(noises)
            .map(|((&p, v), noise)| {
                *v = (*v * persistence + noise).clamp_length(max_step);
                let mut next = p + *v;
                // Reflect at the walls so dummies don't pile up on edges.
                let (min, max) = (area.min(), area.max());
                if next.x < min.x || next.x > max.x {
                    v.dx = -v.dx;
                    next.x = next.x.clamp(min.x, max.x);
                }
                if next.y < min.y || next.y > max.y {
                    v.dy = -v.dy;
                    next.y = next.y.clamp(min.y, max.y);
                }
                next
            })
            .collect()
    }
}

/// Per-dummy state of the [`AnchoredGenerator`].
#[derive(Debug, Clone, PartialEq)]
struct AnchorState {
    anchors: [Point; 2],
    target: usize,
    dwell_left: u32,
}

/// **Extension** (beyond the paper): dummies that *commute*.
///
/// MN dummies diffuse: over many sessions they wander, so any region that
/// recurs in a pseudonym's long-term history is almost surely the real
/// user's home or workplace — a recurrence attack the paper does not
/// address (its follow-up work on traceability does). `AnchoredGenerator`
/// gives every dummy two fixed anchor points and has it walk between
/// them, dwelling at each — the same two-place commuting pattern real
/// users exhibit — so the observer sees `k+1` plausible home/work pairs
/// instead of one.
///
/// This generator is stateful (anchors and dwell timers persist across
/// steps), which is why [`DummyGenerator::step`] takes `&mut self`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchoredGenerator {
    area: BBox,
    speed: f64,
    dwell_range: (u32, u32),
    state: Vec<AnchorState>,
}

impl AnchoredGenerator {
    /// Creates the generator: dummies move at most `speed` per step and
    /// dwell `dwell_range` steps (inclusive) at each anchor.
    pub fn new(area: BBox, speed: f64, dwell_range: (u32, u32)) -> Result<Self> {
        validate_area(area)?;
        validate_radius(speed)?;
        if dwell_range.0 > dwell_range.1 {
            return Err(CoreError::InvalidParameter {
                what: "dwell range order",
                value: dwell_range.0 as f64,
            });
        }
        Ok(AnchoredGenerator {
            area,
            speed,
            dwell_range,
            state: Vec::new(),
        })
    }

    /// The anchor pairs currently in play (for tests and demos).
    pub fn anchors(&self) -> Vec<[Point; 2]> {
        self.state.iter().map(|s| s.anchors).collect()
    }

    fn sample_dwell(&self, rng: &mut dyn RngCore) -> u32 {
        use rand::Rng;
        if self.dwell_range.0 < self.dwell_range.1 {
            rng.gen_range(self.dwell_range.0..=self.dwell_range.1)
        } else {
            self.dwell_range.0
        }
    }

    fn fresh_state(&self, rng: &mut dyn RngCore, start: Point) -> AnchorState {
        let other = sample_uniform(rng, &self.area);
        AnchorState {
            anchors: [start, other],
            target: 1,
            dwell_left: self.sample_dwell(rng),
        }
    }
}

impl DummyGenerator for AnchoredGenerator {
    fn name(&self) -> &'static str {
        "anchored"
    }

    fn area(&self) -> BBox {
        self.area
    }

    fn init(&mut self, rng: &mut dyn RngCore, _true_pos: Point, count: usize) -> Vec<Point> {
        let starts: Vec<Point> = (0..count)
            .map(|_| sample_uniform(rng, &self.area))
            .collect();
        self.state = starts.iter().map(|&s| self.fresh_state(rng, s)).collect();
        starts
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        // Re-anchor from scratch if the caller's dummy count diverged from
        // our state (e.g. a client constructed around existing positions).
        if self.state.len() != prev.len() {
            self.state = prev.iter().map(|&p| self.fresh_state(rng, p)).collect();
        }
        let dwell_range = self.dwell_range;
        prev.iter()
            .zip(self.state.iter_mut())
            .map(|(&p, st)| {
                if st.dwell_left > 0 {
                    st.dwell_left -= 1;
                    return p;
                }
                let target = st.anchors[st.target];
                let to_target = p.to(target);
                if to_target.length() <= self.speed {
                    // Arrived: turn around and dwell.
                    st.target ^= 1;
                    st.dwell_left = if dwell_range.0 < dwell_range.1 {
                        use rand::Rng;
                        rng.gen_range(dwell_range.0..=dwell_range.1)
                    } else {
                        dwell_range.0
                    };
                    target
                } else {
                    p + to_target.clamp_length(self.speed)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::rng::rng_from_seed;
    use dummyloc_geo::Grid;

    fn area() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap()
    }

    #[test]
    fn constructors_validate_parameters() {
        let flat = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 0.0)).unwrap();
        assert!(RandomGenerator::new(flat).is_err());
        assert!(MnGenerator::new(area(), 0.0).is_err());
        assert!(MnGenerator::new(area(), f64::NAN).is_err());
        assert!(
            MlnGenerator::with_options(area(), 10.0, DensityThreshold::Fixed(-1.0), 3).is_err()
        );
        assert!(DiscMnGenerator::new(area(), -5.0).is_err());
        assert!(MnGenerator::new(area(), 50.0).is_ok());
    }

    #[test]
    fn default_init_is_uniform_in_area_and_ignores_truth() {
        let mut g = MnGenerator::new(area(), 50.0).unwrap();
        let truth = Point::new(1.0, 1.0);
        let mut rng = rng_from_seed(1);
        let dummies = g.init(&mut rng, truth, 200);
        assert_eq!(dummies.len(), 200);
        for d in &dummies {
            assert!(area().contains(*d));
        }
        // Uniform placement: mean far from the corner truth position.
        let mean_x = dummies.iter().map(|d| d.x).sum::<f64>() / 200.0;
        assert!(mean_x > 300.0 && mean_x < 700.0, "mean_x {mean_x}");
    }

    #[test]
    fn mn_steps_stay_within_m_and_area() {
        let m = 25.0;
        let mut g = MnGenerator::new(area(), m).unwrap();
        let mut rng = rng_from_seed(2);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 10);
        for _ in 0..200 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            assert_eq!(next.len(), prev.len());
            for (a, b) in prev.iter().zip(&next) {
                assert!((a.x - b.x).abs() <= m + 1e-9);
                assert!((a.y - b.y).abs() <= m + 1e-9);
                assert!(area().contains(*b));
            }
            prev = next;
        }
    }

    #[test]
    fn mn_near_boundary_still_produces_valid_positions() {
        let mut g = MnGenerator::new(area(), 50.0).unwrap();
        let mut rng = rng_from_seed(3);
        let corner = vec![Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)];
        for _ in 0..100 {
            let next = g.step(&mut rng, &corner, &NoDensity);
            for p in &next {
                assert!(area().contains(*p));
            }
        }
    }

    #[test]
    fn random_redraws_have_no_temporal_consistency() {
        let mut g = RandomGenerator::new(area()).unwrap();
        let mut rng = rng_from_seed(4);
        let prev = vec![Point::new(500.0, 500.0); 50];
        let next = g.step(&mut rng, &prev, &NoDensity);
        // Mean jump of a uniform redraw in a 1000² box from the center is
        // ~382; with 50 samples it concentrates hard around that.
        let mean_jump: f64 = prev
            .iter()
            .zip(&next)
            .map(|(a, b)| a.distance(b))
            .sum::<f64>()
            / 50.0;
        assert!(
            mean_jump > 200.0,
            "mean jump {mean_jump} too small for random"
        );
    }

    #[test]
    fn mln_avoids_crowded_regions_when_it_can() {
        let service = area();
        let grid = Grid::square(service, 10).unwrap(); // 100 m regions
                                                       // Crowd the region [500,600)²  with 50 people; elsewhere empty.
        let crowd = (0..50).map(|i| Point::new(510.0 + (i % 10) as f64, 510.0 + (i / 10) as f64));
        let pop = PopulationGrid::from_positions(&grid, crowd).unwrap();
        let mut g =
            MlnGenerator::with_options(service, 80.0, DensityThreshold::Fixed(5.0), 8).unwrap();
        let mut rng = rng_from_seed(5);
        // A dummy sitting inside the crowded region: most steps should
        // escape it because candidates inside get rejected.
        let prev = vec![Point::new(550.0, 550.0)];
        let mut stayed = 0;
        for _ in 0..200 {
            let next = g.step(&mut rng, &prev, &pop);
            if pop.count_at(next[0]).unwrap_or(0) > 5 {
                stayed += 1;
            }
        }
        // The neighborhood (±80 around 550) is mostly outside the crowded
        // 100 m region, and 8 retries each: staying should be rare.
        assert!(stayed < 20, "stayed in crowded region {stayed}/200 times");
    }

    #[test]
    fn mln_with_zero_budget_behaves_like_mn_statistically() {
        let service = area();
        let mut g =
            MlnGenerator::with_options(service, 30.0, DensityThreshold::Fixed(0.0), 0).unwrap();
        let mut rng = rng_from_seed(6);
        let prev = vec![Point::new(500.0, 500.0)];
        let (next, stats) = g.step_with_stats(&mut rng, &prev, &NoDensity);
        assert_eq!(next.len(), 1);
        // NoDensity reports 0 everywhere, 0 > 0 is false → no rejections.
        assert_eq!(stats.rejections, 0);
        assert_eq!(stats.budget_exhausted, 0);
    }

    #[test]
    fn mln_budget_exhaustion_is_reported() {
        let service = area();
        let grid = Grid::square(service, 1).unwrap(); // one giant region
        let pop = PopulationGrid::from_positions(&grid, (0..10).map(|i| Point::new(i as f64, 0.0)))
            .unwrap();
        // Threshold 0 with everyone in the single region: every candidate
        // is "crowded", so every dummy exhausts the budget.
        let mut g =
            MlnGenerator::with_options(service, 30.0, DensityThreshold::Fixed(0.0), 3).unwrap();
        let mut rng = rng_from_seed(7);
        let prev = vec![Point::new(500.0, 500.0); 4];
        let (next, stats) = g.step_with_stats(&mut rng, &prev, &pop);
        assert_eq!(next.len(), 4);
        assert_eq!(stats.budget_exhausted, 4);
        assert_eq!(stats.rejections, 12); // 3 retries each
    }

    #[test]
    fn others_density_excludes_own_positions() {
        let service = area();
        let grid = Grid::square(service, 10).unwrap(); // 100 m regions
                                                       // Region (0,0): two others + one own dummy; region (5,5): own only.
        let pop = PopulationGrid::from_positions(
            &grid,
            vec![
                Point::new(5.0, 5.0),
                Point::new(6.0, 6.0),     // others in (0,0)
                Point::new(7.0, 7.0),     // own dummy in (0,0)
                Point::new(550.0, 550.0), // own true position in (5,5)
            ],
        )
        .unwrap();
        let own = vec![Point::new(7.0, 7.0), Point::new(550.0, 550.0)];
        let view = OthersDensity::new(&pop, &own);
        assert_eq!(view.count_at(Point::new(5.0, 5.0)), 2);
        assert_eq!(view.count_at(Point::new(550.0, 550.0)), 0);
        assert_eq!(view.count_at(Point::new(950.0, 950.0)), 0);
        // Out-of-area probes read 0.
        assert_eq!(view.count_at(Point::new(-10.0, 0.0)), 0);
        // mean_occupied passes through the global value.
        assert_eq!(view.mean_occupied(), pop.mean_occupied());
    }

    #[test]
    fn mean_occupied_threshold_uses_density_view() {
        let service = area();
        let grid = Grid::square(service, 10).unwrap();
        let pop = PopulationGrid::from_positions(
            &grid,
            vec![
                Point::new(5.0, 5.0),
                Point::new(6.0, 6.0),
                Point::new(500.0, 500.0),
            ],
        )
        .unwrap();
        assert_eq!(DensityView::mean_occupied(&pop), 1.5);
        assert_eq!(DensityView::count_at(&pop, Point::new(7.0, 7.0)), 2);
        // Out-of-area probes read 0 rather than erroring.
        assert_eq!(DensityView::count_at(&pop, Point::new(-10.0, 0.0)), 0);
        assert_eq!(NoDensity.count_at(Point::ORIGIN), 0);
        assert_eq!(NoDensity.mean_occupied(), 0.0);
    }

    #[test]
    fn disc_variant_stays_in_area_and_radius() {
        let m = 40.0;
        let mut g = DiscMnGenerator::new(area(), m).unwrap();
        let mut rng = rng_from_seed(8);
        let mut prev = vec![
            Point::new(0.0, 0.0),
            Point::new(999.0, 999.0),
            Point::new(500.0, 500.0),
        ];
        for _ in 0..100 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (a, b) in prev.iter().zip(&next) {
                assert!(area().contains(*b));
                assert!(a.distance(b) <= m * std::f64::consts::SQRT_2 + 1e-9);
            }
            prev = next;
        }
    }

    #[test]
    fn stationary_never_moves() {
        let mut g = StationaryGenerator::new(area()).unwrap();
        let mut rng = rng_from_seed(9);
        let prev = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        assert_eq!(g.step(&mut rng, &prev, &NoDensity), prev);
    }

    #[test]
    fn boxed_generator_is_usable_through_the_trait() {
        let mut boxed: Box<dyn DummyGenerator> = Box::new(MnGenerator::new(area(), 20.0).unwrap());
        assert_eq!(boxed.name(), "mn");
        let mut rng = rng_from_seed(10);
        let d = boxed.init(&mut rng, Point::ORIGIN, 3);
        let n = boxed.step(&mut rng, &d, &NoDensity);
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn momentum_respects_speed_and_area() {
        let mut g = MomentumGenerator::new(area(), 20.0, 0.8).unwrap();
        let mut rng = rng_from_seed(21);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 6);
        for _ in 0..500 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (a, b) in prev.iter().zip(&next) {
                assert!(a.distance(b) <= 20.0 + 1e-9);
                assert!(area().contains(*b));
            }
            prev = next;
        }
    }

    #[test]
    fn momentum_has_heading_persistence() {
        // Consecutive step directions should mostly agree (positive dot
        // product) at high persistence — the property MN lacks.
        let mut g = MomentumGenerator::new(area(), 20.0, 0.9).unwrap();
        let mut rng = rng_from_seed(22);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 1);
        let mut last_step: Option<Vec2> = None;
        let mut agree = 0usize;
        let mut total = 0usize;
        for _ in 0..400 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            let step = prev[0].to(next[0]);
            if let Some(prev_step) = last_step {
                if step.length() > 1e-9 && prev_step.length() > 1e-9 {
                    total += 1;
                    if step.dot(&prev_step) > 0.0 {
                        agree += 1;
                    }
                }
            }
            last_step = Some(step);
            prev = next;
        }
        assert!(
            agree as f64 > 0.8 * total as f64,
            "heading agreement only {agree}/{total}"
        );
    }

    #[test]
    fn momentum_rejects_bad_parameters() {
        assert!(MomentumGenerator::new(area(), 0.0, 0.5).is_err());
        assert!(MomentumGenerator::new(area(), 10.0, 1.0).is_err());
        assert!(MomentumGenerator::new(area(), 10.0, -0.1).is_err());
        assert!(MomentumGenerator::new(area(), 10.0, f64::NAN).is_err());
    }

    #[test]
    fn momentum_self_heals_on_count_mismatch() {
        let mut g = MomentumGenerator::new(area(), 15.0, 0.5).unwrap();
        let mut rng = rng_from_seed(23);
        let prev = vec![Point::new(10.0, 10.0), Point::new(20.0, 20.0)];
        let next = g.step(&mut rng, &prev, &NoDensity);
        assert_eq!(next.len(), 2);
    }

    #[test]
    fn anchored_dummies_commute_between_fixed_anchors() {
        let mut g = AnchoredGenerator::new(area(), 25.0, (2, 5)).unwrap();
        let mut rng = rng_from_seed(11);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 3);
        let anchors = g.anchors();
        assert_eq!(anchors.len(), 3);
        // Dummies start at their first anchor.
        for (p, pair) in prev.iter().zip(&anchors) {
            assert_eq!(*p, pair[0]);
        }
        // Over many steps each dummy's positions stay on the segment
        // between its two anchors (within speed tolerance) and it reaches
        // both endpoints.
        let mut reached = [[false, false]; 3];
        for _ in 0..2000 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (i, (p, pair)) in next.iter().zip(&anchors).enumerate() {
                assert!(area().contains(*p));
                // Distance from the segment a0–a1 is ~0 for commuting.
                let seg = pair[0].to(pair[1]);
                let t = if seg.length_sq() > 0.0 {
                    (pair[0].to(*p).dot(&seg) / seg.length_sq()).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let on_seg = pair[0].lerp(&pair[1], t);
                assert!(on_seg.distance(p) < 1e-6, "dummy {i} off its commute");
                for (a, hit) in pair.iter().zip(reached[i].iter_mut()) {
                    if a.distance(p) < 1e-6 {
                        *hit = true;
                    }
                }
            }
            prev = next;
        }
        for (i, hits) in reached.iter().enumerate() {
            assert!(hits[0] && hits[1], "dummy {i} never completed a commute");
        }
    }

    #[test]
    fn anchored_respects_speed_limit_and_dwells() {
        let speed = 10.0;
        let mut g = AnchoredGenerator::new(area(), speed, (3, 3)).unwrap();
        let mut rng = rng_from_seed(12);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 2);
        let mut stationary_steps = 0usize;
        for _ in 0..500 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (a, b) in prev.iter().zip(&next) {
                assert!(a.distance(b) <= speed + 1e-9);
                if a.distance(b) < 1e-12 {
                    stationary_steps += 1;
                }
            }
            prev = next;
        }
        assert!(stationary_steps > 0, "dwell steps must occur");
    }

    #[test]
    fn anchored_reanchors_on_count_mismatch() {
        let mut g = AnchoredGenerator::new(area(), 10.0, (0, 0)).unwrap();
        let mut rng = rng_from_seed(13);
        // Step without init: state is empty, must self-heal.
        let prev = vec![Point::new(10.0, 10.0), Point::new(20.0, 20.0)];
        let next = g.step(&mut rng, &prev, &NoDensity);
        assert_eq!(next.len(), 2);
        assert_eq!(g.anchors().len(), 2);
    }

    #[test]
    fn anchored_rejects_bad_parameters() {
        assert!(AnchoredGenerator::new(area(), 0.0, (0, 5)).is_err());
        assert!(AnchoredGenerator::new(area(), 10.0, (5, 2)).is_err());
    }

    #[test]
    fn generator_names_are_distinct() {
        let names = [
            AnchoredGenerator::new(area(), 1.0, (0, 1)).unwrap().name(),
            MomentumGenerator::new(area(), 1.0, 0.5).unwrap().name(),
            RandomGenerator::new(area()).unwrap().name(),
            MnGenerator::new(area(), 1.0).unwrap().name(),
            MlnGenerator::new(area(), 1.0).unwrap().name(),
            DiscMnGenerator::new(area(), 1.0).unwrap().name(),
            StationaryGenerator::new(area()).unwrap().name(),
        ];
        let mut uniq = names.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }
}
