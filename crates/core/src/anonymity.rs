//! The extended Anonymity Set of §2.2.
//!
//! Chaum's *Anonymity Set* is "the set of all possible subjects"; Pfitzmann
//! & Köhntopp's formulation is the one the paper extends to location:
//! a piece of information `i` restricts the universe `A` to the subset
//! consistent with `i`, and the cardinality of that subset measures
//! anonymity. The paper instantiates two restriction functions:
//!
//! * `AS_F(i)` — the set of **regions** consistent with `i` ("I live in
//!   the gray regions"); `|AS_F(i)|` counts regions when all regions have
//!   the same scale (Figure 2(a): 9 gray regions → `|AS_F| = 9`).
//! * `AS_P(i)` — the set of **persons** consistent with `i` ("I live in
//!   the region the arrow points at"); `|AS_P(i)|` counts the persons in
//!   the identified regions (Figure 2(b): 3 persons → `|AS_P| = 3`).
//!
//! Here information about a subject's whereabouts is represented as
//! [`RegionInfo`] — the set of regions the subject might be in. That is
//! exactly what an LBS provider learns from a dummy-protected request
//! (the regions of the k+1 reported positions) or from a cloaked request
//! (the cloaking region's cells).
//!
//! ```
//! use dummyloc_core::anonymity::{as_f, RegionInfo};
//! use dummyloc_geo::{BBox, Grid, Point};
//!
//! let area = BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)).unwrap();
//! let grid = Grid::square(area, 5).unwrap();
//! // A request with the truth and two dummies in distinct regions:
//! let info = RegionInfo::from_positions(
//!     &grid,
//!     vec![Point::new(0.5, 0.5), Point::new(2.5, 2.5), Point::new(4.5, 0.5)],
//! ).unwrap();
//! assert_eq!(as_f(&info), 3); // |AS_F| = k + 1
//! ```

use dummyloc_geo::{CellId, Grid, Point};

use crate::population::PopulationGrid;
use crate::Result;

/// Information restricting a subject to a set of candidate regions.
///
/// Duplicate cells are collapsed: reporting two positions in the same
/// region narrows the set just as much as reporting one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionInfo {
    regions: Vec<CellId>,
}

impl RegionInfo {
    /// Information naming an explicit set of candidate regions.
    pub fn from_regions(mut regions: Vec<CellId>) -> Self {
        regions.sort_unstable();
        regions.dedup();
        RegionInfo { regions }
    }

    /// The information a provider extracts from a set of reported
    /// positions: "the subject is in one of the regions these positions
    /// fall in". Fails if a position lies outside the grid.
    pub fn from_positions(grid: &Grid, positions: impl IntoIterator<Item = Point>) -> Result<Self> {
        let mut regions = Vec::new();
        for p in positions {
            regions.push(grid.cell_of(p).map_err(crate::CoreError::from)?);
        }
        Ok(RegionInfo::from_regions(regions))
    }

    /// The candidate regions, sorted and deduplicated.
    pub fn regions(&self) -> &[CellId] {
        &self.regions
    }

    /// Whether the information excludes nothing it could express.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// `|AS_F(i)|` with all regions at the same scale: the number of candidate
/// regions (Figure 2(a)).
pub fn as_f(info: &RegionInfo) -> usize {
    info.regions.len()
}

/// `|AS_F(i)|` as a total scale (area) when regions may differ in size —
/// the paper's more general reading ("shows the total scale of α_F").
pub fn as_f_area(grid: &Grid, info: &RegionInfo) -> Result<f64> {
    let mut area = 0.0;
    for &cell in &info.regions {
        area += grid.cell_bbox(cell).map_err(crate::CoreError::from)?.area();
    }
    Ok(area)
}

/// `|AS_P(i)|`: the number of persons consistent with the information —
/// the total population of the candidate regions (Figure 2(b)).
pub fn as_p(pop: &PopulationGrid, info: &RegionInfo) -> u64 {
    info.regions.iter().map(|&c| u64::from(pop.count(c))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::BBox;

    /// The 5×5 grid of Figure 2, unit-scale regions.
    fn grid() -> Grid {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)).unwrap();
        Grid::square(b, 5).unwrap()
    }

    #[test]
    fn figure2a_nine_gray_regions() {
        // "I live in the gray regions" with 9 gray regions → |AS_F(i)| = 9.
        let gray: Vec<CellId> = (0..3)
            .flat_map(|r| (0..3).map(move |c| CellId::new(c, r)))
            .collect();
        let info = RegionInfo::from_regions(gray);
        assert_eq!(as_f(&info), 9);
        // Unit-scale regions → area equals the count.
        assert_eq!(as_f_area(&grid(), &info).unwrap(), 9.0);
    }

    #[test]
    fn figure2b_three_persons_in_pointed_region() {
        // "I live in the region where an arrow points" holding 3 persons
        // → |AS_P(i)| = 3.
        let g = grid();
        let pop = PopulationGrid::from_positions(
            &g,
            vec![
                Point::new(2.2, 2.2),
                Point::new(2.5, 2.5),
                Point::new(2.8, 2.8), // three persons in region (2,2)
                Point::new(0.5, 0.5), // someone elsewhere
            ],
        )
        .unwrap();
        let info = RegionInfo::from_regions(vec![CellId::new(2, 2)]);
        assert_eq!(as_p(&pop, &info), 3);
    }

    #[test]
    fn info_from_positions_dedups_shared_regions() {
        let g = grid();
        let info = RegionInfo::from_positions(
            &g,
            vec![
                Point::new(0.1, 0.1),
                Point::new(0.9, 0.9), // same region as above
                Point::new(4.5, 4.5),
            ],
        )
        .unwrap();
        assert_eq!(as_f(&info), 2);
    }

    #[test]
    fn info_from_out_of_grid_position_fails() {
        let g = grid();
        assert!(RegionInfo::from_positions(&g, vec![Point::new(9.0, 9.0)]).is_err());
    }

    #[test]
    fn dummies_grow_the_region_anonymity_set() {
        // The provider's view of a protected request: true position plus
        // k dummies in distinct regions → |AS_F| = k + 1.
        let g = grid();
        let truth = Point::new(1.5, 1.5);
        let dummies = [
            Point::new(3.5, 0.5),
            Point::new(0.5, 3.5),
            Point::new(4.5, 4.5),
        ];
        let info = RegionInfo::from_positions(&g, std::iter::once(truth).chain(dummies)).unwrap();
        assert_eq!(as_f(&info), 4);
    }

    #[test]
    fn as_p_counts_across_all_candidate_regions() {
        let g = grid();
        let pop = PopulationGrid::from_positions(
            &g,
            vec![
                Point::new(0.5, 0.5),
                Point::new(1.5, 0.5),
                Point::new(1.6, 0.4),
            ],
        )
        .unwrap();
        let info = RegionInfo::from_regions(vec![CellId::new(0, 0), CellId::new(1, 0)]);
        assert_eq!(as_p(&pop, &info), 3);
        let empty_info = RegionInfo::from_regions(vec![CellId::new(4, 4)]);
        assert_eq!(as_p(&pop, &empty_info), 0);
        assert!(!info.is_empty());
        assert!(RegionInfo::from_regions(vec![]).is_empty());
    }
}
