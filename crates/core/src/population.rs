//! Per-region population counts — the paper's `P` values.
//!
//! Every anonymity metric in the paper is a function of *how many position
//! data lie in each region* at a time step. [`PopulationGrid`] is that
//! counter: build one per snapshot from all reported positions (true data
//! and dummies alike — the provider cannot tell them apart, which is the
//! whole point), then feed pairs of them to
//! [`shift_p`](crate::metrics::shift_p) and singles to
//! [`ubiquity_f`](crate::metrics::ubiquity_f).

use dummyloc_geo::{CellId, GeoError, Grid, Point};

use crate::Result;

/// Position-data counts per region of a [`Grid`] at one time step.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationGrid {
    grid: Grid,
    counts: Vec<u32>,
    total: u64,
}

impl PopulationGrid {
    /// Creates an all-zero population over `grid`.
    pub fn empty(grid: &Grid) -> Self {
        PopulationGrid {
            grid: grid.clone(),
            counts: vec![0; grid.cell_count()],
            total: 0,
        }
    }

    /// Counts `positions` into the regions of `grid`; fails on the first
    /// position outside the grid (reported positions are required to stay
    /// inside the service area).
    pub fn from_positions(grid: &Grid, positions: impl IntoIterator<Item = Point>) -> Result<Self> {
        let mut pop = PopulationGrid::empty(grid);
        for p in positions {
            pop.add(p)?;
        }
        Ok(pop)
    }

    /// Adds one position.
    pub fn add(&mut self, p: Point) -> Result<()> {
        let cell = self.grid.cell_of(p).map_err(crate::CoreError::from)?;
        let idx = self
            .grid
            .linear_index(cell)
            .expect("cell_of returns valid cells");
        self.counts[idx] += 1;
        self.total += 1;
        Ok(())
    }

    /// Rebuilds a population from checkpointed raw counts (the inverse of
    /// [`PopulationGrid::counts`]); fails if the count vector does not
    /// match the grid's region count.
    pub fn from_counts(grid: &Grid, counts: Vec<u32>) -> Result<Self> {
        if counts.len() != grid.cell_count() {
            return Err(crate::CoreError::GridMismatch {
                expected: grid.cell_count(),
                got: counts.len(),
            });
        }
        let total = counts.iter().map(|&c| u64::from(c)).sum();
        Ok(PopulationGrid {
            grid: grid.clone(),
            counts,
            total,
        })
    }

    /// Adds every count of `other` into `self` — the shard-merge used by
    /// the parallel engine. Counts are plain integer sums, so merging in
    /// any order produces the same population as counting all positions
    /// on one thread. Fails if the two populations partition different
    /// grids.
    pub fn merge(&mut self, other: &PopulationGrid) -> Result<()> {
        if self.grid != other.grid {
            return Err(crate::CoreError::GridMismatch {
                expected: self.counts.len(),
                got: other.counts.len(),
            });
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        Ok(())
    }

    /// The region partition this population is counted over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Count in one region (`P` of that region); zero for out-of-range
    /// cells.
    pub fn count(&self, cell: CellId) -> u32 {
        self.grid.linear_index(cell).map_or(0, |i| self.counts[i])
    }

    /// Count in the region containing `p`.
    pub fn count_at(&self, p: Point) -> std::result::Result<u32, GeoError> {
        Ok(self.count(self.grid.cell_of(p)?))
    }

    /// Raw per-region counts in row-major order.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total position data counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of regions with at least one position datum — the numerator
    /// of the ubiquity metric `F`.
    pub fn occupied_regions(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total number of regions — the denominator of `F`.
    pub fn region_count(&self) -> usize {
        self.counts.len()
    }

    /// Mean count over *occupied* regions, the natural reading of the MLN
    /// pseudocode's `avep` threshold (regions at `P = 0` are excluded
    /// throughout the paper: *"An exception is the regions at P = 0"*).
    /// Zero when nothing is counted.
    pub fn mean_occupied(&self) -> f64 {
        let occ = self.occupied_regions();
        if occ == 0 {
            0.0
        } else {
            self.total as f64 / occ as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::BBox;

    fn grid() -> Grid {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        Grid::square(b, 4).unwrap() // 25 m cells
    }

    #[test]
    fn from_positions_counts_per_region() {
        let g = grid();
        let pop = PopulationGrid::from_positions(
            &g,
            vec![
                Point::new(10.0, 10.0),
                Point::new(12.0, 9.0),
                Point::new(80.0, 80.0),
            ],
        )
        .unwrap();
        assert_eq!(pop.total(), 3);
        assert_eq!(pop.count(CellId::new(0, 0)), 2);
        assert_eq!(pop.count(CellId::new(3, 3)), 1);
        assert_eq!(pop.occupied_regions(), 2);
        assert_eq!(pop.region_count(), 16);
        assert_eq!(pop.count_at(Point::new(11.0, 11.0)).unwrap(), 2);
    }

    #[test]
    fn out_of_bounds_position_rejected() {
        let g = grid();
        let err = PopulationGrid::from_positions(&g, vec![Point::new(-1.0, 0.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn mean_occupied_excludes_empty_regions() {
        let g = grid();
        let pop = PopulationGrid::from_positions(
            &g,
            vec![
                Point::new(10.0, 10.0),
                Point::new(12.0, 9.0),
                Point::new(11.0, 11.0),
                Point::new(80.0, 80.0),
            ],
        )
        .unwrap();
        // 4 data in 2 occupied regions → mean 2, not 4/16.
        assert_eq!(pop.mean_occupied(), 2.0);
        assert_eq!(PopulationGrid::empty(&g).mean_occupied(), 0.0);
    }

    #[test]
    fn counts_vector_is_row_major() {
        let g = grid();
        let pop = PopulationGrid::from_positions(&g, vec![Point::new(30.0, 5.0)]).unwrap();
        // Cell (1, 0) → linear index 1.
        assert_eq!(pop.counts()[1], 1);
        assert_eq!(
            pop.counts().iter().map(|&c| c as u64).sum::<u64>(),
            pop.total()
        );
    }

    #[test]
    fn out_of_range_cell_counts_zero() {
        let g = grid();
        let pop = PopulationGrid::empty(&g);
        assert_eq!(pop.count(CellId::new(40, 40)), 0);
    }
}
