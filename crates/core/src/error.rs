use std::fmt;

use dummyloc_geo::GeoError;

/// Errors produced by the core privacy library.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A geometric precondition failed (bad area, out-of-bounds point, …).
    Geo(GeoError),
    /// A generator was configured with an invalid parameter.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A client operation was called out of protocol order.
    Protocol {
        /// What went wrong.
        message: &'static str,
    },
    /// Two [`crate::PopulationGrid`]s over different region partitions
    /// were merged.
    GridMismatch {
        /// Region count of the receiving population.
        expected: usize,
        /// Region count of the population being merged in.
        got: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Geo(e) => write!(f, "geometry error: {e}"),
            CoreError::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what}: {value}")
            }
            CoreError::Protocol { message } => write!(f, "protocol error: {message}"),
            CoreError::GridMismatch { expected, got } => {
                write!(
                    f,
                    "population grid mismatch: {expected} regions vs {got} regions"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeoError> for CoreError {
    fn from(e: GeoError) -> Self {
        CoreError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::from(GeoError::EmptyGrid);
        assert!(e.to_string().contains("geometry error"));
        assert!(e.source().is_some());
        let p = CoreError::InvalidParameter {
            what: "m",
            value: -1.0,
        };
        assert!(p.to_string().contains('m'));
        assert!(p.source().is_none());
    }
}
