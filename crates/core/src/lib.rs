//! # dummyloc-core — dummy-based location privacy
//!
//! Reproduction of the core contribution of *"Protection of Location
//! Privacy using Dummies for Location-based Services"* (Kido, Yanagisawa,
//! Satoh — ICDE 2005).
//!
//! An LBS user reveals their position to get service, and a provider that
//! stores positions can mine them. The paper's countermeasure: send the
//! true position together with several false positions (**dummies**) under
//! one pseudonym; the provider answers all of them and the client discards
//! everything but the true answer. For continuously queried services the
//! dummies must *move plausibly*, which is the hard part this crate
//! implements:
//!
//! * [`generator`] — the dummy-motion algorithms: the paper's **MN**
//!   (Moving in a Neighborhood), **MLN** (Moving in a Limited Neighborhood)
//!   and the **Random** strawman, plus ablation variants, all behind the
//!   object-safe [`DummyGenerator`] trait.
//! * [`client`] — the client agent that holds per-dummy state across steps
//!   and emits anonymized requests with the true position shuffled in.
//! * [`population`] / [`metrics`] — the paper's evaluation machinery:
//!   per-region population counts, the ubiquity metric `F`, the congestion
//!   metric `P`, and the motion-plausibility metric `Shift(P)` with the
//!   paper's Figure-8 buckets.
//! * [`anonymity`] — the extended Anonymity Set formalism (`AS_F`, `AS_P`)
//!   of §2.2, with the worked examples of Figure 2 as tests.
//! * [`cloaking`] — the accuracy-reduction baseline (Gruteser & Grunwald's
//!   spatial cloaking) that the paper compares against.
//! * [`adversary`] — observer models that try to pick the true position
//!   out of each request stream; these operationalize "the provider cannot
//!   distinguish true position data" as a measurable identification rate.
//! * [`hungarian`] — exact minimum-cost assignment, the linking substrate
//!   shared by the extension and attack crates' observers.
//!
//! # Quickstart
//!
//! ```
//! use dummyloc_core::client::Client;
//! use dummyloc_core::generator::{MnGenerator, NoDensity};
//! use dummyloc_core::population::PopulationGrid;
//! use dummyloc_geo::{rng::rng_from_seed, BBox, Grid, Point};
//!
//! let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
//! let mut rng = rng_from_seed(7);
//!
//! // A client that hides its true position among 3 MN dummies.
//! let generator = MnGenerator::new(area, 50.0).unwrap();
//! let mut client = Client::new("pseudonym-1", generator, 3);
//!
//! // First round: dummies are placed, the request interleaves them with
//! // the true position.
//! let round = client.begin(&mut rng, Point::new(500.0, 500.0)).unwrap();
//! assert_eq!(round.request.positions.len(), 4);
//!
//! // Later rounds: each dummy moves within its neighborhood.
//! let round = client
//!     .step(&mut rng, Point::new(503.0, 500.0), &NoDensity)
//!     .unwrap();
//! assert_eq!(round.request.positions.len(), 4);
//!
//! // The provider sees 4 plausible positions; region-level anonymity:
//! let grid = Grid::square(area, 8).unwrap();
//! let pop = PopulationGrid::from_positions(
//!     &grid,
//!     round.request.positions.iter().copied(),
//! ).unwrap();
//! assert!(pop.occupied_regions() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod anonymity;
pub mod client;
pub mod cloaking;
mod error;
pub mod generator;
pub mod hungarian;
pub mod metrics;
pub mod pool;
pub mod population;
pub mod streams;

pub use client::{Client, Request, Round};
pub use error::CoreError;
pub use generator::{DensityView, DummyGenerator, MlnGenerator, MnGenerator, RandomGenerator};
pub use hungarian::min_cost_assignment;
pub use metrics::{congestion_p, shift_p, ubiquity_f, ShiftBuckets, ShiftStats};
pub use pool::{PoolError, Shard, ThreadPool};
pub use population::PopulationGrid;
pub use streams::SeedTree;

/// Result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
