//! The client agent: the paper's anonymous-LBS protocol (§3.1, Figure 5).
//!
//! Per service round the client (1) reads its own position, (2) moves its
//! dummies, (3) sends one message `S` containing the true position and all
//! dummy positions under its pseudonym, (4) receives one answer per
//! position and (5) keeps only the answer matching the true position. The
//! provider never learns which position was true — *if* the dummies are
//! plausible, which is the generators' job.

use dummyloc_geo::{Grid, Point};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::generator::{DensityView, DummyGenerator};
use crate::{CoreError, Result};

/// The anonymized message a client sends: a pseudonym and `k+1` positions
/// with the true one shuffled in. This is everything the provider sees
/// (and exactly what goes on the wire in `dummyloc-server`'s protocol).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unlinkable pseudonym (the paper assumes the user id "cannot be
    /// connected to the user's privacy information because of pseudonyms").
    pub pseudonym: String,
    /// Reported positions — one true, the rest dummies, order shuffled.
    pub positions: Vec<Point>,
}

/// One client round: the outgoing [`Request`] plus the client-side secret
/// of where the true position sits in it.
///
/// `truth_index` never goes on the wire; the evaluation harness uses it to
/// score adversaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// The message as the provider receives it.
    pub request: Request,
    /// Index of the true position within `request.positions`.
    pub truth_index: usize,
}

impl Round {
    /// The true position (client-side view).
    pub fn true_position(&self) -> Point {
        self.request.positions[self.truth_index]
    }

    /// The dummy positions (client-side view), in request order.
    pub fn dummy_positions(&self) -> Vec<Point> {
        self.request
            .positions
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (i != self.truth_index).then_some(p))
            .collect()
    }
}

/// A client agent holding the per-dummy state the MN/MLN algorithms need
/// (*"the communication device of the user memorizes the previous position
/// of each dummy"*).
#[derive(Debug, Clone)]
pub struct Client<G> {
    pseudonym: String,
    generator: G,
    dummy_count: usize,
    dummies: Vec<Point>,
    precision: Option<Grid>,
    started: bool,
}

impl<G: DummyGenerator> Client<G> {
    /// Creates a client that will hide its position among `dummy_count`
    /// dummies produced by `generator`.
    pub fn new(pseudonym: impl Into<String>, generator: G, dummy_count: usize) -> Self {
        Client {
            pseudonym: pseudonym.into(),
            generator,
            dummy_count,
            dummies: Vec::new(),
            precision: None,
            started: false,
        }
    }

    /// Reports positions at the precision of `grid`: every outgoing
    /// position (true and dummy alike) is quantized to the center of its
    /// region, implementing the paper's *"the precision of the position
    /// data is the same scale as the regions"*.
    ///
    /// Quantization is applied on the wire only — dummy motion state
    /// stays exact, so MN neighborhoods keep their semantics.
    #[must_use]
    pub fn with_precision(mut self, grid: Grid) -> Self {
        self.precision = Some(grid);
        self
    }

    /// The client's pseudonym.
    pub fn pseudonym(&self) -> &str {
        &self.pseudonym
    }

    /// The configured number of dummies.
    pub fn dummy_count(&self) -> usize {
        self.dummy_count
    }

    /// Current dummy positions (empty before [`Client::begin`]).
    pub fn dummies(&self) -> &[Point] {
        &self.dummies
    }

    /// The generator in use.
    pub fn generator(&self) -> &G {
        &self.generator
    }

    /// Starts a session: places the initial dummies and emits the first
    /// request.
    ///
    /// Errors if the session already started or `true_pos` is outside the
    /// service area.
    pub fn begin(&mut self, rng: &mut dyn RngCore, true_pos: Point) -> Result<Round> {
        if self.started {
            return Err(CoreError::Protocol {
                message: "session already started; use step",
            });
        }
        self.check_in_area(true_pos)?;
        self.dummies = self.generator.init(rng, true_pos, self.dummy_count);
        self.started = true;
        Ok(self.make_round(rng, true_pos))
    }

    /// Advances one service round: moves every dummy via the generator
    /// (consulting `density`, last round's region populations) and emits
    /// the next request.
    ///
    /// Errors if [`Client::begin`] has not run or `true_pos` left the
    /// service area.
    pub fn step(
        &mut self,
        rng: &mut dyn RngCore,
        true_pos: Point,
        density: &dyn DensityView,
    ) -> Result<Round> {
        if !self.started {
            return Err(CoreError::Protocol {
                message: "session not started; use begin",
            });
        }
        self.check_in_area(true_pos)?;
        self.dummies = self.generator.step(rng, &self.dummies, density);
        Ok(self.make_round(rng, true_pos))
    }

    /// Ends the session; a following [`Client::begin`] starts a fresh one
    /// (fresh dummies, as after a pseudonym change).
    pub fn reset(&mut self) {
        self.started = false;
        self.dummies.clear();
    }

    /// Restores a mid-session state from a checkpoint: the dummy positions
    /// captured by [`Client::dummies`] are reinstated and the session is
    /// marked started, so the next [`Client::step`] continues exactly
    /// where the checkpointed session left off (given the same RNG state).
    ///
    /// Errors if the dummy count disagrees with the configuration — a
    /// checkpoint for a different run must not be silently accepted.
    pub fn resume_session(&mut self, dummies: Vec<Point>) -> Result<()> {
        if dummies.len() != self.dummy_count {
            return Err(CoreError::Protocol {
                message: "checkpointed dummy count disagrees with configuration",
            });
        }
        self.dummies = dummies;
        self.started = true;
        Ok(())
    }

    fn check_in_area(&self, p: Point) -> Result<()> {
        if self.generator.area().contains(p) {
            Ok(())
        } else {
            Err(CoreError::Geo(dummyloc_geo::GeoError::OutOfBounds {
                point: (p.x, p.y),
            }))
        }
    }

    fn make_round(&self, rng: &mut dyn RngCore, true_pos: Point) -> Round {
        // Insert the true position at a uniform index so position order
        // carries no signal.
        let truth_index = rng.gen_range(0..=self.dummies.len());
        let mut positions = Vec::with_capacity(self.dummies.len() + 1);
        positions.extend_from_slice(&self.dummies[..truth_index]);
        positions.push(true_pos);
        positions.extend_from_slice(&self.dummies[truth_index..]);
        if let Some(grid) = &self.precision {
            for p in &mut positions {
                *p = quantize(grid, *p);
            }
        }
        Round {
            request: Request {
                pseudonym: self.pseudonym.clone(),
                positions,
            },
            truth_index,
        }
    }
}

/// Quantizes a position to the center of its region (clamping stray
/// points into the grid first).
fn quantize(grid: &Grid, p: Point) -> Point {
    let cell = grid.cell_of_clamped(p);
    grid.cell_center(cell).expect("clamped cells are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{MnGenerator, NoDensity, RandomGenerator};
    use dummyloc_geo::rng::rng_from_seed;
    use dummyloc_geo::{BBox, Point};

    fn area() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap()
    }

    fn client(k: usize) -> Client<MnGenerator> {
        Client::new("p1", MnGenerator::new(area(), 30.0).unwrap(), k)
    }

    #[test]
    fn begin_emits_k_plus_one_positions() {
        let mut c = client(3);
        let mut rng = rng_from_seed(1);
        let round = c.begin(&mut rng, Point::new(500.0, 500.0)).unwrap();
        assert_eq!(round.request.positions.len(), 4);
        assert_eq!(round.request.pseudonym, "p1");
        assert_eq!(round.true_position(), Point::new(500.0, 500.0));
        assert_eq!(round.dummy_positions().len(), 3);
        assert_eq!(c.dummies().len(), 3);
    }

    #[test]
    fn protocol_order_is_enforced() {
        let mut c = client(2);
        let mut rng = rng_from_seed(2);
        let p = Point::new(10.0, 10.0);
        assert!(matches!(
            c.step(&mut rng, p, &NoDensity),
            Err(CoreError::Protocol { .. })
        ));
        c.begin(&mut rng, p).unwrap();
        assert!(matches!(
            c.begin(&mut rng, p),
            Err(CoreError::Protocol { .. })
        ));
        assert!(c.step(&mut rng, p, &NoDensity).is_ok());
        c.reset();
        assert!(c.dummies().is_empty());
        assert!(c.begin(&mut rng, p).is_ok());
    }

    #[test]
    fn out_of_area_truth_rejected() {
        let mut c = client(2);
        let mut rng = rng_from_seed(3);
        assert!(c.begin(&mut rng, Point::new(-5.0, 0.0)).is_err());
        assert!(!c.started);
    }

    #[test]
    fn dummies_persist_between_rounds() {
        // MN must move each dummy at most m per round — verifying the
        // client feeds the generator its own previous output.
        let mut c = client(4);
        let mut rng = rng_from_seed(4);
        c.begin(&mut rng, Point::new(500.0, 500.0)).unwrap();
        let before = c.dummies().to_vec();
        c.step(&mut rng, Point::new(501.0, 500.0), &NoDensity)
            .unwrap();
        let after = c.dummies().to_vec();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert!((a.x - b.x).abs() <= 30.0 + 1e-9);
            assert!((a.y - b.y).abs() <= 30.0 + 1e-9);
        }
    }

    #[test]
    fn truth_index_is_uniformly_placed() {
        let mut counts = [0usize; 4];
        let mut rng = rng_from_seed(5);
        for _ in 0..2000 {
            let mut c = client(3);
            let round = c.begin(&mut rng, Point::new(500.0, 500.0)).unwrap();
            counts[round.truth_index] += 1;
        }
        // Each slot expects 500; allow generous sampling noise.
        for (i, &n) in counts.iter().enumerate() {
            assert!((380..=620).contains(&n), "slot {i} hit {n} times");
        }
    }

    #[test]
    fn round_views_are_consistent_with_request() {
        let mut c = client(5);
        let mut rng = rng_from_seed(6);
        let round = c.begin(&mut rng, Point::new(123.0, 456.0)).unwrap();
        let mut rebuilt = round.dummy_positions();
        rebuilt.insert(round.truth_index, round.true_position());
        assert_eq!(rebuilt, round.request.positions);
    }

    #[test]
    fn precision_quantizes_all_reported_positions() {
        let grid = Grid::square(area(), 10).unwrap(); // 100 m cells
        let mut c = client(3).with_precision(grid.clone());
        let mut rng = rng_from_seed(31);
        let truth = Point::new(537.0, 468.0);
        let round = c.begin(&mut rng, truth).unwrap();
        for p in &round.request.positions {
            // Every reported position is a cell center: ..50 offsets.
            assert!((p.x % 100.0 - 50.0).abs() < 1e-9, "{p:?}");
            assert!((p.y % 100.0 - 50.0).abs() < 1e-9, "{p:?}");
        }
        // The truth slot carries the *quantized* truth.
        assert_eq!(round.true_position(), Point::new(550.0, 450.0));
        // Internal dummy state stays exact (not cell centers in general).
        let exact = c
            .dummies()
            .iter()
            .any(|d| (d.x % 100.0 - 50.0).abs() > 1e-9 || (d.y % 100.0 - 50.0).abs() > 1e-9);
        assert!(exact, "dummy motion state must not be quantized");
    }

    #[test]
    fn precision_loss_is_bounded_by_half_cell_diagonal() {
        let grid = Grid::square(area(), 8).unwrap(); // 125 m cells
        let mut c = client(0).with_precision(grid);
        let mut rng = rng_from_seed(32);
        let half_diag = (62.5f64 * 62.5 + 62.5 * 62.5).sqrt();
        let mut worst: f64 = 0.0;
        let mut truth = Point::new(3.0, 7.0);
        let round = c.begin(&mut rng, truth).unwrap();
        worst = worst.max(truth.distance(&round.true_position()));
        for k in 0..50 {
            truth = Point::new(3.0 + k as f64 * 19.7, 7.0 + k as f64 * 17.3);
            let round = c.step(&mut rng, truth, &NoDensity).unwrap();
            worst = worst.max(truth.distance(&round.true_position()));
        }
        assert!(worst <= half_diag + 1e-9, "worst precision loss {worst}");
    }
    #[test]
    fn zero_dummies_degenerates_to_plain_lbs() {
        let mut c = Client::new("p", RandomGenerator::new(area()).unwrap(), 0);
        let mut rng = rng_from_seed(7);
        let round = c.begin(&mut rng, Point::new(1.0, 1.0)).unwrap();
        assert_eq!(round.request.positions.len(), 1);
        assert_eq!(round.truth_index, 0);
        let round = c.step(&mut rng, Point::new(2.0, 2.0), &NoDensity).unwrap();
        assert_eq!(round.request.positions, vec![Point::new(2.0, 2.0)]);
    }

    #[test]
    fn resume_session_continues_identically() {
        use dummyloc_geo::rng::SimRng;
        // Run 5 rounds straight through…
        let mut rng = SimRng::seed_from_u64(77);
        let mut c = client(3);
        c.begin(&mut rng, Point::new(500.0, 500.0)).unwrap();
        c.step(&mut rng, Point::new(501.0, 500.0), &NoDensity)
            .unwrap();
        // …checkpoint here (dummies + RNG state)…
        let saved_dummies = c.dummies().to_vec();
        let saved_rng = rng.state();
        let straight = c
            .step(&mut rng, Point::new(502.0, 500.0), &NoDensity)
            .unwrap();
        // …and resume a fresh client from the checkpoint.
        let mut rng2 = SimRng::from_state(saved_rng);
        let mut c2 = client(3);
        c2.resume_session(saved_dummies).unwrap();
        let resumed = c2
            .step(&mut rng2, Point::new(502.0, 500.0), &NoDensity)
            .unwrap();
        assert_eq!(straight, resumed);
        // Wrong dummy count is rejected.
        let mut c3 = client(2);
        assert!(c3.resume_session(vec![Point::new(1.0, 1.0)]).is_err());
    }

    #[test]
    fn boxed_dyn_generator_client() {
        let gen: Box<dyn DummyGenerator> = Box::new(RandomGenerator::new(area()).unwrap());
        let mut c = Client::new("p", gen, 2);
        let mut rng = rng_from_seed(8);
        let round = c.begin(&mut rng, Point::new(9.0, 9.0)).unwrap();
        assert_eq!(round.request.positions.len(), 3);
    }
}
