//! The accuracy-reduction baseline (Figure 4(a)).
//!
//! Gruteser & Grunwald's *spatial cloaking* lowers the precision of the
//! reported position instead of adding noise: the user reports a region
//! containing their position. The paper's critique (§3): *"observers can
//! easily comprehend user moves when tracing data for several minutes
//! because the position data chain creates a rough trajectory"* — a
//! sequence of adjacent cloaks is itself a track.
//!
//! Two variants are implemented:
//!
//! * [`GridCloak`] — fixed-precision cloaking at the granularity of a
//!   region grid (what Figure 4(a) draws, and the "0 dummies" comparator
//!   in our Figure-7 reproduction).
//! * [`adaptive_cloak`] — Gruteser & Grunwald's quadtree-style *k*-anonymous
//!   cloaking: recursively quarter the service area and report the
//!   smallest quadrant still containing at least `k` users.

use dummyloc_geo::{BBox, Grid, Point};

use crate::anonymity::RegionInfo;
use crate::Result;

/// Fixed-precision spatial cloaking over a region grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCloak {
    grid: Grid,
}

/// The message a cloaking client sends: a pseudonym and a region instead
/// of a point.
#[derive(Debug, Clone, PartialEq)]
pub struct CloakedRequest {
    /// Unlinkable pseudonym, as in the dummy scheme.
    pub pseudonym: String,
    /// The reported region containing the true position.
    pub region: BBox,
}

impl GridCloak {
    /// Creates the scheme at the precision of `grid` (the paper sets
    /// position precision equal to the region scale).
    pub fn new(grid: Grid) -> Self {
        GridCloak { grid }
    }

    /// The region partition in use.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Cloaks a true position into its region.
    pub fn cloak(&self, pseudonym: impl Into<String>, true_pos: Point) -> Result<CloakedRequest> {
        let cell = self
            .grid
            .cell_of(true_pos)
            .map_err(crate::CoreError::from)?;
        let region = self.grid.cell_bbox(cell).map_err(crate::CoreError::from)?;
        Ok(CloakedRequest {
            pseudonym: pseudonym.into(),
            region,
        })
    }

    /// The anonymity-set information a provider extracts from a cloaked
    /// request: exactly one candidate region — `|AS_F| = 1` at grid
    /// precision, which is why cloaking needs *large* cells (hurting
    /// service quality) to protect anyone.
    pub fn info(&self, req: &CloakedRequest) -> RegionInfo {
        // Closed-box intersection would also pick up cells merely touching
        // the region's edges; keep only cells whose center the region
        // contains (for grid-aligned cloaks this is exactly the covered
        // cells).
        let cells = self
            .grid
            .cells_intersecting(&req.region)
            .into_iter()
            .filter(|&c| {
                self.grid
                    .cell_center(c)
                    .map(|p| req.region.contains(p))
                    .unwrap_or(false)
            })
            .collect();
        RegionInfo::from_regions(cells)
    }
}

/// Gruteser & Grunwald's adaptive k-anonymous cloak: the smallest
/// power-of-4 quadrant of `area` that contains `true_pos` and at least
/// `k` of `users` (the true position's own user counts as one, so `k = 1`
/// returns the deepest quadrant).
///
/// `max_depth` bounds the recursion (a depth of 10 over a 2 km area is
/// ~2 m precision — far below GPS noise).
pub fn adaptive_cloak(
    area: BBox,
    true_pos: Point,
    users: &[Point],
    k: usize,
    max_depth: u32,
) -> BBox {
    let mut quad = area;
    let mut inside: Vec<Point> = users
        .iter()
        .copied()
        .filter(|p| quad.contains(*p))
        .collect();
    for _ in 0..max_depth {
        let c = quad.center();
        let east = true_pos.x >= c.x;
        let north = true_pos.y >= c.y;
        let (min, max) = match (east, north) {
            (false, false) => (quad.min(), c),
            (true, false) => (Point::new(c.x, quad.min().y), Point::new(quad.max().x, c.y)),
            (false, true) => (Point::new(quad.min().x, c.y), Point::new(c.x, quad.max().y)),
            (true, true) => (c, quad.max()),
        };
        let child = BBox::new(min, max).expect("quadrant of a valid box is valid");
        let child_users: Vec<Point> = inside
            .iter()
            .copied()
            .filter(|p| child.contains(*p))
            .collect();
        // +1 counts the cloaking user themself.
        if child_users.len() + 1 < k {
            break;
        }
        quad = child;
        inside = child_users;
    }
    quad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1024.0, 1024.0)).unwrap()
    }

    #[test]
    fn grid_cloak_reports_containing_cell() {
        let grid = Grid::square(area(), 8).unwrap(); // 128 m cells
        let scheme = GridCloak::new(grid);
        let req = scheme.cloak("p", Point::new(200.0, 900.0)).unwrap();
        assert!(req.region.contains(Point::new(200.0, 900.0)));
        assert_eq!(req.region.width(), 128.0);
        assert_eq!(req.pseudonym, "p");
        assert!(scheme.cloak("p", Point::new(-1.0, 0.0)).is_err());
    }

    #[test]
    fn grid_cloak_info_is_single_region() {
        let grid = Grid::square(area(), 8).unwrap();
        let scheme = GridCloak::new(grid);
        let req = scheme.cloak("p", Point::new(200.0, 900.0)).unwrap();
        let info = scheme.info(&req);
        assert_eq!(crate::anonymity::as_f(&info), 1);
    }

    #[test]
    fn adaptive_cloak_descends_to_max_depth_with_enough_users() {
        // k = 1: only the user themself needed → full depth.
        let cloak = adaptive_cloak(area(), Point::new(100.0, 100.0), &[], 1, 5);
        assert_eq!(cloak.width(), 1024.0 / 32.0);
        assert!(cloak.contains(Point::new(100.0, 100.0)));
    }

    #[test]
    fn adaptive_cloak_stops_where_k_anonymity_would_break() {
        // 4 other users in the SW quadrant, none deeper near the truth.
        let users = vec![
            Point::new(500.0, 500.0),
            Point::new(400.0, 400.0),
            Point::new(450.0, 300.0),
            Point::new(300.0, 450.0),
        ];
        let truth = Point::new(10.0, 10.0);
        let cloak = adaptive_cloak(area(), truth, &users, 5, 10);
        // The SW 512-quadrant holds truth + 4 others = 5 ≥ k, but its SW
        // 256-sub-quadrant holds only the truth → stop at 512.
        assert_eq!(cloak.width(), 512.0);
        assert!(cloak.contains(truth));
        for u in &users {
            assert!(cloak.contains(*u));
        }
    }

    #[test]
    fn adaptive_cloak_entire_area_when_k_unreachable() {
        let cloak = adaptive_cloak(area(), Point::new(10.0, 10.0), &[], 99, 10);
        assert_eq!(cloak, area());
    }

    #[test]
    fn adaptive_cloak_always_contains_truth() {
        let users: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 19 % 1024) as f64, (i * 37 % 1024) as f64))
            .collect();
        for k in [1usize, 3, 10, 30] {
            for &(x, y) in &[(5.0, 5.0), (1000.0, 3.0), (512.0, 512.0), (1023.0, 1023.0)] {
                let truth = Point::new(x, y);
                let cloak = adaptive_cloak(area(), truth, &users, k, 8);
                assert!(cloak.contains(truth), "k={k} truth={truth:?}");
                // k-anonymity: the cloak holds at least k-1 other users or
                // is the full area.
                let others = users.iter().filter(|p| cloak.contains(**p)).count();
                assert!(others + 1 >= k || cloak == area());
            }
        }
    }
}
