//! Deterministic RNG stream splitting for parallel execution.
//!
//! Every stochastic component draws from an explicit `&mut impl Rng`, and
//! the simulation gives each user an *independent* child stream derived
//! from one master seed. That split is what makes the parallel engine
//! safe: a user's stream depends only on `(master seed, user index)`,
//! never on which worker runs the user, in what order users are stepped,
//! or how many threads exist. [`SeedTree`] packages the scheme:
//!
//! * `child_seed(i)` is the SplitMix64-finalized mix of the root seed and
//!   the stream index (see [`dummyloc_geo::rng::derive_seed`]) — pure
//!   64-bit integer arithmetic, so the values are identical on every
//!   platform and independent of the order children are created in;
//! * `rng(i)` is the workspace-standard RNG seeded with `child_seed(i)`;
//! * `subtree(i)` re-roots the tree for nested splits (per-experiment →
//!   per-user → per-component) without ever sharing a stream.
//!
//! The property tests in `crates/core/tests/streams.rs` pin down the
//! guarantees the equivalence suite relies on: child seeds are golden
//! (platform-stable), creation-order-independent, and the resulting
//! streams are pairwise non-overlapping over a million draws.

use dummyloc_geo::rng::{derive_seed, rng_from_seed, SimRng};
use rand::rngs::StdRng;

/// A root seed from which independent child streams are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// A tree rooted at `root` (typically the experiment's master seed).
    pub fn new(root: u64) -> Self {
        SeedTree { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The child seed of stream `index` — a pure function of
    /// `(root, index)`, identical on every platform.
    pub fn child_seed(&self, index: u64) -> u64 {
        derive_seed(self.root, index)
    }

    /// The workspace-standard RNG for stream `index`.
    pub fn rng(&self, index: u64) -> StdRng {
        rng_from_seed(self.child_seed(index))
    }

    /// The checkpointable RNG for stream `index` — same derivation
    /// discipline as [`SeedTree::rng`], but with serializable state so a
    /// simulation can suspend and resume the stream bit-for-bit.
    pub fn sim_rng(&self, index: u64) -> SimRng {
        SimRng::seed_from_u64(self.child_seed(index))
    }

    /// A tree rooted at child `index`, for nested stream splits.
    pub fn subtree(&self, index: u64) -> SeedTree {
        SeedTree::new(self.child_seed(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seed_matches_derive_seed() {
        let tree = SeedTree::new(42);
        for i in 0..50 {
            assert_eq!(tree.child_seed(i), derive_seed(42, i));
        }
        assert_eq!(tree.root(), 42);
    }

    #[test]
    fn rng_matches_manually_derived_stream() {
        let tree = SeedTree::new(7);
        let mut a = tree.rng(3);
        let mut b = rng_from_seed(derive_seed(7, 3));
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn subtree_re_roots() {
        let tree = SeedTree::new(9);
        assert_eq!(
            tree.subtree(4).child_seed(2),
            derive_seed(derive_seed(9, 4), 2)
        );
        assert_ne!(tree.subtree(4).child_seed(2), tree.child_seed(2));
    }
}
