//! Exact minimum-cost assignment (the Hungarian algorithm, `O(n²m)`).
//!
//! The substrate for every linking adversary in the workspace: the
//! extension crate's `OptimalTracker` links candidate positions across
//! rounds with it, the mix-zone re-linking attack matches streams across
//! pseudonym changes, and `dummyloc-attack`'s Viterbi tracker and
//! cross-pseudonym linkage both build their per-round candidate
//! correspondences on it. It lives in `dummyloc-core` so the attack
//! subsystem can use it without depending on `dummyloc-ext`
//! (`dummyloc_ext::hungarian` remains as a re-export for compatibility).
//! The implementation is the classic potentials-based formulation for
//! rectangular matrices with `rows ≤ cols`.

/// Solves the assignment problem for a `rows × cols` cost matrix with
/// `rows ≤ cols`: returns, per row, the column it is assigned, plus the
/// total cost. Every row is assigned exactly one distinct column.
///
/// Costs must be finite. An empty matrix yields an empty assignment.
///
/// ```
/// use dummyloc_core::hungarian::min_cost_assignment;
///
/// let cost = vec![
///     vec![4.0, 2.0, 8.0],
///     vec![3.0, 5.0, 9.0],
///     vec![6.0, 7.0, 2.0],
/// ];
/// let (assignment, total) = min_cost_assignment(&cost);
/// assert_eq!(assignment, vec![1, 0, 2]);
/// assert_eq!(total, 7.0);
/// ```
///
/// # Panics
///
/// Panics if `rows > cols`, rows have inconsistent lengths, or any cost
/// is non-finite — all programmer errors in matrix construction.
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let m = cost[0].len();
    assert!(
        n <= m,
        "assignment needs rows ({n}) <= cols ({m}); transpose the matrix"
    );
    for (i, row) in cost.iter().enumerate() {
        assert_eq!(row.len(), m, "row {i} has inconsistent length");
        assert!(
            row.iter().all(|c| c.is_finite()),
            "row {i} contains a non-finite cost"
        );
    }

    // 1-based potentials formulation; p[j] = row matched to column j.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    let mut total = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    debug_assert!(assignment.iter().all(|&j| j != usize::MAX));
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimum over all row→column injections.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, n, &mut |perm| {
            let total: f64 = perm
                .iter()
                .take(n)
                .enumerate()
                .map(|(i, &j)| cost[i][j])
                .sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    /// Enumerates all length-`k` prefixes of permutations of `items`.
    fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        fn go(items: &mut Vec<usize>, depth: usize, k: usize, f: &mut impl FnMut(&[usize])) {
            if depth == k {
                f(items);
                return;
            }
            for i in depth..items.len() {
                items.swap(depth, i);
                go(items, depth + 1, k, f);
                items.swap(depth, i);
            }
        }
        go(items, 0, k, f);
    }

    #[test]
    fn empty_and_single() {
        let (a, c) = min_cost_assignment(&[]);
        assert!(a.is_empty());
        assert_eq!(c, 0.0);
        let (a, c) = min_cost_assignment(&[vec![7.0]]);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 7.0);
    }

    #[test]
    fn textbook_square_instance() {
        // Known optimum: (0→1, 1→0, 2→2) = 2 + 3 + 2 = 7? Check by brute.
        let cost = vec![
            vec![4.0, 2.0, 8.0],
            vec![3.0, 5.0, 9.0],
            vec![6.0, 7.0, 2.0],
        ];
        let (a, total) = min_cost_assignment(&cost);
        assert_eq!(total, brute_force(&cost));
        assert_eq!(a, vec![1, 0, 2]);
        assert_eq!(total, 7.0);
    }

    #[test]
    fn rectangular_uses_best_columns() {
        let cost = vec![vec![10.0, 1.0, 10.0, 10.0], vec![10.0, 10.0, 10.0, 2.0]];
        let (a, total) = min_cost_assignment(&cost);
        assert_eq!(a, vec![1, 3]);
        assert_eq!(total, 3.0);
    }

    #[test]
    fn assignment_is_injective() {
        let cost = vec![
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ];
        let (a, total) = min_cost_assignment(&cost);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        assert_eq!(total, 3.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::Rng;
        let mut rng = dummyloc_geo::rng::rng_from_seed(9);
        for case in 0..200 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..100.0)).collect())
                .collect();
            let (a, total) = min_cost_assignment(&cost);
            let expect = brute_force(&cost);
            assert!(
                (total - expect).abs() < 1e-9,
                "case {case}: hungarian {total} vs brute {expect} for {cost:?}"
            );
            // Check the reported assignment actually sums to the total.
            let recomputed: f64 = a.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            assert!((recomputed - total).abs() < 1e-9);
            let mut cols = a.clone();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(cols.len(), n, "columns must be distinct");
        }
    }

    #[test]
    #[should_panic(expected = "transpose")]
    fn more_rows_than_cols_panics() {
        min_cost_assignment(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_cost_panics() {
        min_cost_assignment(&[vec![f64::NAN]]);
    }
}
