//! Observer (adversary) models.
//!
//! The paper's security argument is informal: *"the service provider
//! cannot distinguish true position data from a set of position data if
//! all dummies have temporal consistency."* These models make the claim
//! measurable: each adversary watches the full request stream of one
//! pseudonym and guesses which position in the **final** request is true.
//! An identification rate at the chance level `1/(k+1)` means the scheme
//! worked; a rate near 1 means the dummies gave themselves away.
//!
//! * [`RandomGuesser`] — the floor: uniform guess, rate `1/(k+1)`.
//! * [`ContinuityTracker`] — links positions across rounds by greedy
//!   nearest-neighbor matching into candidate trajectories (chains), then
//!   picks the *most motion-plausible* chain. Random dummies teleport, so
//!   their chains score terribly and the true track stands out; MN/MLN
//!   chains are as smooth as the true one.
//! * [`SpeedGate`] — the paper's temporal-consistency test in its purest
//!   form: discard every candidate whose chain ever moved faster than a
//!   plausible per-step bound, then guess uniformly among survivors.
//!
//! The positions inside each request are shuffled per round (see
//! [`Client`](crate::client::Client)), so adversaries must link across
//! rounds themselves — exactly the observer the paper worries about.
//!
//! ```
//! use dummyloc_core::adversary::{Adversary, ChainScore, ContinuityTracker};
//! use dummyloc_core::client::Request;
//! use dummyloc_geo::{rng::rng_from_seed, Point};
//!
//! // Candidate 0 walks smoothly; candidate 1 teleports each round.
//! let stream: Vec<Request> = (0..8)
//!     .map(|t| Request {
//!         pseudonym: "p".into(),
//!         positions: vec![
//!             Point::new(t as f64 * 2.0, 0.0),
//!             Point::new((t * 397 % 900) as f64, (t * 611 % 900) as f64),
//!         ],
//!     })
//!     .collect();
//! let tracker = ContinuityTracker::new(ChainScore::MaxStep);
//! let mut rng = rng_from_seed(1);
//! assert_eq!(tracker.identify(&mut rng, &stream), Some(0));
//! ```

use dummyloc_geo::Point;
use rand::{Rng, RngCore};

use crate::client::Request;

/// An observer trying to identify the true position in a request stream.
pub trait Adversary {
    /// Short name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Observes every request a pseudonym sent (in time order) and returns
    /// a guessed index into the **last** request's positions, or `None`
    /// for an empty stream.
    fn identify(&self, rng: &mut dyn RngCore, requests: &[Request]) -> Option<usize>;
}

/// Uniform random guessing — the theoretical floor `1/(k+1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomGuesser;

impl Adversary for RandomGuesser {
    fn name(&self) -> &'static str {
        "random-guess"
    }

    fn identify(&self, rng: &mut dyn RngCore, requests: &[Request]) -> Option<usize> {
        let last = requests.last()?;
        if last.positions.is_empty() {
            return None;
        }
        Some(rng.gen_range(0..last.positions.len()))
    }
}

/// How [`ContinuityTracker`] scores a candidate chain (lower = more
/// plausible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainScore {
    /// Largest single-step displacement — catches teleporting dummies.
    MaxStep,
    /// Variance of step lengths — catches erratic speed profiles even
    /// when no single jump is extreme.
    StepVariance,
}

/// Links positions across rounds into chains and picks the smoothest.
#[derive(Debug, Clone, Copy)]
pub struct ContinuityTracker {
    score: ChainScore,
}

impl ContinuityTracker {
    /// Creates a tracker with the given chain score.
    pub fn new(score: ChainScore) -> Self {
        ContinuityTracker { score }
    }

    /// Builds chains over the stream and returns, per chain, its final
    /// index in the last request and its step-length history. Exposed so
    /// other adversaries ([`SpeedGate`]) and tests can reuse the linking.
    pub fn build_chains(requests: &[Request]) -> Vec<Chain> {
        let Some(first) = requests.first() else {
            return Vec::new();
        };
        let mut chains: Vec<Chain> = first
            .positions
            .iter()
            .enumerate()
            .map(|(i, &p)| Chain {
                last: p,
                final_index: i,
                steps: Vec::new(),
            })
            .collect();
        for req in &requests[1..] {
            link_round(&mut chains, &req.positions);
        }
        chains
    }

    fn chain_score(&self, chain: &Chain) -> f64 {
        match self.score {
            ChainScore::MaxStep => chain.steps.iter().copied().fold(0.0, f64::max),
            ChainScore::StepVariance => {
                if chain.steps.len() < 2 {
                    return 0.0;
                }
                let n = chain.steps.len() as f64;
                let mean = chain.steps.iter().sum::<f64>() / n;
                chain
                    .steps
                    .iter()
                    .map(|s| (s - mean) * (s - mean))
                    .sum::<f64>()
                    / n
            }
        }
    }
}

impl Adversary for ContinuityTracker {
    fn name(&self) -> &'static str {
        match self.score {
            ChainScore::MaxStep => "tracker-maxstep",
            ChainScore::StepVariance => "tracker-variance",
        }
    }

    fn identify(&self, _rng: &mut dyn RngCore, requests: &[Request]) -> Option<usize> {
        let chains = Self::build_chains(requests);
        chains
            .iter()
            .min_by(|a, b| {
                self.chain_score(a)
                    .partial_cmp(&self.chain_score(b))
                    .expect("scores are finite")
                    .then(a.final_index.cmp(&b.final_index))
            })
            .map(|c| c.final_index)
    }
}

/// Discards candidates whose chain ever stepped farther than `max_step`,
/// then guesses uniformly among survivors (all candidates, if none
/// survive).
#[derive(Debug, Clone, Copy)]
pub struct SpeedGate {
    max_step: f64,
}

impl SpeedGate {
    /// Creates the gate; `max_step` is the largest per-round displacement
    /// the adversary considers humanly/vehicularly possible.
    pub fn new(max_step: f64) -> Self {
        assert!(max_step > 0.0, "max_step must be positive");
        SpeedGate { max_step }
    }
}

impl Adversary for SpeedGate {
    fn name(&self) -> &'static str {
        "speed-gate"
    }

    fn identify(&self, rng: &mut dyn RngCore, requests: &[Request]) -> Option<usize> {
        let chains = ContinuityTracker::build_chains(requests);
        if chains.is_empty() {
            return None;
        }
        let survivors: Vec<usize> = chains
            .iter()
            .filter(|c| c.steps.iter().all(|&s| s <= self.max_step))
            .map(|c| c.final_index)
            .collect();
        let pool: &[usize] = if survivors.is_empty() {
            // Gate eliminated everyone (bound too tight): fall back to all.
            &[]
        } else {
            &survivors
        };
        if pool.is_empty() {
            Some(rng.gen_range(0..chains.len()))
        } else {
            Some(pool[rng.gen_range(0..pool.len())])
        }
    }
}

/// One linked candidate trajectory through the request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Position in the most recent round.
    pub last: Point,
    /// Index of that position in the most recent request.
    pub final_index: usize,
    /// Per-round step displacements accumulated so far.
    pub steps: Vec<f64>,
}

/// Greedily matches chain ends to this round's positions, smallest
/// distance first; every chain gets exactly one candidate when counts
/// match. Extra candidates start new chains; starved chains are dropped.
fn link_round(chains: &mut Vec<Chain>, positions: &[Point]) {
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(chains.len() * positions.len());
    for (ci, chain) in chains.iter().enumerate() {
        for (pi, p) in positions.iter().enumerate() {
            pairs.push((chain.last.distance_sq(p), ci, pi));
        }
    }
    pairs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("positions are finite")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut chain_taken = vec![false; chains.len()];
    let mut pos_taken = vec![false; positions.len()];
    let mut assignment: Vec<Option<usize>> = vec![None; chains.len()];
    for (_, ci, pi) in pairs {
        if !chain_taken[ci] && !pos_taken[pi] {
            chain_taken[ci] = true;
            pos_taken[pi] = true;
            assignment[ci] = Some(pi);
        }
    }
    let mut next: Vec<Chain> = Vec::with_capacity(positions.len());
    for (ci, chain) in chains.drain(..).enumerate() {
        if let Some(pi) = assignment[ci] {
            let mut c = chain;
            c.steps.push(c.last.distance(&positions[pi]));
            c.last = positions[pi];
            c.final_index = pi;
            next.push(c);
        }
    }
    for (pi, &p) in positions.iter().enumerate() {
        if !pos_taken[pi] {
            next.push(Chain {
                last: p,
                final_index: pi,
                steps: Vec::new(),
            });
        }
    }
    *chains = next;
}

/// Fraction of streams on which `adversary` names the true position.
///
/// `streams` pairs each pseudonym's full request sequence with the truth
/// index of its final round (from [`Round`](crate::client::Round)).
pub fn identification_rate<A: Adversary + ?Sized>(
    adversary: &A,
    rng: &mut dyn RngCore,
    streams: &[(Vec<Request>, usize)],
) -> f64 {
    if streams.is_empty() {
        return 0.0;
    }
    let hits = streams
        .iter()
        .filter(|(requests, truth)| adversary.identify(rng, requests) == Some(*truth))
        .count();
    hits as f64 / streams.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::rng::rng_from_seed;

    /// A stream where candidate 0 walks smoothly and candidate 1 teleports.
    fn smooth_vs_teleport() -> Vec<Request> {
        let mut reqs = Vec::new();
        for t in 0..10 {
            let smooth = Point::new(t as f64 * 2.0, 0.0);
            let jumpy = Point::new((t * 397 % 1000) as f64, (t * 611 % 1000) as f64);
            reqs.push(Request {
                pseudonym: "p".into(),
                positions: vec![smooth, jumpy],
            });
        }
        reqs
    }

    #[test]
    fn tracker_finds_smooth_chain() {
        let reqs = smooth_vs_teleport();
        let mut rng = rng_from_seed(1);
        for score in [ChainScore::MaxStep, ChainScore::StepVariance] {
            let adv = ContinuityTracker::new(score);
            assert_eq!(adv.identify(&mut rng, &reqs), Some(0), "{:?}", score);
        }
    }

    #[test]
    fn tracker_follows_shuffled_positions() {
        // Same chains, but the smooth walker's slot alternates each round:
        // linking must follow positions, not indices.
        let mut reqs = Vec::new();
        for t in 0..10 {
            let smooth = Point::new(t as f64 * 2.0, 0.0);
            let jumpy = Point::new((t * 397 % 1000) as f64, (t * 611 % 1000) as f64);
            let positions = if t % 2 == 0 {
                vec![smooth, jumpy]
            } else {
                vec![jumpy, smooth]
            };
            reqs.push(Request {
                pseudonym: "p".into(),
                positions,
            });
        }
        let adv = ContinuityTracker::new(ChainScore::MaxStep);
        let mut rng = rng_from_seed(2);
        // Final round is t = 9 (odd): smooth sits at index 1.
        assert_eq!(adv.identify(&mut rng, &reqs), Some(1));
    }

    #[test]
    fn speed_gate_eliminates_teleporters() {
        let reqs = smooth_vs_teleport();
        let adv = SpeedGate::new(5.0);
        let mut rng = rng_from_seed(3);
        // Only the smooth chain survives a 5-unit step bound.
        for _ in 0..20 {
            assert_eq!(adv.identify(&mut rng, &reqs), Some(0));
        }
    }

    #[test]
    fn speed_gate_falls_back_when_everyone_filtered() {
        let reqs = smooth_vs_teleport();
        let adv = SpeedGate::new(0.001); // nobody passes
        let mut rng = rng_from_seed(4);
        let got = adv.identify(&mut rng, &reqs).unwrap();
        assert!(got < 2);
    }

    #[test]
    fn random_guesser_is_near_chance() {
        let reqs = smooth_vs_teleport();
        let adv = RandomGuesser;
        let mut rng = rng_from_seed(5);
        let hits = (0..2000)
            .filter(|_| adv.identify(&mut rng, &reqs) == Some(0))
            .count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn empty_stream_yields_none() {
        let mut rng = rng_from_seed(6);
        assert_eq!(RandomGuesser.identify(&mut rng, &[]), None);
        assert_eq!(
            ContinuityTracker::new(ChainScore::MaxStep).identify(&mut rng, &[]),
            None
        );
        assert_eq!(SpeedGate::new(1.0).identify(&mut rng, &[]), None);
    }

    #[test]
    fn single_round_stream_tracker_defaults_to_first() {
        let reqs = vec![Request {
            pseudonym: "p".into(),
            positions: vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)],
        }];
        let adv = ContinuityTracker::new(ChainScore::MaxStep);
        let mut rng = rng_from_seed(7);
        // No steps yet → all scores zero → deterministic tie-break on index.
        assert_eq!(adv.identify(&mut rng, &reqs), Some(0));
    }

    #[test]
    fn chains_handle_varying_position_counts() {
        // 2 positions, then 3, then 2: extra candidate starts a chain,
        // then one chain starves. No panics, sane indices.
        let reqs = vec![
            Request {
                pseudonym: "p".into(),
                positions: vec![Point::new(0.0, 0.0), Point::new(100.0, 100.0)],
            },
            Request {
                pseudonym: "p".into(),
                positions: vec![
                    Point::new(1.0, 0.0),
                    Point::new(101.0, 100.0),
                    Point::new(500.0, 500.0),
                ],
            },
            Request {
                pseudonym: "p".into(),
                positions: vec![Point::new(2.0, 0.0), Point::new(102.0, 100.0)],
            },
        ];
        let chains = ContinuityTracker::build_chains(&reqs);
        assert_eq!(chains.len(), 2);
        for c in &chains {
            assert!(c.final_index < 2);
        }
    }

    #[test]
    fn identification_rate_counts_hits() {
        let reqs = smooth_vs_teleport();
        let streams = vec![(reqs.clone(), 0), (reqs.clone(), 1), (reqs, 0)];
        let adv = ContinuityTracker::new(ChainScore::MaxStep);
        let mut rng = rng_from_seed(8);
        // Tracker always answers 0 → hits streams 1 and 3 of the three.
        let rate = identification_rate(&adv, &mut rng, &streams);
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(identification_rate(&adv, &mut rng, &[]), 0.0);
    }
}
