//! A small, work-stealing-free scoped thread pool.
//!
//! The parallel simulation engine and the experiment sweeps need exactly
//! two shapes of fan-out, and this module provides both over
//! `std::thread::scope` plus crossbeam channels — no other machinery:
//!
//! * [`ThreadPool::map`] — an order-preserving parallel map over a slice.
//!   Items are handed out through a shared atomic cursor (first-come,
//!   first-served, **no stealing**) and results come back through a
//!   channel tagged with their input index, so the output order never
//!   depends on scheduling.
//! * [`ThreadPool::supersteps`] — a bulk-synchronous crew: the input
//!   states are split into contiguous [`Shard`]s, one persistent worker
//!   per shard, and a serial *driver* closure broadcasts one job per
//!   round and collects every worker's output in shard order before the
//!   next round starts. This is the engine's per-round user fan-out; the
//!   workers live for the whole run, so per-round cost is two channel
//!   hops instead of thread spawns.
//!
//! Panic containment: a panicking task never unwinds into (or hangs) the
//! caller. The panic is caught on the worker, surfaced as
//! [`PoolError::WorkerPanic`], and every worker is still joined before
//! the pool call returns — `std::thread::scope` guarantees there are no
//! leaked threads on any path.
//!
//! Determinism contract: the pool never reorders results. `map` output
//! index `i` always holds `f(i, &items[i])`; `supersteps` outputs always
//! arrive in shard order. Callers that keep per-item state independent
//! (see [`crate::streams`]) therefore produce schedule-independent
//! results at any thread count.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel;

/// Process-wide default thread count used by [`ThreadPool::with_default`];
/// `0` means "ask [`std::thread::available_parallelism`]".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default thread count (the CLI's `--threads`).
/// `0` restores the automatic default (available parallelism).
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The resolved process-wide default thread count (always ≥ 1).
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Errors surfaced by pool executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker task panicked; the payload message is preserved.
    WorkerPanic {
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::WorkerPanic { message } => write!(f, "pool worker panicked: {message}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// One contiguous slice of work assigned to one persistent worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Worker index, `0..workers`.
    pub index: usize,
    /// Offset of the shard's first item in the original input.
    pub offset: usize,
    /// Number of items in the shard (never 0).
    pub len: usize,
}

/// A fixed-size scoped thread pool. The pool itself is just a thread
/// count; workers exist only inside each call and are always joined
/// before the call returns (there is no detached state to shut down
/// separately — "shutdown" is the tail of every call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers; `0` is clamped to 1.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// One worker per available core.
    pub fn auto() -> Self {
        ThreadPool::new(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    }

    /// The pool honoring the process-wide default ([`set_default_threads`]).
    pub fn with_default() -> Self {
        ThreadPool::new(default_threads())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when the pool runs everything on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// The balanced contiguous shard plan for `n` items: `min(threads, n)`
    /// shards whose lengths differ by at most one, in input order. Empty
    /// for `n == 0`.
    pub fn plan(&self, n: usize) -> Vec<Shard> {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        let base = n / workers;
        let extra = n % workers;
        let mut shards = Vec::with_capacity(workers);
        let mut offset = 0;
        for index in 0..workers {
            let len = base + usize::from(index < extra);
            shards.push(Shard { index, offset, len });
            offset += len;
        }
        shards
    }

    /// Order-preserving parallel map: output `i` is `f(i, &items[i])`.
    ///
    /// Items are distributed dynamically (shared cursor, no stealing);
    /// a zero-item input returns immediately without spawning anything.
    /// A panicking task poisons the run: remaining items are abandoned,
    /// all workers are joined, and the first panic is returned as
    /// [`PoolError::WorkerPanic`].
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Result<Vec<O>, PoolError>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(o) => out.push(o),
                    Err(payload) => {
                        return Err(PoolError::WorkerPanic {
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            }
            return Ok(out);
        }

        let cursor = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let (tx, rx) = channel::unbounded::<Result<(usize, O), String>>();
        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<String> = None;
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let poisoned = &poisoned;
                let f = &f;
                s.spawn(move || loop {
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                        Ok(o) => {
                            if tx.send(Ok((i, o))).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            poisoned.store(true, Ordering::Relaxed);
                            let _ = tx.send(Err(panic_message(payload.as_ref())));
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for msg in rx.iter() {
                match msg {
                    Ok((i, o)) => slots[i] = Some(o),
                    Err(message) => {
                        first_panic.get_or_insert(message);
                    }
                }
            }
        });
        match first_panic {
            Some(message) => Err(PoolError::WorkerPanic { message }),
            None => Ok(slots
                .into_iter()
                .map(|o| o.expect("unpoisoned map fills every slot"))
                .collect()),
        }
    }

    /// Bulk-synchronous execution over sharded state.
    ///
    /// `states` is split by [`ThreadPool::plan`]; each shard is moved onto
    /// its own persistent worker. `drive` then runs on the calling thread
    /// with a [`Conductor`]: every [`Conductor::round`] broadcasts one
    /// shared input to all workers, each worker applies `step` to its
    /// shard, and the round returns the outputs in shard order — a full
    /// barrier between rounds. When `drive` returns, the job channels
    /// close, every worker ships its shard back, and the reassembled
    /// (input-ordered) states are returned alongside `drive`'s result.
    ///
    /// A `step` panic is contained on the worker: the current and every
    /// later `round` call returns `Err`, `drive` still finishes, workers
    /// are joined, and the call as a whole returns the panic as an error.
    pub fn supersteps<St, In, Out, Step, Drive, R>(
        &self,
        states: Vec<St>,
        step: Step,
        drive: Drive,
    ) -> Result<(Vec<St>, R), PoolError>
    where
        St: Send,
        In: Send + Sync,
        Out: Send,
        Step: Fn(Shard, &mut [St], &In) -> Out + Sync,
        Drive: FnOnce(&mut Conductor<In, Out>) -> R,
    {
        let shards = self.plan(states.len());
        if shards.is_empty() {
            let mut conductor = Conductor {
                lanes: Vec::new(),
                shards: Vec::new(),
                poisoned: None,
            };
            let result = drive(&mut conductor);
            return Ok((states, result));
        }

        // Carve the states into per-shard chunks (reverse order so each
        // split_off is O(len of tail)).
        let mut rest = states;
        let mut chunks: Vec<Vec<St>> = Vec::with_capacity(shards.len());
        for shard in shards.iter().rev() {
            chunks.push(rest.split_off(shard.offset));
        }
        chunks.reverse();

        let (back_tx, back_rx) = channel::unbounded::<(usize, Vec<St>)>();
        let mut lanes = Vec::with_capacity(shards.len());
        let mut worker_ends = Vec::with_capacity(shards.len());
        for _ in &shards {
            let (job_tx, job_rx) = channel::unbounded::<Arc<In>>();
            let (out_tx, out_rx) = channel::unbounded::<Result<Out, String>>();
            lanes.push(Lane { job_tx, out_rx });
            worker_ends.push((job_rx, out_tx));
        }

        let (drive_result, panic) = std::thread::scope(|s| {
            for ((shard, mut chunk), (job_rx, out_tx)) in
                shards.iter().copied().zip(chunks).zip(worker_ends)
            {
                let step = &step;
                let back_tx = back_tx.clone();
                s.spawn(move || {
                    for job in job_rx.iter() {
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| step(shard, &mut chunk, &job)));
                        let msg = match outcome {
                            Ok(out) => out_tx.send(Ok(out)).is_err(),
                            Err(payload) => {
                                let _ = out_tx.send(Err(panic_message(payload.as_ref())));
                                true
                            }
                        };
                        if msg {
                            break;
                        }
                    }
                    let _ = back_tx.send((shard.index, chunk));
                });
            }
            drop(back_tx);
            let mut conductor = Conductor {
                lanes,
                shards,
                poisoned: None,
            };
            let result = drive(&mut conductor);
            let Conductor {
                lanes, poisoned, ..
            } = conductor;
            drop(lanes); // close job channels: workers drain, return state, exit
            (result, poisoned)
        });

        let mut returned: Vec<(usize, Vec<St>)> = back_rx.iter().collect();
        returned.sort_by_key(|(index, _)| *index);
        let states = returned
            .into_iter()
            .flat_map(|(_, chunk)| chunk)
            .collect::<Vec<_>>();
        match panic {
            Some(message) => Err(PoolError::WorkerPanic { message }),
            None => Ok((states, drive_result)),
        }
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::with_default()
    }
}

/// One worker's channel pair inside [`ThreadPool::supersteps`].
struct Lane<In, Out> {
    job_tx: channel::Sender<Arc<In>>,
    out_rx: channel::Receiver<Result<Out, String>>,
}

/// The driver's handle inside [`ThreadPool::supersteps`]: broadcasts one
/// job per round and collects outputs in shard order.
pub struct Conductor<In, Out> {
    lanes: Vec<Lane<In, Out>>,
    shards: Vec<Shard>,
    poisoned: Option<String>,
}

impl<In, Out> Conductor<In, Out> {
    /// Number of live workers (0 when the state vector was empty).
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The shard plan, in shard order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Runs one superstep: broadcasts `input` to every worker and waits
    /// for all outputs, returned in shard order. With zero workers this
    /// returns an empty vector immediately. After a worker panic, this
    /// and every later call return `Err`.
    pub fn round(&mut self, input: In) -> Result<Vec<Out>, PoolError> {
        if let Some(message) = &self.poisoned {
            return Err(PoolError::WorkerPanic {
                message: message.clone(),
            });
        }
        if self.lanes.is_empty() {
            return Ok(Vec::new());
        }
        let job = Arc::new(input);
        for lane in &self.lanes {
            // A send failure means the worker is gone (panicked earlier);
            // the receive loop below will surface it.
            let _ = lane.job_tx.send(Arc::clone(&job));
        }
        let mut outs = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            match lane.out_rx.recv() {
                Ok(Ok(out)) => outs.push(out),
                Ok(Err(message)) => {
                    self.poisoned = Some(message.clone());
                    return Err(PoolError::WorkerPanic { message });
                }
                Err(_) => {
                    let message = "worker exited before answering".to_string();
                    self.poisoned = Some(message.clone());
                    return Err(PoolError::WorkerPanic { message });
                }
            }
        }
        Ok(outs)
    }
}

/// Renders a caught panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = ThreadPool::new(4)
            .map(&items, |i, &x| x * 2 + i as u64)
            .unwrap();
        assert_eq!(out, (0..97).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty_is_immediate() {
        let out = ThreadPool::new(8).map(&[] as &[u8], |_, _| 0u8).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn map_panic_is_err() {
        let items: Vec<u32> = (0..32).collect();
        let err = ThreadPool::new(3)
            .map(&items, |_, &x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
            .unwrap_err();
        assert!(err.to_string().contains("boom at 7"), "{err}");
    }

    #[test]
    fn plan_is_balanced_and_contiguous() {
        let pool = ThreadPool::new(4);
        let shards = pool.plan(10);
        assert_eq!(shards.len(), 4);
        let lens: Vec<usize> = shards.iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        let mut offset = 0;
        for s in &shards {
            assert_eq!(s.offset, offset);
            offset += s.len;
        }
        assert_eq!(offset, 10);
        assert!(pool.plan(0).is_empty());
        assert_eq!(pool.plan(2).len(), 2);
    }

    #[test]
    fn supersteps_round_trip_and_state_return() {
        let states: Vec<u64> = (0..10).collect();
        let (states, sums) = ThreadPool::new(3)
            .supersteps(
                states,
                |_, chunk: &mut [u64], add: &u64| {
                    let mut sum = 0;
                    for s in chunk.iter_mut() {
                        *s += add;
                        sum += *s;
                    }
                    sum
                },
                |c| {
                    let mut sums = Vec::new();
                    for round in 1..=3u64 {
                        sums.push(c.round(round).unwrap().iter().sum::<u64>());
                    }
                    sums
                },
            )
            .unwrap();
        // Each state gained 1+2+3 = 6; order is preserved.
        assert_eq!(states, (0..10).map(|x| x + 6).collect::<Vec<_>>());
        assert_eq!(sums.len(), 3);
        assert_eq!(*sums.last().unwrap(), (0..10u64).map(|x| x + 6).sum());
    }

    #[test]
    fn supersteps_zero_states_runs_driver_immediately() {
        let (states, rounds) = ThreadPool::new(4)
            .supersteps(
                Vec::<u8>::new(),
                |_, _: &mut [u8], _: &u8| 1u8,
                |c| {
                    assert_eq!(c.workers(), 0);
                    c.round(9).unwrap().len()
                },
            )
            .unwrap();
        assert!(states.is_empty());
        assert_eq!(rounds, 0);
    }

    #[test]
    fn supersteps_panic_poisons_round_and_returns_err() {
        let result = ThreadPool::new(2).supersteps(
            vec![1u8, 2, 3],
            |shard, _: &mut [u8], round: &u32| {
                if *round == 2 && shard.index == 1 {
                    panic!("superstep kaput");
                }
                0u8
            },
            |c| {
                assert!(c.round(1).is_ok());
                let err = c.round(2).unwrap_err();
                assert!(err.to_string().contains("kaput"));
                // Poisoned: later rounds fail fast.
                assert!(c.round(3).is_err());
            },
        );
        let err = result.unwrap_err();
        assert!(err.to_string().contains("kaput"), "{err}");
    }

    #[test]
    fn default_threads_knob_round_trips() {
        let before = default_threads();
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        assert_eq!(ThreadPool::with_default().threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
        assert_eq!(default_threads(), before);
    }
}
