//! The paper's location-anonymity metrics: ubiquity `F`, congestion `P`,
//! and the motion-plausibility measure `Shift(P)`.
//!
//! * **Ubiquity `F`** (§2.3): *"a scale of all regions where people live"*
//!   — the fraction of regions containing at least one position datum.
//!   More occupied regions → an observer learns less from any single
//!   report. Figure 7 plots `F` (%) against the number of dummies.
//! * **Congestion `P`** (§2.3): the number of position data in a specific
//!   region. More data in a region → harder to single a user out inside
//!   it (the k-anonymity intuition the paper borrows from Gruteser &
//!   Grunwald).
//! * **`Shift(P)`** (§3.2): *"a shift of P in each region between times t
//!   and t+1"* — the per-region population change across one step. Large
//!   shifts mean position data appear/vanish abruptly, which is exactly
//!   how an observer spots implausible dummies. Figure 8 reports the
//!   distribution of `Shift(P)` in buckets {0, 1–2, 3–5, ≥6}.
//!
//! ```
//! use dummyloc_core::metrics::{shift_p, ubiquity_f};
//! use dummyloc_core::population::PopulationGrid;
//! use dummyloc_geo::{BBox, Grid, Point};
//!
//! let area = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
//! let grid = Grid::square(area, 4).unwrap();
//! let now = PopulationGrid::from_positions(
//!     &grid,
//!     vec![Point::new(10.0, 10.0), Point::new(80.0, 80.0)],
//! ).unwrap();
//! assert_eq!(ubiquity_f(&now), 2.0 / 16.0);
//!
//! let later = PopulationGrid::from_positions(
//!     &grid,
//!     vec![Point::new(12.0, 10.0), Point::new(80.0, 55.0)],
//! ).unwrap();
//! let shift = shift_p(&now, &later);
//! assert_eq!(shift.buckets.total(), 3); // stayed, emptied, filled
//! ```

use dummyloc_geo::CellId;
use serde::{Deserialize, Serialize};

use crate::population::PopulationGrid;

/// Ubiquity `F` of one population snapshot, in `[0, 1]`: the fraction of
/// regions holding at least one position datum. Multiply by 100 for the
/// paper's "Value: F (%)" axis.
pub fn ubiquity_f(pop: &PopulationGrid) -> f64 {
    pop.occupied_regions() as f64 / pop.region_count() as f64
}

/// Congestion `P` of one region: the number of position data it holds.
pub fn congestion_p(pop: &PopulationGrid, cell: CellId) -> u32 {
    pop.count(cell)
}

/// The paper's Figure-8 buckets for per-region `Shift(P)` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShiftBuckets {
    /// Regions whose population did not change (`shift = 0`).
    pub none: u64,
    /// `shift ∈ {1, 2}`.
    pub small: u64,
    /// `shift ∈ {3, 4, 5}`.
    pub medium: u64,
    /// `shift ≥ 6`.
    pub large: u64,
}

impl ShiftBuckets {
    /// Total sampled regions.
    pub fn total(&self) -> u64 {
        self.none + self.small + self.medium + self.large
    }

    /// Percentages `(none, 1–2, 3–5, ≥6)`, the rows of Figure 8. All zero
    /// for an empty sample.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let pct = |n: u64| n as f64 * 100.0 / t as f64;
        (
            pct(self.none),
            pct(self.small),
            pct(self.medium),
            pct(self.large),
        )
    }

    /// Adds one observed per-region shift into its bucket.
    pub fn record(&mut self, shift: u32) {
        match shift {
            0 => self.none += 1,
            1..=2 => self.small += 1,
            3..=5 => self.medium += 1,
            _ => self.large += 1,
        }
    }

    /// Merges another sample into this one (used to accumulate over steps).
    pub fn merge(&mut self, other: &ShiftBuckets) {
        self.none += other.none;
        self.small += other.small;
        self.medium += other.medium;
        self.large += other.large;
    }
}

/// Aggregate `Shift(P)` statistics for one pair of consecutive snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftStats {
    /// Bucketized per-region shifts (Figure 8's raw material).
    pub buckets: ShiftBuckets,
    /// Mean per-region |ΔP| over the sampled regions.
    pub mean: f64,
    /// Largest per-region |ΔP|.
    pub max: u32,
    /// Number of regions sampled.
    pub regions: usize,
}

/// Computes `Shift(P)` between consecutive snapshots `prev` (time `t`) and
/// `next` (time `t+1`): the per-region absolute population change,
/// bucketized and summarized.
///
/// Regions empty in *both* snapshots are excluded from the sample — the
/// paper discards `P = 0` regions (*"which are not considered because no
/// people live in that region"*), and a region that stays empty carries no
/// plausibility signal. A region that empties or fills *does* count.
///
/// # Panics
///
/// Panics if the two populations are counted over different grids — a
/// programming error in experiment setup.
pub fn shift_p(prev: &PopulationGrid, next: &PopulationGrid) -> ShiftStats {
    assert_eq!(
        prev.grid(),
        next.grid(),
        "Shift(P) requires both snapshots on the same region grid"
    );
    let mut buckets = ShiftBuckets::default();
    let mut sum: u64 = 0;
    let mut max: u32 = 0;
    let mut regions = 0usize;
    for (&a, &b) in prev.counts().iter().zip(next.counts()) {
        if a == 0 && b == 0 {
            continue;
        }
        let shift = a.abs_diff(b);
        buckets.record(shift);
        sum += u64::from(shift);
        max = max.max(shift);
        regions += 1;
    }
    ShiftStats {
        buckets,
        mean: if regions > 0 {
            sum as f64 / regions as f64
        } else {
            0.0
        },
        max,
        regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::{BBox, Grid, Point};

    fn grid() -> Grid {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        Grid::square(b, 2).unwrap() // 4 regions of 50 m
    }

    fn pop(points: &[(f64, f64)]) -> PopulationGrid {
        PopulationGrid::from_positions(&grid(), points.iter().map(|&(x, y)| Point::new(x, y)))
            .unwrap()
    }

    #[test]
    fn ubiquity_fraction_of_occupied_regions() {
        let p = pop(&[(10.0, 10.0), (60.0, 10.0), (61.0, 11.0)]);
        assert_eq!(ubiquity_f(&p), 0.5); // 2 of 4 regions occupied
        assert_eq!(ubiquity_f(&pop(&[])), 0.0);
    }

    #[test]
    fn congestion_reads_single_region() {
        let p = pop(&[(60.0, 10.0), (61.0, 11.0)]);
        assert_eq!(congestion_p(&p, CellId::new(1, 0)), 2);
        assert_eq!(congestion_p(&p, CellId::new(0, 0)), 0);
    }

    #[test]
    fn shift_p_counts_changes_and_skips_doubly_empty() {
        // t:   region(0,0)=2, region(1,0)=1, others empty.
        // t+1: region(0,0)=2, region(1,0)=0, region(0,1)=4.
        let a = pop(&[(10.0, 10.0), (20.0, 20.0), (60.0, 10.0)]);
        let b = pop(&[
            (10.0, 10.0),
            (20.0, 20.0),
            (10.0, 60.0),
            (11.0, 61.0),
            (12.0, 62.0),
            (13.0, 63.0),
        ]);
        let s = shift_p(&a, &b);
        // Sampled regions: (0,0) shift 0, (1,0) shift 1, (0,1) shift 4.
        // (1,1) empty in both → excluded.
        assert_eq!(s.regions, 3);
        assert_eq!(s.buckets.none, 1);
        assert_eq!(s.buckets.small, 1);
        assert_eq!(s.buckets.medium, 1);
        assert_eq!(s.buckets.large, 0);
        assert_eq!(s.max, 4);
        assert!((s.mean - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shift_p_identical_snapshots_all_none() {
        let a = pop(&[(10.0, 10.0), (60.0, 60.0)]);
        let s = shift_p(&a, &a.clone());
        assert_eq!(s.buckets.none, s.buckets.total());
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn shift_p_empty_snapshots() {
        let s = shift_p(&pop(&[]), &pop(&[]));
        assert_eq!(s.regions, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.buckets.percentages(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "same region grid")]
    fn shift_p_grid_mismatch_panics() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        let other = Grid::square(b, 4).unwrap();
        let p1 = pop(&[]);
        let p2 = PopulationGrid::empty(&other);
        shift_p(&p1, &p2);
    }

    #[test]
    fn bucket_boundaries_match_figure8() {
        let mut b = ShiftBuckets::default();
        for s in [0, 1, 2, 3, 4, 5, 6, 7, 100] {
            b.record(s);
        }
        assert_eq!(b.none, 1);
        assert_eq!(b.small, 2);
        assert_eq!(b.medium, 3);
        assert_eq!(b.large, 3);
        assert_eq!(b.total(), 9);
        let (n, s, m, l) = b.percentages();
        assert!((n - 100.0 / 9.0).abs() < 1e-9);
        assert!((s - 200.0 / 9.0).abs() < 1e-9);
        assert!((m - 300.0 / 9.0).abs() < 1e-9);
        assert!((l - 300.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_merge() {
        let mut a = ShiftBuckets {
            none: 1,
            small: 2,
            medium: 3,
            large: 4,
        };
        let b = ShiftBuckets {
            none: 10,
            small: 20,
            medium: 30,
            large: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ShiftBuckets {
                none: 11,
                small: 22,
                medium: 33,
                large: 44
            }
        );
    }
}
