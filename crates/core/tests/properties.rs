//! Property-based tests for the core privacy library.

use dummyloc_core::adversary::{Adversary, ChainScore, ContinuityTracker};
use dummyloc_core::anonymity::{as_f, as_p, RegionInfo};
use dummyloc_core::client::Client;
use dummyloc_core::cloaking::adaptive_cloak;
use dummyloc_core::generator::{
    DummyGenerator, MlnGenerator, MnGenerator, NoDensity, RandomGenerator,
};
use dummyloc_core::metrics::{shift_p, ubiquity_f, ShiftBuckets};
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::rng::rng_from_seed;
use dummyloc_geo::{BBox, Grid, Point};
use proptest::prelude::*;

const SIDE: f64 = 1000.0;

fn area() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)).unwrap()
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..=SIDE, 0.0..=SIDE), 0..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn ubiquity_is_a_fraction_bounded_by_points(
        points in arb_points(200),
        n in 1u32..20,
    ) {
        let grid = Grid::square(area(), n).unwrap();
        let pop = PopulationGrid::from_positions(&grid, points.iter().copied()).unwrap();
        let f = ubiquity_f(&pop);
        prop_assert!((0.0..=1.0).contains(&f));
        // Occupied regions can't exceed point count or region count.
        let cap = points.len().min(pop.region_count()) as f64 / pop.region_count() as f64;
        prop_assert!(f <= cap + 1e-12);
        prop_assert_eq!(f == 0.0, points.is_empty());
    }

    #[test]
    fn shift_buckets_partition_sampled_regions(
        a in arb_points(150),
        b in arb_points(150),
        n in 1u32..16,
    ) {
        let grid = Grid::square(area(), n).unwrap();
        let pa = PopulationGrid::from_positions(&grid, a.iter().copied()).unwrap();
        let pb = PopulationGrid::from_positions(&grid, b.iter().copied()).unwrap();
        let s = shift_p(&pa, &pb);
        prop_assert_eq!(s.buckets.total(), s.regions as u64);
        let (p0, p1, p2, p3) = s.buckets.percentages();
        if s.regions > 0 {
            prop_assert!((p0 + p1 + p2 + p3 - 100.0).abs() < 1e-9);
        }
        // Shift is symmetric.
        let s2 = shift_p(&pb, &pa);
        prop_assert_eq!(s.buckets, s2.buckets);
        prop_assert_eq!(s.max, s2.max);
    }

    #[test]
    fn shift_zero_iff_identical_counts(points in arb_points(100), n in 1u32..12) {
        let grid = Grid::square(area(), n).unwrap();
        let p = PopulationGrid::from_positions(&grid, points.iter().copied()).unwrap();
        let s = shift_p(&p, &p.clone());
        prop_assert_eq!(s.max, 0);
        prop_assert_eq!(s.mean, 0.0);
        prop_assert_eq!(s.buckets.none, s.regions as u64);
    }

    #[test]
    fn as_p_sums_what_as_f_names(points in arb_points(120), n in 1u32..12) {
        let grid = Grid::square(area(), n).unwrap();
        let pop = PopulationGrid::from_positions(&grid, points.iter().copied()).unwrap();
        // Information = "somewhere among all occupied regions".
        let occupied: Vec<_> = grid
            .cells()
            .filter(|&c| pop.count(c) > 0)
            .collect();
        let info = RegionInfo::from_regions(occupied.clone());
        prop_assert_eq!(as_f(&info), occupied.len());
        prop_assert_eq!(as_p(&pop, &info), points.len() as u64);
    }

    #[test]
    fn mn_generator_never_escapes_area_or_radius(
        seed in any::<u64>(),
        m in 1.0..200.0f64,
        k in 1usize..8,
        steps in 1usize..30,
    ) {
        let mut g = MnGenerator::new(area(), m).unwrap();
        let mut rng = rng_from_seed(seed);
        let mut prev = g.init(&mut rng, Point::new(500.0, 500.0), k);
        for _ in 0..steps {
            let next = g.step(&mut rng, &prev, &NoDensity);
            prop_assert_eq!(next.len(), k);
            for (a, b) in prev.iter().zip(&next) {
                prop_assert!(area().contains(*b));
                prop_assert!((a.x - b.x).abs() <= m + 1e-9);
                prop_assert!((a.y - b.y).abs() <= m + 1e-9);
            }
            prev = next;
        }
    }

    #[test]
    fn mln_respects_the_same_envelope_as_mn(
        seed in any::<u64>(),
        m in 1.0..200.0f64,
        k in 1usize..6,
    ) {
        let grid = Grid::square(area(), 10).unwrap();
        let crowd = PopulationGrid::from_positions(
            &grid,
            (0..40).map(|i| Point::new((i * 13 % 1000) as f64, (i * 29 % 1000) as f64)),
        ).unwrap();
        let mut g = MlnGenerator::new(area(), m).unwrap();
        let mut rng = rng_from_seed(seed);
        let prev = g.init(&mut rng, Point::new(1.0, 1.0), k);
        let next = g.step(&mut rng, &prev, &crowd);
        for (a, b) in prev.iter().zip(&next) {
            prop_assert!(area().contains(*b));
            prop_assert!((a.x - b.x).abs() <= m + 1e-9);
            prop_assert!((a.y - b.y).abs() <= m + 1e-9);
        }
    }

    #[test]
    fn client_requests_always_contain_truth_at_reported_index(
        seed in any::<u64>(),
        k in 0usize..8,
        steps in 1usize..20,
    ) {
        let mut rng = rng_from_seed(seed);
        let mut client = Client::new("p", MnGenerator::new(area(), 25.0).unwrap(), k);
        let mut truth = Point::new(500.0, 500.0);
        let round = client.begin(&mut rng, truth).unwrap();
        prop_assert_eq!(round.request.positions.len(), k + 1);
        prop_assert_eq!(round.request.positions[round.truth_index], truth);
        for _ in 0..steps {
            truth = Point::new(
                (truth.x + 3.0).min(SIDE),
                (truth.y + 1.0).min(SIDE),
            );
            let round = client.step(&mut rng, truth, &NoDensity).unwrap();
            prop_assert_eq!(round.request.positions.len(), k + 1);
            prop_assert_eq!(round.request.positions[round.truth_index], truth);
            prop_assert_eq!(round.dummy_positions().len(), k);
        }
    }

    #[test]
    fn adaptive_cloak_invariants(
        users in arb_points(60),
        tx in 0.0..=SIDE,
        ty in 0.0..=SIDE,
        k in 1usize..20,
        depth in 0u32..10,
    ) {
        let truth = Point::new(tx, ty);
        let cloak = adaptive_cloak(area(), truth, &users, k, depth);
        prop_assert!(cloak.contains(truth));
        prop_assert!(area().contains_bbox(&cloak));
        let inside = users.iter().filter(|p| cloak.contains(**p)).count();
        prop_assert!(inside + 1 >= k || cloak == area());
    }

    #[test]
    fn tracker_beats_chance_against_random_dummies(seed in any::<u64>()) {
        // A user walking 3 m per step among 4 random dummies is almost
        // always identifiable — the paper's motivation for MN. Individual
        // streams can fool the greedy linker (a dummy occasionally lands
        // right next to the truth), so assert on the rate over 25 streams:
        // chance is 20 %, we require > 60 %.
        let mut rng = rng_from_seed(seed);
        let adv = ContinuityTracker::new(ChainScore::MaxStep);
        let mut hits = 0;
        let trials = 25;
        for _ in 0..trials {
            let mut client = Client::new("p", RandomGenerator::new(area()).unwrap(), 4);
            let mut truth = Point::new(500.0, 500.0);
            let mut requests = vec![client.begin(&mut rng, truth).unwrap()];
            for _ in 0..15 {
                truth = Point::new(truth.x + 3.0, truth.y);
                requests.push(client.step(&mut rng, truth, &NoDensity).unwrap());
            }
            let stream: Vec<_> = requests.iter().map(|r| r.request.clone()).collect();
            if adv.identify(&mut rng, &stream) == Some(requests.last().unwrap().truth_index) {
                hits += 1;
            }
        }
        prop_assert!(hits * 100 > trials * 60, "hit {hits}/{trials}");
    }

    #[test]
    fn bucket_merge_is_additive(
        shifts_a in prop::collection::vec(0u32..20, 0..50),
        shifts_b in prop::collection::vec(0u32..20, 0..50),
    ) {
        let mut a = ShiftBuckets::default();
        for s in &shifts_a { a.record(*s); }
        let mut b = ShiftBuckets::default();
        for s in &shifts_b { b.record(*s); }
        let mut merged = a;
        merged.merge(&b);
        prop_assert_eq!(merged.total(), (shifts_a.len() + shifts_b.len()) as u64);
        let mut direct = ShiftBuckets::default();
        for s in shifts_a.iter().chain(&shifts_b) { direct.record(*s); }
        prop_assert_eq!(merged, direct);
    }
}
