//! Seeded property tests for RNG stream splitting ([`SeedTree`]).
//!
//! The parallel engine's determinism claim rests on three stream
//! properties, pinned down here: child seeds are *golden* (pure 64-bit
//! integer math, identical on every platform), *creation-order
//! independent* (a pure function of `(root, index)`), and the derived
//! streams are *pairwise non-overlapping* over a million draws.
//!
//! Only `child_seed` values are pinned as golden constants — RNG draw
//! values depend on the backing generator and may legitimately differ
//! between rand versions, so draws are only ever compared to each other
//! within one test process.

use dummyloc_core::streams::SeedTree;
use dummyloc_geo::rng::derive_seed;
use proptest::prelude::*;
use rand::RngCore;

/// 8 streams × 125 000 draws = 10⁶ values: every one distinct, so no
/// stream ever replays a value another stream produced (and no stream
/// revisits its own output) over a simulation-scale horizon.
#[test]
fn million_draws_across_streams_are_pairwise_distinct() {
    const STREAMS: u64 = 8;
    const DRAWS: usize = 125_000;
    let tree = SeedTree::new(42);
    let mut all: Vec<u64> = Vec::with_capacity(STREAMS as usize * DRAWS);
    for i in 0..STREAMS {
        let mut rng = tree.rng(i);
        for _ in 0..DRAWS {
            all.push(rng.next_u64());
        }
    }
    all.sort_unstable();
    let duplicates = all.windows(2).filter(|w| w[0] == w[1]).count();
    assert_eq!(
        duplicates, 0,
        "streams overlap: {duplicates} repeated draws"
    );
}

/// The child seeds of the workspace's default master seed, frozen. These
/// are pure SplitMix64 finalizer outputs; a change here means every
/// recorded experiment result silently re-randomizes.
#[test]
fn child_seeds_match_golden_values() {
    let tree = SeedTree::new(42);
    assert_eq!(tree.child_seed(0), 0xa759_ea27_d472_7622);
    assert_eq!(tree.child_seed(1), 0xbdd7_3226_2feb_6e95);
    assert_eq!(tree.child_seed(2), 0xd963_9a00_6c85_adb0);
    assert_eq!(tree.child_seed(3), 0x5fd3_0d2f_cbef_75e3);
    // The finalizer maps the all-zero input to zero — a known SplitMix64
    // quirk, frozen so nobody "fixes" it and shifts every stream.
    assert_eq!(SeedTree::new(0).child_seed(0), 0);
    assert_eq!(SeedTree::new(u64::MAX).child_seed(7), 0x8bde_40ab_8762_3c48);
    // Nested splits compose by re-rooting.
    assert_eq!(tree.subtree(1).child_seed(0), 0xb29e_d950_786f_5ae3);
}

proptest! {
    /// `child_seed` is a pure function of `(root, index)`: any creation
    /// order, any interleaving with other children, and any fresh tree
    /// with the same root all agree.
    #[test]
    fn child_seeds_are_creation_order_independent(
        root in any::<u64>(),
        mut indices in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let tree = SeedTree::new(root);
        let forward: Vec<u64> = indices.iter().map(|&i| tree.child_seed(i)).collect();
        indices.reverse();
        let backward: Vec<u64> =
            indices.iter().map(|&i| SeedTree::new(root).child_seed(i)).collect();
        let backward: Vec<u64> = backward.into_iter().rev().collect();
        prop_assert_eq!(&forward, &backward);
        // And each matches the underlying mix directly.
        indices.reverse();
        for (&i, &seed) in indices.iter().zip(&forward) {
            prop_assert_eq!(seed, derive_seed(root, i));
        }
    }

    /// Distinct stream indices give distinct child seeds (the finalizer
    /// is a bijection composed with an index mix; collisions would mean
    /// two users sharing a stream).
    #[test]
    fn distinct_indices_give_distinct_child_seeds(
        root in any::<u64>(),
        i in 0u64..4096,
        offset in 1u64..4096,
    ) {
        let j = (i + offset) % 4096; // offset ∈ [1, 4096) ⇒ j ≠ i
        let tree = SeedTree::new(root);
        prop_assert_ne!(tree.child_seed(i), tree.child_seed(j));
    }

    /// Two streams from the same tree agree draw-for-draw with freshly
    /// rebuilt copies of themselves, and (for the first draws) differ
    /// from each other — the split is stable and actually splits.
    #[test]
    fn streams_are_stable_and_distinct(root in any::<u64>(), i in 0u64..512) {
        let tree = SeedTree::new(root);
        let mut a1 = tree.rng(i);
        let mut a2 = SeedTree::new(root).rng(i);
        let mut b = tree.rng(i + 1);
        let mut same = 0;
        for _ in 0..16 {
            let x = a1.next_u64();
            prop_assert_eq!(x, a2.next_u64());
            if x == b.next_u64() {
                same += 1;
            }
        }
        prop_assert!(same < 16, "adjacent streams are identical");
    }
}

/// `subtree` re-roots: the nested tree's children are the grandchildren
/// of the parent, and never collide with the parent's own children.
#[test]
fn subtree_children_are_grandchildren() {
    let tree = SeedTree::new(42);
    for i in 0..8 {
        let sub = tree.subtree(i);
        assert_eq!(sub.root(), tree.child_seed(i));
        for j in 0..8 {
            assert_eq!(sub.child_seed(j), derive_seed(tree.child_seed(i), j));
            assert_ne!(sub.child_seed(j), tree.child_seed(j));
        }
    }
}
