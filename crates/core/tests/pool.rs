//! Concurrency stress tests for the scoped thread pool.
//!
//! Unit tests in `src/pool.rs` cover the happy paths; this suite attacks
//! the failure and lifecycle edges: a panicking task must surface as an
//! `Err` (never a hang or an unwind into the caller), every worker must
//! be joined before a pool call returns (proven by effect visibility),
//! and zero-task submissions must return immediately. The churn loop at
//! the bottom runs 5 iterations normally and 50 under `CHECK_STRESS=1`,
//! which is how `scripts/check.sh` invokes it.

use std::panic::panic_any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dummyloc_core::pool::{PoolError, ThreadPool};

/// 50 iterations under `CHECK_STRESS=1` (the check-script soak), 5 in a
/// plain `cargo test` so the suite stays fast.
fn stress_iterations() -> usize {
    if std::env::var("CHECK_STRESS").as_deref() == Ok("1") {
        50
    } else {
        5
    }
}

/// Runs `work` on a fresh thread and fails the test if it doesn't finish
/// within `secs` — the "contained, not hung" half of the panic contract.
fn finishes_within<T: Send + 'static>(secs: u64, work: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(work());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("pool call hung instead of returning")
}

#[test]
fn map_panic_returns_err_instead_of_hanging() {
    let err = finishes_within(30, || {
        let items: Vec<u32> = (0..256).collect();
        ThreadPool::new(4)
            .map(&items, |_, &x| {
                if x == 200 {
                    panic!("map worker {x} failed");
                }
                x * 2
            })
            .unwrap_err()
    });
    assert!(matches!(&err, PoolError::WorkerPanic { message } if message.contains("200")));
}

#[test]
fn non_string_panic_payloads_are_still_contained() {
    let err = finishes_within(30, || {
        let items = [1u8, 2, 3];
        ThreadPool::new(2)
            .map(&items, |_, &x| {
                if x == 2 {
                    panic_any(x); // not a &str or String
                }
                x
            })
            .unwrap_err()
    });
    assert_eq!(
        err,
        PoolError::WorkerPanic {
            message: "worker panicked".to_string()
        }
    );
}

#[test]
fn supersteps_panic_poisons_and_still_joins() {
    let (r, steps) = finishes_within(30, || {
        let steps = AtomicUsize::new(0);
        let r = ThreadPool::new(3).supersteps(
            (0..9u32).collect::<Vec<_>>(),
            |shard, _chunk: &mut [u32], round: &u32| {
                steps.fetch_add(1, Ordering::SeqCst);
                if *round == 2 && shard.index == 0 {
                    panic!("round two casualty");
                }
            },
            |c| {
                assert_eq!(c.workers(), 3);
                assert!(c.round(1).is_ok());
                assert!(c.round(2).is_err());
                // Poisoned: every later round fails fast without waiting
                // on the dead worker.
                for round in 3..20 {
                    assert!(c.round(round).is_err());
                }
            },
        );
        (r, steps.into_inner())
    });
    let err = r.unwrap_err();
    assert!(matches!(&err, PoolError::WorkerPanic { message } if message.contains("casualty")));
    // Round 1 ran on all 3 workers; round 2 reached at least the
    // panicking worker; fail-fast rounds never reached any worker.
    assert!((4..=6).contains(&steps), "unexpected step count {steps}");
}

#[test]
fn every_worker_effect_is_visible_after_return() {
    // Join-before-return proof: if any worker outlived the call, some of
    // its increments could be missing here. Exact counts mean every
    // worker finished (and was joined) before `map`/`supersteps` returned.
    let tally = AtomicUsize::new(0);
    let items: Vec<usize> = (0..512).collect();
    let out = ThreadPool::new(8)
        .map(&items, |_, &x| {
            tally.fetch_add(1, Ordering::SeqCst);
            x
        })
        .unwrap();
    assert_eq!(out.len(), 512);
    assert_eq!(tally.load(Ordering::SeqCst), 512);

    let step_tally = AtomicUsize::new(0);
    let (states, ()) = ThreadPool::new(4)
        .supersteps(
            (0..16u32).collect::<Vec<_>>(),
            |_, chunk: &mut [u32], _: &u32| {
                for s in chunk.iter_mut() {
                    *s += 1;
                    step_tally.fetch_add(1, Ordering::SeqCst);
                }
            },
            |c| {
                for round in 0..10 {
                    c.round(round).unwrap();
                }
            },
        )
        .unwrap();
    assert_eq!(step_tally.load(Ordering::SeqCst), 16 * 10);
    assert_eq!(states, (10..26u32).collect::<Vec<_>>());
}

#[test]
fn zero_task_submissions_return_immediately() {
    let started = Instant::now();
    let out = ThreadPool::new(16).map(&[] as &[u64], |_, &x| x).unwrap();
    assert!(out.is_empty());
    let (states, outs) = ThreadPool::new(16)
        .supersteps(
            Vec::<u64>::new(),
            |_, _: &mut [u64], _: &u64| 0u64,
            |c| {
                assert_eq!(c.workers(), 0);
                c.round(1).unwrap()
            },
        )
        .unwrap();
    assert!(states.is_empty());
    assert!(outs.is_empty());
    // Generous bound: no thread spawns, no channel waits — if either
    // empty path spun up workers and blocked, this would blow past it.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "empty submissions took {:?}",
        started.elapsed()
    );
}

#[test]
fn churn_loop_survives_repeated_spawn_panic_shutdown_cycles() {
    for iteration in 0..stress_iterations() {
        let pool = ThreadPool::new(4);

        // A clean map with real fan-out.
        let items: Vec<u64> = (0..128).collect();
        let doubled = pool.map(&items, |_, &x| x * 2).unwrap();
        assert_eq!(doubled[127], 254);

        // A panicking map on the same pool value (pools are per-call
        // scoped, so a poisoned run must not taint the next one).
        let err = pool
            .map(&items, |_, &x| {
                if x == iteration as u64 % 128 {
                    panic!("churn {iteration}");
                }
                x
            })
            .unwrap_err();
        assert!(matches!(err, PoolError::WorkerPanic { .. }));

        // Immediately after the failure, a supersteps crew over shared
        // state still runs to completion and returns its states in order.
        let (states, sums) = pool
            .supersteps(
                (0..32u64).collect::<Vec<_>>(),
                |_, chunk: &mut [u64], add: &u64| {
                    let mut sum = 0;
                    for s in chunk.iter_mut() {
                        *s += add;
                        sum += *s;
                    }
                    sum
                },
                |c| {
                    let mut total = 0u64;
                    for round in 1..=4u64 {
                        total += c.round(round).unwrap().iter().sum::<u64>();
                    }
                    total
                },
            )
            .unwrap();
        // Each state gained 1+2+3+4 = 10.
        assert_eq!(states, (10..42u64).collect::<Vec<_>>());
        assert!(sums > 0);
    }
}
