//! Street-constrained dummies: behavioral realism beyond the paper.
//!
//! MN dummies drift through buildings; real Nara users move along
//! streets. An observer with a map can discard every off-network
//! candidate instantly, so for street-bound populations dummies must be
//! street-bound too. [`StreetDummyGenerator`] walks each dummy over the
//! same [`StreetGrid`] the rickshaw workload uses, at a per-dummy speed
//! drawn from the same range — making dummies indistinguishable from
//! real vehicles by *either* the map test or the speed test.

use dummyloc_core::generator::{DensityView, DummyGenerator};
use dummyloc_geo::{BBox, Point};
use dummyloc_mobility::{StreetGrid, StreetWalker};
use rand::{Rng, RngCore};

/// Per-dummy walking state: the edge being traversed and progress along
/// it.
#[derive(Debug, Clone)]
struct WalkState {
    walker: StreetWalker,
    from: Point,
    to: Point,
    edge_len: f64,
    progress: f64,
    /// Distance covered per round (speed × tick), fixed per dummy.
    stride: f64,
    /// Rounds left standing still (customer pickup/dropoff mimicry).
    dwell_left: u32,
}

/// Dwell behaviour: at each intersection arrival, with probability
/// `prob`, stand still for a number of rounds drawn from `rounds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DwellBehavior {
    /// Probability of dwelling at an intersection arrival.
    pub prob: f64,
    /// `(min, max)` dwell duration in rounds (inclusive).
    pub rounds: (u32, u32),
}

/// Dummies that move along a street network at vehicle-like speeds.
#[derive(Debug, Clone)]
pub struct StreetDummyGenerator {
    streets: StreetGrid,
    /// `(min, max)` distance per round each dummy covers.
    stride_range: (f64, f64),
    dwell: Option<DwellBehavior>,
    state: Vec<WalkState>,
}

impl StreetDummyGenerator {
    /// Creates the generator over `streets`; each dummy covers a fixed
    /// per-round distance drawn from `stride_range` (e.g. speed range ×
    /// round length).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or unordered stride range (experiment-
    /// setup errors).
    pub fn new(streets: StreetGrid, stride_range: (f64, f64)) -> Self {
        assert!(
            stride_range.0 > 0.0 && stride_range.1 >= stride_range.0,
            "stride range must be positive and ordered"
        );
        StreetDummyGenerator {
            streets,
            stride_range,
            dwell: None,
            state: Vec::new(),
        }
    }

    /// Adds dwell mimicry: real street-bound users (rickshaws waiting for
    /// customers, couriers delivering) stand still a noticeable share of
    /// rounds; dummies without dwell states are separable by a
    /// stationarity test (measured in experiment X3). `prob = 0.08`,
    /// `rounds = (1, 5)` matches the Nara fleet's ~13 % stationary share.
    ///
    /// # Panics
    ///
    /// Panics on a probability outside `[0, 1]` or an unordered range.
    #[must_use]
    pub fn with_dwell(mut self, dwell: DwellBehavior) -> Self {
        assert!(
            (0.0..=1.0).contains(&dwell.prob) && dwell.rounds.0 <= dwell.rounds.1,
            "dwell needs prob in [0, 1] and an ordered round range"
        );
        self.dwell = Some(dwell);
        self
    }

    /// The street network dummies walk on.
    pub fn streets(&self) -> &StreetGrid {
        &self.streets
    }

    fn fresh_state(&self, rng: &mut dyn RngCore, near: Option<Point>) -> WalkState {
        let start = match near {
            Some(p) => self.streets.snap(p),
            None => self.streets.random_node(rng),
        };
        let mut walker = StreetWalker::new(self.streets.clone(), start);
        let from = self.streets.node_pos(start);
        let next = walker.step(rng);
        let to = self.streets.node_pos(next);
        let stride = if self.stride_range.0 < self.stride_range.1 {
            rng.gen_range(self.stride_range.0..self.stride_range.1)
        } else {
            self.stride_range.0
        };
        WalkState {
            walker,
            from,
            to,
            edge_len: from.distance(&to),
            progress: 0.0,
            stride,
            dwell_left: 0,
        }
    }

    fn position_of(st: &WalkState) -> Point {
        if st.edge_len <= 0.0 {
            st.from
        } else {
            st.from.lerp(&st.to, st.progress / st.edge_len)
        }
    }

    fn advance(
        st: &mut WalkState,
        streets: &StreetGrid,
        dwell: Option<DwellBehavior>,
        rng: &mut dyn RngCore,
    ) {
        if st.dwell_left > 0 {
            st.dwell_left -= 1;
            return;
        }
        let mut remaining = st.stride;
        while remaining > 0.0 {
            let left_on_edge = st.edge_len - st.progress;
            if remaining < left_on_edge {
                st.progress += remaining;
                break;
            }
            remaining -= left_on_edge;
            // Arrived at `to`: maybe dwell there, then pick the next block.
            st.from = st.to;
            let next = st.walker.step(rng);
            st.to = streets.node_pos(next);
            st.edge_len = st.from.distance(&st.to);
            st.progress = 0.0;
            if let Some(d) = dwell {
                if rng.gen_bool(d.prob) {
                    st.dwell_left = if d.rounds.0 < d.rounds.1 {
                        rng.gen_range(d.rounds.0..=d.rounds.1)
                    } else {
                        d.rounds.0
                    };
                    break; // stop at the intersection this round
                }
            }
        }
    }
}

impl DummyGenerator for StreetDummyGenerator {
    fn name(&self) -> &'static str {
        "street"
    }

    fn area(&self) -> BBox {
        self.streets.area()
    }

    fn init(&mut self, rng: &mut dyn RngCore, _true_pos: Point, count: usize) -> Vec<Point> {
        self.state = (0..count).map(|_| self.fresh_state(rng, None)).collect();
        self.state.iter().map(Self::position_of).collect()
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        // Self-heal if the caller's dummy count diverged from our state.
        if self.state.len() != prev.len() {
            self.state = prev
                .iter()
                .map(|&p| self.fresh_state(rng, Some(p)))
                .collect();
        }
        let streets = self.streets.clone();
        let dwell = self.dwell;
        for st in &mut self.state {
            Self::advance(st, &streets, dwell, rng);
        }
        self.state.iter().map(Self::position_of).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_core::generator::NoDensity;
    use dummyloc_geo::rng::rng_from_seed;

    fn streets() -> StreetGrid {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap();
        StreetGrid::new(area, 100.0)
    }

    fn on_network(streets: &StreetGrid, p: Point) -> bool {
        let sp = streets.spacing();
        let on_x = (p.x / sp - (p.x / sp).round()).abs() < 1e-6;
        let on_y = (p.y / sp - (p.y / sp).round()).abs() < 1e-6;
        on_x || on_y
    }

    #[test]
    fn dummies_stay_on_the_street_network() {
        let mut g = StreetDummyGenerator::new(streets(), (60.0, 120.0));
        let mut rng = rng_from_seed(1);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 5);
        for p in &prev {
            assert!(on_network(g.streets(), *p), "{p:?} off network at init");
        }
        for _ in 0..300 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for p in &next {
                assert!(on_network(g.streets(), *p), "{p:?} off network");
                assert!(g.area().contains(*p));
            }
            prev = next;
        }
    }

    #[test]
    fn per_round_distance_equals_the_stride() {
        let mut g = StreetDummyGenerator::new(streets(), (80.0, 80.0));
        let mut rng = rng_from_seed(2);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 3);
        for _ in 0..100 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (a, b) in prev.iter().zip(&next) {
                // Street distance per round is exactly the stride; the
                // Euclidean displacement can only be shorter (turns).
                assert!(a.distance(b) <= 80.0 + 1e-9);
                assert!(a.distance(b) > 0.0, "street dummies never stall");
            }
            prev = next;
        }
    }

    #[test]
    fn speeds_vary_between_dummies_but_not_within() {
        let mut g = StreetDummyGenerator::new(streets(), (50.0, 150.0));
        let mut rng = rng_from_seed(3);
        let prev = g.init(&mut rng, Point::ORIGIN, 4);
        // Walk a long straight stretch: per-round displacement on a
        // straight edge equals the stride.
        let strides: Vec<f64> = g.state.iter().map(|s| s.stride).collect();
        let mut uniq = strides.clone();
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        assert!(uniq.len() >= 3, "independent stride draws expected");
        for s in strides {
            assert!((50.0..150.0).contains(&s));
        }
        drop(prev);
    }

    #[test]
    fn self_heals_on_count_mismatch() {
        let mut g = StreetDummyGenerator::new(streets(), (60.0, 60.0));
        let mut rng = rng_from_seed(4);
        let prev = vec![Point::new(151.0, 149.0), Point::new(1000.0, 1000.0)];
        let next = g.step(&mut rng, &prev, &NoDensity);
        assert_eq!(next.len(), 2);
        for p in &next {
            assert!(on_network(g.streets(), *p));
        }
    }

    #[test]
    #[should_panic(expected = "stride range")]
    fn bad_stride_range_panics() {
        StreetDummyGenerator::new(streets(), (0.0, 10.0));
    }

    #[test]
    fn dwell_produces_stationary_rounds() {
        let mut g = StreetDummyGenerator::new(streets(), (60.0, 120.0)).with_dwell(DwellBehavior {
            prob: 0.4,
            rounds: (1, 4),
        });
        let mut rng = rng_from_seed(9);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 6);
        let mut stationary = 0usize;
        let mut total = 0usize;
        for _ in 0..300 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (a, b) in prev.iter().zip(&next) {
                total += 1;
                if a.distance(b) < 1e-9 {
                    stationary += 1;
                }
                assert!(on_network(g.streets(), *b));
            }
            prev = next;
        }
        let pct = stationary as f64 * 100.0 / total as f64;
        assert!((5.0..60.0).contains(&pct), "stationary {pct}%");
    }

    #[test]
    #[should_panic(expected = "dwell needs")]
    fn bad_dwell_config_panics() {
        let _ = StreetDummyGenerator::new(streets(), (60.0, 120.0)).with_dwell(DwellBehavior {
            prob: 1.5,
            rounds: (0, 1),
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut g = StreetDummyGenerator::new(streets(), (60.0, 120.0));
            let mut rng = rng_from_seed(seed);
            let mut prev = g.init(&mut rng, Point::ORIGIN, 3);
            for _ in 0..20 {
                prev = g.step(&mut rng, &prev, &NoDensity);
            }
            prev
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
