//! The map-equipped observer.
//!
//! Real Nara users ride streets; an observer holding a city map can test
//! each candidate chain against the street network and discard the ones
//! that drift through buildings. Against street-bound populations this
//! single test strips away every free-space dummy (MN, MLN, momentum…),
//! leaving the observer to pick among the street-consistent remainder —
//! exactly the argument for
//! [`StreetDummyGenerator`](crate::street_dummies::StreetDummyGenerator).

use dummyloc_core::adversary::{Adversary, ChainScore};
use dummyloc_core::client::Request;
use dummyloc_geo::Point;
use dummyloc_mobility::map_match::snap_point;
use dummyloc_mobility::StreetGrid;
use rand::RngCore;

use crate::optimal_tracker::OptimalTracker;

/// An adversary that first discards candidates whose linked chain strays
/// off the street network, then applies max-step scoring among the
/// survivors (falling back to all candidates when the filter eliminates
/// everyone — e.g. a pedestrian population).
#[derive(Debug, Clone)]
pub struct MapFilter {
    streets: StreetGrid,
    /// Mean snap distance above which a chain counts as off-network.
    tolerance_m: f64,
}

impl MapFilter {
    /// Creates the adversary with the observer's map and an off-network
    /// tolerance in metres (GPS noise scale; a few metres is realistic,
    /// larger values weaken the filter).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite tolerance.
    pub fn new(streets: StreetGrid, tolerance_m: f64) -> Self {
        assert!(
            tolerance_m.is_finite() && tolerance_m >= 0.0,
            "tolerance must be a non-negative number of metres"
        );
        MapFilter {
            streets,
            tolerance_m,
        }
    }

    /// Mean snap distance of one linked chain's full position history —
    /// the filter's per-chain statistic. Exposed for tests.
    pub fn mean_chain_snap_distance(&self, history: &[Point]) -> f64 {
        if history.is_empty() {
            return 0.0;
        }
        history
            .iter()
            .map(|p| p.distance(&snap_point(&self.streets, *p)))
            .sum::<f64>()
            / history.len() as f64
    }
}

impl Adversary for MapFilter {
    fn name(&self) -> &'static str {
        "map-filter"
    }

    fn identify(&self, rng: &mut dyn RngCore, requests: &[Request]) -> Option<usize> {
        if requests.is_empty() {
            return None;
        }
        let (chains, histories) = OptimalTracker::build_chains_with_history(requests);
        if chains.is_empty() {
            return None;
        }
        let mut survivors: Vec<usize> = Vec::new();
        for (idx, history) in histories.iter().enumerate() {
            if self.mean_chain_snap_distance(history) <= self.tolerance_m {
                survivors.push(idx);
            }
        }
        let pool: Vec<usize> = if survivors.is_empty() {
            (0..chains.len()).collect()
        } else {
            survivors
        };
        // Among survivors, smallest max-step chain wins.
        pool.into_iter()
            .min_by(|&a, &b| {
                OptimalTracker::chain_score(ChainScore::MaxStep, &chains[a])
                    .partial_cmp(&OptimalTracker::chain_score(
                        ChainScore::MaxStep,
                        &chains[b],
                    ))
                    .expect("scores are finite")
                    .then(chains[a].final_index.cmp(&chains[b].final_index))
            })
            .map(|i| chains[i].final_index)
            .or_else(|| {
                let last = requests.last()?;
                if last.positions.is_empty() {
                    None
                } else {
                    use rand::Rng;
                    Some(rng.gen_range(0..last.positions.len()))
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::rng::rng_from_seed;
    use dummyloc_geo::BBox;

    fn streets() -> StreetGrid {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        StreetGrid::new(area, 100.0)
    }

    fn req(positions: Vec<Point>) -> Request {
        Request {
            pseudonym: "p".into(),
            positions,
        }
    }

    #[test]
    fn map_filter_discards_off_network_dummies() {
        // True user rides the y=200 street; the dummy walks a diagonal
        // through the blocks. Both move smoothly at the same speed, so a
        // pure continuity tracker cannot separate them — the map can.
        let mut reqs = Vec::new();
        for t in 0..10 {
            let street_user = Point::new(100.0 + t as f64 * 30.0, 200.0);
            let block_ghost = Point::new(130.0 + t as f64 * 21.0, 330.0 + t as f64 * 21.0);
            reqs.push(req(vec![block_ghost, street_user]));
        }
        let adv = MapFilter::new(streets(), 5.0);
        let mut rng = rng_from_seed(1);
        assert_eq!(adv.identify(&mut rng, &reqs), Some(1));
        // A blind continuity tracker is indifferent (both chains smooth):
        // it picks the lower index, i.e. the ghost.
        let blind = OptimalTracker::new(ChainScore::MaxStep);
        assert_eq!(blind.identify(&mut rng, &reqs), Some(0));
    }

    #[test]
    fn falls_back_when_everyone_is_off_network() {
        let mut reqs = Vec::new();
        for t in 0..5 {
            reqs.push(req(vec![
                Point::new(133.0 + t as f64, 277.0),
                Point::new(433.0 + t as f64, 677.0),
            ]));
        }
        let adv = MapFilter::new(streets(), 1.0);
        let mut rng = rng_from_seed(2);
        let got = adv.identify(&mut rng, &reqs).unwrap();
        assert!(got < 2);
    }

    #[test]
    fn empty_stream_is_none() {
        let adv = MapFilter::new(streets(), 5.0);
        let mut rng = rng_from_seed(3);
        assert_eq!(adv.identify(&mut rng, &[]), None);
    }

    #[test]
    fn street_dummies_survive_the_map_filter() {
        use crate::street_dummies::StreetDummyGenerator;
        use dummyloc_core::client::Client;
        use dummyloc_core::generator::NoDensity;
        // A street-bound user with street-bound dummies: the filter keeps
        // everyone, so identification stays ambiguous. Run several trials
        // and require the adversary to be wrong at least sometimes.
        let adv = MapFilter::new(streets(), 5.0);
        let mut rng = rng_from_seed(4);
        let mut hits = 0;
        let trials = 30;
        for _ in 0..trials {
            let generator = StreetDummyGenerator::new(streets(), (25.0, 35.0));
            let mut client = Client::new("p", generator, 3);
            // True user also walks streets at a matched pace.
            let g = streets();
            let mut walker =
                dummyloc_mobility::StreetWalker::new(g.clone(), g.random_node(&mut rng));
            let mut truth = walker.position_point();
            let mut rounds = vec![client.begin(&mut rng, truth).unwrap()];
            for k in 0..12 {
                // One block every ~3 rounds at 30 m/round on 100 m blocks:
                // emulate by stepping the walker every 3rd round.
                if k % 3 == 2 {
                    walker.step(&mut rng);
                }
                truth = walker.position_point();
                rounds.push(client.step(&mut rng, truth, &NoDensity).unwrap());
            }
            let stream: Vec<Request> = rounds.iter().map(|r| r.request.clone()).collect();
            if adv.identify(&mut rng, &stream) == Some(rounds.last().unwrap().truth_index) {
                hits += 1;
            }
        }
        assert!(
            hits < trials,
            "street dummies should not be perfectly identifiable ({hits}/{trials})"
        );
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn negative_tolerance_panics() {
        MapFilter::new(streets(), -1.0);
    }
}
