//! A light client-session driver for custom evaluations.
//!
//! The engine in `dummyloc-sim` runs the paper's fixed algorithm set; the
//! extension experiments need arbitrary (stateful) generators and
//! pseudonym rotation, so this driver re-implements just the client loop:
//! per round, every user reports its true position plus dummies; MLN-
//! style generators see the previous round's *other-users* density, as in
//! the engine.

use dummyloc_core::client::{Client, Request};
use dummyloc_core::generator::{DummyGenerator, NoDensity, OthersDensity};
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::rng::{derive_seed, rng_from_seed};
use dummyloc_geo::{BBox, Grid, Point};
use dummyloc_trajectory::Dataset;

/// Pseudonym rotation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rotation {
    /// Rounds per pseudonym segment (≥ 1).
    pub period: usize,
    /// Rounds of radio silence between segments (the "temporal mix
    /// zone"); the user keeps moving but reports nothing.
    pub silent_rounds: usize,
}

/// Configuration of a session run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Service area (must contain the workload).
    pub area: BBox,
    /// Region grid for the density view.
    pub grid_size: u32,
    /// Dummies per user.
    pub dummies: usize,
    /// Seconds between rounds.
    pub tick: f64,
    /// Master seed.
    pub seed: u64,
    /// Fraction of users generating dummies (the rest report bare
    /// positions); 1.0 = the paper's every-user assumption.
    pub adoption: f64,
    /// Pseudonym rotation, or `None` for one segment per user.
    pub rotation: Option<Rotation>,
}

impl SessionConfig {
    /// Defaults matching the engine's Nara setting.
    pub fn nara_default(seed: u64) -> Self {
        SessionConfig {
            area: BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0))
                .expect("static bounds"),
            grid_size: 12,
            dummies: 3,
            tick: 30.0,
            seed,
            adoption: 1.0,
            rotation: None,
        }
    }
}

/// One pseudonym segment of one user: the requests sent under that
/// pseudonym and the truth index of its final round.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentStream {
    /// Requests in time order.
    pub requests: Vec<Request>,
    /// Index of the true position in the final request.
    pub final_truth_index: usize,
}

/// Everything a session run produces: `segments[user][segment]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Per user, the pseudonym segments in time order.
    pub segments: Vec<Vec<SegmentStream>>,
}

impl SessionOutcome {
    /// Flattens a non-rotating run into the `(stream, truth)` pairs the
    /// adversary API consumes; for rotating runs, each segment becomes
    /// its own stream (pseudonyms are unlinkable by assumption).
    pub fn into_streams(self) -> Vec<(Vec<Request>, usize)> {
        self.segments
            .into_iter()
            .flatten()
            .map(|s| (s.requests, s.final_truth_index))
            .collect()
    }

    /// Number of segments per user (uniform across users).
    pub fn segments_per_user(&self) -> usize {
        self.segments.first().map_or(0, Vec::len)
    }
}

/// Runs the session loop. `make_generator` is called once per user (so
/// stateful generators stay per-user); the same generator instance is
/// reused across that user's pseudonym segments, but the client's dummy
/// *positions* are re-initialized at each segment start.
///
/// # Panics
///
/// Panics if the workload has no common window, leaves the area, or the
/// configuration is degenerate — session runs are experiment internals
/// where these are setup bugs.
pub fn run<F>(fleet: &Dataset, config: &SessionConfig, mut make_generator: F) -> SessionOutcome
where
    F: FnMut(usize) -> Box<dyn DummyGenerator>,
{
    assert!(
        config.tick.is_finite() && config.tick > 0.0,
        "tick must be positive"
    );
    if let Some(r) = config.rotation {
        assert!(r.period >= 1, "rotation period must be at least 1 round");
    }
    let (start, end) = fleet
        .common_time_range()
        .expect("workload has a common window");
    let grid = Grid::square(config.area, config.grid_size).expect("valid grid config");
    let users = fleet.len();

    assert!(
        (0.0..=1.0).contains(&config.adoption),
        "adoption must be a fraction in [0, 1]"
    );
    let adopters = (config.adoption * users as f64).round() as usize;
    let mut clients: Vec<Client<Box<dyn DummyGenerator>>> = (0..users)
        .map(|i| {
            let dummies = if i < adopters { config.dummies } else { 0 };
            Client::new(fleet.tracks()[i].id(), make_generator(i), dummies)
        })
        .collect();
    let mut rngs: Vec<_> = (0..users)
        .map(|i| rng_from_seed(derive_seed(config.seed, i as u64)))
        .collect();

    let rounds = ((end - start) / config.tick).floor() as usize + 1;
    let mut segments: Vec<Vec<SegmentStream>> = vec![Vec::new(); users];
    let mut current: Vec<SegmentStream> = (0..users)
        .map(|_| SegmentStream {
            requests: Vec::new(),
            final_truth_index: 0,
        })
        .collect();
    let mut prev_pop: Option<PopulationGrid> = None;
    let mut emitted_in_segment = 0usize;
    let mut silence_left = 0usize;

    for k in 0..rounds {
        let t = start + k as f64 * config.tick;
        if silence_left > 0 {
            // Radio silence: everyone moves, nobody transmits; the
            // observer's density snapshot goes stale.
            silence_left -= 1;
            prev_pop = None;
            continue;
        }
        let snapshot = fleet.snapshot(t);
        let mut pop = PopulationGrid::empty(&grid);
        for (i, maybe_pos) in snapshot.positions().iter().enumerate() {
            let pos = maybe_pos.expect("common window guarantees activity");
            let fresh_segment = current[i].requests.is_empty();
            let round = if fresh_segment {
                clients[i].reset();
                clients[i]
                    .begin(&mut rngs[i], pos)
                    .expect("position inside area")
            } else {
                match &prev_pop {
                    Some(density) => {
                        let own_prev: &[Point] = current[i]
                            .requests
                            .last()
                            .map(|r| r.positions.as_slice())
                            .unwrap_or(&[]);
                        let view = OthersDensity::new(density, own_prev);
                        clients[i]
                            .step(&mut rngs[i], pos, &view)
                            .expect("position inside area")
                    }
                    None => clients[i]
                        .step(&mut rngs[i], pos, &NoDensity)
                        .expect("position inside area"),
                }
            };
            for &p in &round.request.positions {
                pop.add(p).expect("reported positions stay inside the area");
            }
            // Segments get distinct pseudonyms so the observer cannot key
            // on the identifier.
            let mut request = round.request;
            request.pseudonym = format!("{}#{}", request.pseudonym, segments[i].len());
            current[i].final_truth_index = round.truth_index;
            current[i].requests.push(request);
        }
        prev_pop = Some(pop);
        emitted_in_segment += 1;

        if let Some(r) = config.rotation {
            if emitted_in_segment >= r.period {
                for i in 0..users {
                    let seg = std::mem::replace(
                        &mut current[i],
                        SegmentStream {
                            requests: Vec::new(),
                            final_truth_index: 0,
                        },
                    );
                    segments[i].push(seg);
                }
                emitted_in_segment = 0;
                silence_left = r.silent_rounds;
                prev_pop = None;
            }
        }
    }
    for i in 0..users {
        if !current[i].requests.is_empty() {
            let seg = std::mem::replace(
                &mut current[i],
                SegmentStream {
                    requests: Vec::new(),
                    final_truth_index: 0,
                },
            );
            segments[i].push(seg);
        }
    }
    SessionOutcome { segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_core::generator::MnGenerator;
    use dummyloc_sim::workload;

    fn fleet() -> Dataset {
        workload::nara_fleet_sized(5, 600.0, 17)
    }

    fn mn_factory(area: BBox) -> impl FnMut(usize) -> Box<dyn DummyGenerator> {
        move |_| Box::new(MnGenerator::new(area, 100.0).expect("valid m"))
    }

    #[test]
    fn non_rotating_run_yields_one_segment_per_user() {
        let config = SessionConfig::nara_default(3);
        let out = run(&fleet(), &config, mn_factory(config.area));
        assert_eq!(out.segments.len(), 5);
        assert_eq!(out.segments_per_user(), 1);
        // 600 s at 30 s tick → 21 rounds.
        for segs in &out.segments {
            assert_eq!(segs[0].requests.len(), 21);
            assert!(segs[0].requests.iter().all(|r| r.positions.len() == 4));
        }
        let streams = out.into_streams();
        assert_eq!(streams.len(), 5);
    }

    #[test]
    fn partial_adoption_mixes_protected_and_bare_users() {
        let mut config = SessionConfig::nara_default(3);
        config.adoption = 0.4; // 2 of 5 users
        let out = run(&fleet(), &config, mn_factory(config.area));
        let sizes: Vec<usize> = out
            .segments
            .iter()
            .map(|s| s[0].requests[0].positions.len())
            .collect();
        assert_eq!(sizes, vec![4, 4, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "adoption")]
    fn bad_adoption_panics() {
        let mut config = SessionConfig::nara_default(3);
        config.adoption = 1.5;
        run(&fleet(), &config, mn_factory(config.area));
    }
    #[test]
    fn rotation_splits_segments_and_renames_pseudonyms() {
        let mut config = SessionConfig::nara_default(3);
        config.rotation = Some(Rotation {
            period: 8,
            silent_rounds: 2,
        });
        let out = run(&fleet(), &config, mn_factory(config.area));
        // 21 rounds: segment of 8, silence 2, segment of 8, silence 2,
        // then 1 remaining round → 3 segments.
        assert_eq!(out.segments_per_user(), 3);
        let u0 = &out.segments[0];
        assert_eq!(u0[0].requests.len(), 8);
        assert_eq!(u0[1].requests.len(), 8);
        assert_eq!(u0[2].requests.len(), 1);
        // Pseudonyms differ across segments and agree within.
        let p0 = &u0[0].requests[0].pseudonym;
        assert!(u0[0].requests.iter().all(|r| &r.pseudonym == p0));
        assert_ne!(p0, &u0[1].requests[0].pseudonym);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = SessionConfig::nara_default(5);
        let f = fleet();
        let a = run(&f, &config, mn_factory(config.area));
        let b = run(&f, &config, mn_factory(config.area));
        assert_eq!(a, b);
        let mut config2 = config;
        config2.seed = 6;
        let c = run(&f, &config2, mn_factory(config.area));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_dummy_session_is_plain_lbs() {
        let mut config = SessionConfig::nara_default(3);
        config.dummies = 0;
        let out = run(&fleet(), &config, mn_factory(config.area));
        for segs in &out.segments {
            for r in &segs[0].requests {
                assert_eq!(r.positions.len(), 1);
            }
            assert_eq!(segs[0].final_truth_index, 0);
        }
    }
}
