//! Tour dummies: full mobility-model mimicry.
//!
//! [`StreetDummyGenerator`](crate::street_dummies::StreetDummyGenerator)
//! wanders; real rickshaws *commute between sights*, which shows in their
//! turn-angle distribution — long straight runs with occasional corners
//! (X3 measures ~19° mean turn for the fleet vs ~44° for wandering
//! street dummies). `TourDummyGenerator` runs each dummy through the same
//! behavioural loop as the workload model itself: pick a destination
//! point of interest, ride there along a random shortest staircase route,
//! dwell, repeat. It is the strongest mimicry in the crate — by
//! construction its motion process is the same family as the true users'.

use std::collections::VecDeque;

use dummyloc_core::generator::{DensityView, DummyGenerator};
use dummyloc_geo::{BBox, Point};
use dummyloc_mobility::StreetGrid;
use rand::{Rng, RngCore};

/// Per-dummy tour state.
#[derive(Debug, Clone)]
struct TourState {
    /// Remaining polyline corners to visit (front = next corner).
    waypoints: VecDeque<Point>,
    /// Current exact position.
    at: Point,
    /// Distance covered per round.
    stride: f64,
    /// Rounds left dwelling at the current stop.
    dwell_left: u32,
}

/// Dummies touring points of interest on the street network, mimicking
/// the rickshaw workload's full behavioural loop.
#[derive(Debug, Clone)]
pub struct TourDummyGenerator {
    streets: StreetGrid,
    pois: Vec<(u32, u32)>,
    stride_range: (f64, f64),
    dwell_rounds: (u32, u32),
    state: Vec<TourState>,
}

impl TourDummyGenerator {
    /// Creates the generator: dummies tour between `poi_count` random
    /// intersections, covering a per-round distance from `stride_range`
    /// and dwelling `dwell_rounds` at each stop. POIs are placed from
    /// `poi_seed` so the "city" is fixed independently of the dummies.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two POIs, a non-positive or unordered stride
    /// range, or an unordered dwell range.
    pub fn new(
        streets: StreetGrid,
        poi_count: usize,
        stride_range: (f64, f64),
        dwell_rounds: (u32, u32),
        poi_seed: u64,
    ) -> Self {
        assert!(poi_count >= 2, "need at least two POIs to tour between");
        assert!(
            stride_range.0 > 0.0 && stride_range.1 >= stride_range.0,
            "stride range must be positive and ordered"
        );
        assert!(
            dwell_rounds.0 <= dwell_rounds.1,
            "dwell range must be ordered"
        );
        let mut rng = dummyloc_geo::rng::rng_from_seed(poi_seed);
        let mut pois = Vec::with_capacity(poi_count);
        while pois.len() < poi_count {
            let n = streets.random_node(&mut rng);
            if !pois.contains(&n) {
                pois.push(n);
            }
        }
        TourDummyGenerator {
            streets,
            pois,
            stride_range,
            dwell_rounds,
            state: Vec::new(),
        }
    }

    /// A tour generator matched to [`RickshawConfig::nara`]
    /// (24 POIs, 45–120 m per 30 s round, 1–6 round dwells).
    ///
    /// [`RickshawConfig::nara`]: dummyloc_mobility::RickshawConfig::nara
    pub fn nara_matched(streets: StreetGrid, poi_seed: u64) -> Self {
        TourDummyGenerator::new(streets, 24, (45.0, 120.0), (1, 6), poi_seed)
    }

    /// The street network dummies tour on.
    pub fn streets(&self) -> &StreetGrid {
        &self.streets
    }

    /// POI coordinates (for tests and demos).
    pub fn poi_positions(&self) -> Vec<Point> {
        self.pois
            .iter()
            .map(|&n| self.streets.node_pos(n))
            .collect()
    }

    fn sample_stride(&self, rng: &mut dyn RngCore) -> f64 {
        if self.stride_range.0 < self.stride_range.1 {
            rng.gen_range(self.stride_range.0..self.stride_range.1)
        } else {
            self.stride_range.0
        }
    }

    fn sample_dwell(&self, rng: &mut dyn RngCore) -> u32 {
        if self.dwell_rounds.0 < self.dwell_rounds.1 {
            rng.gen_range(self.dwell_rounds.0..=self.dwell_rounds.1)
        } else {
            self.dwell_rounds.0
        }
    }

    /// Queues a route from the node nearest `from` to a random different
    /// POI.
    fn plan_route(&self, rng: &mut dyn RngCore, from: Point) -> VecDeque<Point> {
        let start = self.streets.snap(from);
        let dest = loop {
            let cand = self.pois[rng.gen_range(0..self.pois.len())];
            if cand != start {
                break cand;
            }
        };
        self.streets
            .route(rng, start, dest)
            .into_iter()
            .map(|n| self.streets.node_pos(n))
            .collect()
    }

    fn fresh_state(&self, rng: &mut dyn RngCore, near: Option<Point>) -> TourState {
        let start = match near {
            Some(p) => self.streets.node_pos(self.streets.snap(p)),
            None => {
                let poi = self.pois[rng.gen_range(0..self.pois.len())];
                self.streets.node_pos(poi)
            }
        };
        let stride = self.sample_stride(rng);
        let mut st = TourState {
            waypoints: VecDeque::new(),
            at: start,
            stride,
            dwell_left: 0,
        };
        st.waypoints = self.plan_route(rng, st.at);
        // Drop the leading corner if it is the current position.
        if st.waypoints.front() == Some(&st.at) {
            st.waypoints.pop_front();
        }
        st
    }

    fn advance(&self, st: &mut TourState, rng: &mut dyn RngCore) {
        if st.dwell_left > 0 {
            st.dwell_left -= 1;
            return;
        }
        let mut remaining = st.stride;
        while remaining > 0.0 {
            let Some(&target) = st.waypoints.front() else {
                // Tour leg finished: dwell at the stop, then plan the next.
                st.dwell_left = self.sample_dwell(rng);
                st.stride = self.sample_stride(rng);
                st.waypoints = self.plan_route(rng, st.at);
                if st.waypoints.front() == Some(&st.at) {
                    st.waypoints.pop_front();
                }
                return;
            };
            let dist = st.at.distance(&target);
            if dist > remaining {
                let frac = remaining / dist;
                st.at = st.at.lerp(&target, frac);
                return;
            }
            st.at = target;
            st.waypoints.pop_front();
            remaining -= dist;
        }
    }
}

impl DummyGenerator for TourDummyGenerator {
    fn name(&self) -> &'static str {
        "tour"
    }

    fn area(&self) -> BBox {
        self.streets.area()
    }

    fn init(&mut self, rng: &mut dyn RngCore, _true_pos: Point, count: usize) -> Vec<Point> {
        self.state = (0..count).map(|_| self.fresh_state(rng, None)).collect();
        self.state.iter().map(|s| s.at).collect()
    }

    fn step(
        &mut self,
        rng: &mut dyn RngCore,
        prev: &[Point],
        _density: &dyn DensityView,
    ) -> Vec<Point> {
        if self.state.len() != prev.len() {
            self.state = prev
                .iter()
                .map(|&p| self.fresh_state(rng, Some(p)))
                .collect();
        }
        // Split borrows: advance needs &self (streets/pois) and &mut state.
        let mut states = std::mem::take(&mut self.state);
        for st in &mut states {
            self.advance(st, rng);
        }
        self.state = states;
        self.state.iter().map(|s| s.at).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_core::generator::NoDensity;
    use dummyloc_geo::rng::rng_from_seed;

    fn streets() -> StreetGrid {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)).unwrap();
        StreetGrid::new(area, 100.0)
    }

    fn on_network(streets: &StreetGrid, p: Point) -> bool {
        let sp = streets.spacing();
        let on_x = (p.x / sp - (p.x / sp).round()).abs() < 1e-6;
        let on_y = (p.y / sp - (p.y / sp).round()).abs() < 1e-6;
        on_x || on_y
    }

    #[test]
    fn tours_stay_on_network_and_in_speed() {
        let mut g = TourDummyGenerator::nara_matched(streets(), 1);
        let mut rng = rng_from_seed(2);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 5);
        for _ in 0..400 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (a, b) in prev.iter().zip(&next) {
                assert!(on_network(g.streets(), *b), "{b:?} off network");
                assert!(a.distance(b) <= 120.0 + 1e-6);
            }
            prev = next;
        }
    }

    #[test]
    fn tours_visit_multiple_pois_and_dwell() {
        let mut g = TourDummyGenerator::new(streets(), 10, (80.0, 80.0), (2, 2), 3);
        let pois = g.poi_positions();
        let mut rng = rng_from_seed(4);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 1);
        let mut stops = 0usize;
        let mut stationary = 0usize;
        let mut last_stop: Option<Point> = None;
        for _ in 0..600 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            if prev[0].distance(&next[0]) < 1e-9 {
                stationary += 1;
                let here = next[0];
                if pois.iter().any(|p| p.distance(&here) < 1e-6) && last_stop != Some(here) {
                    stops += 1;
                    last_stop = Some(here);
                }
            }
            prev = next;
        }
        assert!(
            stops >= 3,
            "dummy should complete several tour legs, got {stops}"
        );
        assert!(stationary > 0, "dwell rounds must occur");
    }

    #[test]
    fn straight_runs_dominate_turns() {
        // The raison d'être: per-round heading changes are mostly zero
        // (riding a straight street segment spanning several rounds).
        let mut g = TourDummyGenerator::nara_matched(streets(), 5);
        let mut rng = rng_from_seed(6);
        let mut prev = g.init(&mut rng, Point::ORIGIN, 4);
        let mut straight = 0usize;
        let mut turns = 0usize;
        let mut last_dir: Vec<Option<(f64, f64)>> = vec![None; 4];
        for _ in 0..500 {
            let next = g.step(&mut rng, &prev, &NoDensity);
            for (i, (a, b)) in prev.iter().zip(&next).enumerate() {
                let v = a.to(*b);
                if v.length() < 1e-9 {
                    continue;
                }
                let dir = (v.dx / v.length(), v.dy / v.length());
                if let Some(prev_dir) = last_dir[i] {
                    let dot = dir.0 * prev_dir.0 + dir.1 * prev_dir.1;
                    if dot > 0.99 {
                        straight += 1;
                    } else {
                        turns += 1;
                    }
                }
                last_dir[i] = Some(dir);
            }
            prev = next;
        }
        assert!(
            straight > turns,
            "tour dummies should mostly run straight: {straight} straight vs {turns} turns"
        );
    }

    #[test]
    fn self_heals_on_count_mismatch() {
        let mut g = TourDummyGenerator::nara_matched(streets(), 7);
        let mut rng = rng_from_seed(8);
        let prev = vec![Point::new(151.0, 149.0), Point::new(1000.0, 1000.0)];
        let next = g.step(&mut rng, &prev, &NoDensity);
        assert_eq!(next.len(), 2);
    }

    #[test]
    #[should_panic(expected = "two POIs")]
    fn single_poi_panics() {
        TourDummyGenerator::new(streets(), 1, (50.0, 100.0), (0, 2), 0);
    }
}
