//! Pseudonym rotation and the re-linking attack.
//!
//! The paper assumes pseudonyms sever the link between requests and
//! identity, but a pseudonym that *never changes* accumulates a lifetime
//! trajectory. Beresford & Stajano (the paper's reference \[1\]) proposed
//! changing pseudonyms inside *mix zones*; the temporal analogue is a
//! silent period around each change. This module measures what rotation
//! actually buys: an observer who sees all old segments end and all new
//! segments begin solves the global assignment problem between them — if
//! users barely move while silent, positions re-identify them and
//! rotation bought nothing.

use dummyloc_geo::Point;

use crate::hungarian::min_cost_assignment;
use crate::session::{SegmentStream, SessionOutcome};

/// The observer's best guess linking old segments to new ones: entry `i`
/// is the index of the new segment matched to old segment `i`.
///
/// The cost of pairing old `i` with new `j` is the smallest distance
/// between any position in `i`'s final request and any position in `j`'s
/// first request — the observer need only connect *one* plausible thread.
pub fn relink_assignment(prev: &[SegmentStream], next: &[SegmentStream]) -> Vec<usize> {
    assert_eq!(
        prev.len(),
        next.len(),
        "synchronized rotation: equal segment counts"
    );
    if prev.is_empty() {
        return Vec::new();
    }
    let cost: Vec<Vec<f64>> = prev
        .iter()
        .map(|old| {
            let ends = old
                .requests
                .last()
                .map(|r| r.positions.as_slice())
                .unwrap_or(&[]);
            next.iter()
                .map(|new| {
                    let starts = new
                        .requests
                        .first()
                        .map(|r| r.positions.as_slice())
                        .unwrap_or(&[]);
                    min_pair_distance(ends, starts)
                })
                .collect()
        })
        .collect();
    min_cost_assignment(&cost).0
}

fn min_pair_distance(a: &[Point], b: &[Point]) -> f64 {
    let mut best = f64::MAX / 4.0; // finite sentinel keeps Hungarian happy
    for p in a {
        for q in b {
            best = best.min(p.distance(q));
        }
    }
    best
}

/// Per-boundary re-linking accuracy of a rotated session: the fraction of
/// users whose old segment is matched to their own new segment, averaged
/// over all consecutive segment boundaries. 1.0 = rotation bought
/// nothing; `1/users` = chance.
pub fn relink_rate(outcome: &SessionOutcome) -> f64 {
    let users = outcome.segments.len();
    let seg_count = outcome.segments_per_user();
    if users == 0 || seg_count < 2 {
        return 0.0;
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for boundary in 0..seg_count - 1 {
        let prev: Vec<SegmentStream> = outcome
            .segments
            .iter()
            .map(|s| s[boundary].clone())
            .collect();
        let next: Vec<SegmentStream> = outcome
            .segments
            .iter()
            .map(|s| s[boundary + 1].clone())
            .collect();
        let assignment = relink_assignment(&prev, &next);
        for (i, &j) in assignment.iter().enumerate() {
            total += 1;
            if i == j {
                correct += 1;
            }
        }
    }
    correct as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_core::client::Request;

    fn seg(last_positions: Vec<Point>, first_positions: Vec<Point>) -> SegmentStream {
        SegmentStream {
            requests: vec![
                Request {
                    pseudonym: "a#0".into(),
                    positions: first_positions,
                },
                Request {
                    pseudonym: "a#0".into(),
                    positions: last_positions,
                },
            ],
            final_truth_index: 0,
        }
    }

    #[test]
    fn relink_matches_continuous_users() {
        // Two users far apart; new segments start where old ones ended.
        let prev = vec![
            seg(vec![Point::new(0.0, 0.0)], vec![Point::new(0.0, 5.0)]),
            seg(
                vec![Point::new(900.0, 900.0)],
                vec![Point::new(900.0, 905.0)],
            ),
        ];
        let next = vec![
            seg(vec![Point::new(1.0, 9.0)], vec![Point::new(1.0, 1.0)]),
            seg(
                vec![Point::new(901.0, 909.0)],
                vec![Point::new(901.0, 901.0)],
            ),
        ];
        assert_eq!(relink_assignment(&prev, &next), vec![0, 1]);
        // Swapped next segments get detected and unswapped by cost.
        let swapped = vec![next[1].clone(), next[0].clone()];
        assert_eq!(relink_assignment(&prev, &swapped), vec![1, 0]);
    }

    #[test]
    fn relink_is_fooled_when_everyone_converges() {
        // Both users end and restart at the same plaza: ties; assignment
        // is arbitrary but valid (a permutation).
        let plaza = Point::new(500.0, 500.0);
        let prev = vec![
            seg(vec![plaza], vec![Point::new(0.0, 0.0)]),
            seg(vec![plaza], vec![Point::new(900.0, 900.0)]),
        ];
        let next = vec![
            seg(vec![Point::new(0.0, 0.0)], vec![plaza]),
            seg(vec![Point::new(900.0, 900.0)], vec![plaza]),
        ];
        let a = relink_assignment(&prev, &next);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn empty_inputs() {
        assert!(relink_assignment(&[], &[]).is_empty());
        let out = SessionOutcome { segments: vec![] };
        assert_eq!(relink_rate(&out), 0.0);
    }

    #[test]
    fn relink_rate_counts_identity_matches() {
        // Hand-build an outcome with two users, two segments, perfectly
        // continuous → rate 1.0.
        let mk = |x: f64| {
            vec![
                seg(vec![Point::new(x, 0.0)], vec![Point::new(x, 1.0)]),
                seg(vec![Point::new(x, 3.0)], vec![Point::new(x, 2.0)]),
            ]
        };
        let out = SessionOutcome {
            segments: vec![mk(0.0), mk(800.0)],
        };
        assert_eq!(relink_rate(&out), 1.0);
    }
}
