//! Extensions beyond the ICDE 2005 paper.
//!
//! The paper ends where a deployment would begin: its observer models are
//! informal, its dummies diffuse rather than behave, and its pseudonyms
//! never rotate. This crate supplies the pieces the authors' own
//! follow-up work ("Location Traceability of Users in Location-based
//! Services") points toward:
//!
//! * [`hungarian`] — re-export of `dummyloc_core::hungarian`, the exact
//!   `O(n³)` minimum-cost assignment solver underlying everything below,
//! * [`optimal_tracker`] — the strongest linking observer: per-round
//!   *optimal* (not greedy) matching of candidate positions into chains,
//! * [`entropy`] — graded privacy metrics: the observer's belief
//!   distribution over candidates, its normalized entropy, and the
//!   expected distance error of a Bayesian-ish guesser,
//! * [`street_dummies`] — dummies that walk the same street network as
//!   the real users (the behavioral-realism direction the paper's
//!   conclusion gestures at),
//! * [`tour_dummies`] — the strongest mimicry: dummies running the same
//!   POI-to-POI tour loop as the rickshaw workload itself,
//! * [`map_adversary`] — a map-equipped observer that discards
//!   off-street candidate chains (why street dummies matter),
//! * [`mix_zones`] — pseudonym rotation with silent periods, and the
//!   re-linking attack that measures what rotation actually buys,
//! * [`session`] — a light client-session driver used by the extension
//!   experiments (and handy for custom evaluations),
//! * [`experiments`] — the X1/X2 experiment runners indexed in
//!   `DESIGN.md` §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entropy;
pub mod experiments;
pub mod hungarian;
pub mod map_adversary;
pub mod mix_zones;
pub mod optimal_tracker;
pub mod session;
pub mod street_dummies;
pub mod tour_dummies;

pub use hungarian::min_cost_assignment;
pub use optimal_tracker::OptimalTracker;
pub use street_dummies::StreetDummyGenerator;
