//! Graded privacy metrics: what does the observer *believe*?
//!
//! Identification rate is all-or-nothing; real privacy loss is graded.
//! Here the observer turns chain plausibility scores into a belief
//! distribution over candidates (a softmax over negated scores), and two
//! metrics follow:
//!
//! * [`normalized_entropy`] — 1.0 means the observer learned nothing
//!   beyond "one of k+1"; 0.0 means certainty. This is the
//!   entropy-anonymity measure of Serjantov–Danezis/Díaz et al., applied
//!   to the dummy candidate set.
//! * [`expected_distance_error`] — how far, in metres, the observer's
//!   belief-weighted position estimate is from the truth; the "expected
//!   distance error" measure of the location-privacy literature.

use dummyloc_core::adversary::{Chain, ChainScore};
use dummyloc_core::client::Request;
use dummyloc_geo::Point;

use crate::optimal_tracker::OptimalTracker;

/// The observer's belief over final-round candidates, plus the chains it
/// was derived from.
#[derive(Debug, Clone)]
pub struct Belief {
    /// Linked candidate chains (one per final-round position).
    pub chains: Vec<Chain>,
    /// Belief weight per chain, summing to 1 (empty if no chains).
    pub weights: Vec<f64>,
}

/// Builds the observer's belief over one request stream: chains are
/// linked optimally, scored with `score`, and weighted
/// `∝ exp(−score / temperature)`.
///
/// `temperature` sets how sharply the observer commits to the most
/// plausible chain; it has score units (metres for
/// [`ChainScore::MaxStep`]).
///
/// # Panics
///
/// Panics on a non-positive temperature (an experiment-setup error).
pub fn belief(requests: &[Request], score: ChainScore, temperature: f64) -> Belief {
    assert!(
        temperature.is_finite() && temperature > 0.0,
        "temperature must be positive and finite"
    );
    let chains = OptimalTracker::build_chains(requests);
    if chains.is_empty() {
        return Belief {
            chains,
            weights: Vec::new(),
        };
    }
    let scores: Vec<f64> = chains
        .iter()
        .map(|c| OptimalTracker::chain_score(score, c))
        .collect();
    // Softmax of -score/T, stabilized by the minimum score.
    let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let raw: Vec<f64> = scores
        .iter()
        .map(|s| (-(s - min) / temperature).exp())
        .collect();
    let sum: f64 = raw.iter().sum();
    let weights = raw.into_iter().map(|w| w / sum).collect();
    Belief { chains, weights }
}

impl Belief {
    /// The candidate index the observer considers most likely.
    pub fn top_candidate(&self) -> Option<usize> {
        self.weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .map(|(i, _)| self.chains[i].final_index)
    }

    /// Belief mass on the candidate at `final_index` of the last round.
    pub fn mass_on(&self, final_index: usize) -> f64 {
        self.chains
            .iter()
            .zip(&self.weights)
            .filter(|(c, _)| c.final_index == final_index)
            .map(|(_, w)| w)
            .sum()
    }
}

/// Shannon entropy of the belief, normalized by `ln(candidates)` to
/// `[0, 1]`. Zero or one candidate ⇒ 0 (the observer has nothing to be
/// uncertain about).
pub fn normalized_entropy(belief: &Belief) -> f64 {
    let n = belief.weights.len();
    if n <= 1 {
        return 0.0;
    }
    let h: f64 = belief
        .weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| -w * w.ln())
        .sum();
    h / (n as f64).ln()
}

/// Belief-weighted expected distance (metres) between the observer's
/// candidate positions and the true final position — the graded cousin of
/// identification rate. Zero weights/chains ⇒ 0.
pub fn expected_distance_error(belief: &Belief, truth: Point) -> f64 {
    belief
        .chains
        .iter()
        .zip(&belief.weights)
        .map(|(c, w)| w * c.last.distance(&truth))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(positions: Vec<Point>) -> Request {
        Request {
            pseudonym: "p".into(),
            positions,
        }
    }

    /// Candidate 0 walks smoothly; candidate 1 teleports.
    fn smooth_vs_teleport() -> Vec<Request> {
        (0..10)
            .map(|t| {
                req(vec![
                    Point::new(t as f64 * 2.0, 0.0),
                    Point::new((t * 397 % 1000) as f64, (t * 611 % 1000) as f64),
                ])
            })
            .collect()
    }

    #[test]
    fn weights_are_a_distribution() {
        let b = belief(&smooth_vs_teleport(), ChainScore::MaxStep, 50.0);
        assert_eq!(b.weights.len(), 2);
        let sum: f64 = b.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(b.weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
    }

    #[test]
    fn smooth_chain_gets_the_mass() {
        let b = belief(&smooth_vs_teleport(), ChainScore::MaxStep, 50.0);
        assert_eq!(b.top_candidate(), Some(0));
        assert!(b.mass_on(0) > 0.99, "mass on truth {}", b.mass_on(0));
    }

    #[test]
    fn indistinguishable_chains_have_max_entropy() {
        // Two identical walkers: same scores → uniform belief → entropy 1.
        let reqs: Vec<Request> = (0..8)
            .map(|t| {
                req(vec![
                    Point::new(t as f64 * 2.0, 0.0),
                    Point::new(t as f64 * 2.0, 100.0),
                ])
            })
            .collect();
        let b = belief(&reqs, ChainScore::MaxStep, 10.0);
        assert!((b.weights[0] - 0.5).abs() < 1e-12);
        assert!((normalized_entropy(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_drops_as_temperature_sharpens() {
        let reqs = smooth_vs_teleport();
        let loose = normalized_entropy(&belief(&reqs, ChainScore::MaxStep, 10_000.0));
        let tight = normalized_entropy(&belief(&reqs, ChainScore::MaxStep, 10.0));
        assert!(tight < loose, "tight {tight} vs loose {loose}");
        assert!(loose > 0.9, "huge temperature ≈ uniform, got {loose}");
    }

    #[test]
    fn expected_error_small_when_belief_is_right() {
        let reqs = smooth_vs_teleport();
        let b = belief(&reqs, ChainScore::MaxStep, 50.0);
        let truth = Point::new(18.0, 0.0); // the smooth walker's last position
        let err = expected_distance_error(&b, truth);
        assert!(err < 20.0, "expected error {err}");
        // A wrong truth (the teleporter's spot) yields a large error.
        let wrong = expected_distance_error(&b, Point::new(573.0, 499.0));
        assert!(wrong > err);
    }

    #[test]
    fn degenerate_inputs() {
        let b = belief(&[], ChainScore::MaxStep, 1.0);
        assert!(b.weights.is_empty());
        assert_eq!(normalized_entropy(&b), 0.0);
        assert_eq!(expected_distance_error(&b, Point::ORIGIN), 0.0);
        assert_eq!(b.top_candidate(), None);
        let single = belief(&[req(vec![Point::ORIGIN])], ChainScore::MaxStep, 1.0);
        assert_eq!(normalized_entropy(&single), 0.0);
        assert_eq!(single.top_candidate(), Some(0));
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn zero_temperature_panics() {
        belief(&[], ChainScore::MaxStep, 0.0);
    }
}
