//! The strongest linking observer: optimal, scale-aware matching.
//!
//! The greedy [`ContinuityTracker`](dummyloc_core::adversary::ContinuityTracker)
//! links each chain to its nearest unclaimed candidate, smallest pair
//! first — order-dependent, so a lucky dummy can derail it. The obvious
//! upgrade, minimum-total-distance assignment, turns out to be *worse*
//! against heterogeneous chains: under a sum-of-squared-distances
//! objective a teleporting dummy "deserves" whatever position is nearest
//! to it (its alternatives are all enormous), so the global optimum
//! happily sacrifices the true user's 3-metre edge — we measured a greedy
//! tracker at 100 % and the naive optimal one at 22 % on random-dummy
//! streams.
//!
//! [`OptimalTracker`] therefore normalizes: the cost of extending a chain
//! to a candidate is the distance *divided by the chain's own historical
//! step scale* — a likelihood-ratio linking under a per-chain isotropic
//! motion model — and the Hungarian algorithm finds the exact optimum of
//! that objective. This subsumes greedy's strengths (the slow true chain
//! prices distant candidates at hundreds of "sigmas") while staying
//! order-independent.

use dummyloc_core::adversary::{Adversary, Chain, ChainScore};
use dummyloc_core::client::Request;
use dummyloc_geo::Point;
use rand::RngCore;

use crate::hungarian::min_cost_assignment;

/// Floor on a chain's step scale, in metres: below this, GPS noise
/// dominates and tighter scales would just amplify it.
const MIN_SCALE_M: f64 = 1.0;

/// An adversary linking rounds by optimal scale-normalized assignment,
/// then picking the most motion-plausible chain.
#[derive(Debug, Clone, Copy)]
pub struct OptimalTracker {
    score: ChainScore,
}

impl OptimalTracker {
    /// Creates the tracker with the given chain score.
    pub fn new(score: ChainScore) -> Self {
        OptimalTracker { score }
    }

    /// Builds chains over the stream with per-round optimal matching.
    /// Exposed for the entropy metrics, which weight all chains instead
    /// of picking one.
    pub fn build_chains(requests: &[Request]) -> Vec<Chain> {
        Self::build_chains_with_history(requests).0
    }

    /// Like [`OptimalTracker::build_chains`], also returning, per chain,
    /// the full position sequence it was linked through (used by the
    /// map-equipped adversary to test chains against a street network).
    pub fn build_chains_with_history(requests: &[Request]) -> (Vec<Chain>, Vec<Vec<Point>>) {
        let Some(first) = requests.first() else {
            return (Vec::new(), Vec::new());
        };
        let mut linked: Vec<Linked> = first
            .positions
            .iter()
            .enumerate()
            .map(|(i, &p)| Linked {
                chain: Chain {
                    last: p,
                    final_index: i,
                    steps: Vec::new(),
                },
                history: vec![p],
            })
            .collect();
        for req in &requests[1..] {
            link_round_optimal(&mut linked, &req.positions);
        }
        linked.into_iter().map(|l| (l.chain, l.history)).unzip()
    }

    /// Scores one chain (lower = more plausible); shared with
    /// [`entropy`](crate::entropy).
    pub fn chain_score(score: ChainScore, chain: &Chain) -> f64 {
        match score {
            ChainScore::MaxStep => chain.steps.iter().copied().fold(0.0, f64::max),
            ChainScore::StepVariance => {
                if chain.steps.len() < 2 {
                    return 0.0;
                }
                let n = chain.steps.len() as f64;
                let mean = chain.steps.iter().sum::<f64>() / n;
                chain
                    .steps
                    .iter()
                    .map(|s| (s - mean) * (s - mean))
                    .sum::<f64>()
                    / n
            }
        }
    }
}

impl Adversary for OptimalTracker {
    fn name(&self) -> &'static str {
        match self.score {
            ChainScore::MaxStep => "optimal-maxstep",
            ChainScore::StepVariance => "optimal-variance",
        }
    }

    fn identify(&self, _rng: &mut dyn RngCore, requests: &[Request]) -> Option<usize> {
        let chains = Self::build_chains(requests);
        chains
            .iter()
            .min_by(|a, b| {
                Self::chain_score(self.score, a)
                    .partial_cmp(&Self::chain_score(self.score, b))
                    .expect("scores are finite")
                    .then(a.final_index.cmp(&b.final_index))
            })
            .map(|c| c.final_index)
    }
}

/// A chain's motion scale: its mean step so far, floored at
/// [`MIN_SCALE_M`]. Fresh chains (no history) get scale 1 so that the
/// first round degenerates to plain minimum-distance matching.
fn chain_scale(chain: &Chain) -> f64 {
    if chain.steps.is_empty() {
        return MIN_SCALE_M.max(1.0);
    }
    let mean = chain.steps.iter().sum::<f64>() / chain.steps.len() as f64;
    mean.max(MIN_SCALE_M)
}

/// A chain plus the full position sequence it was linked through.
#[derive(Debug, Clone)]
struct Linked {
    chain: Chain,
    history: Vec<Point>,
}

impl Linked {
    fn fresh(pi: usize, p: Point) -> Self {
        Linked {
            chain: Chain {
                last: p,
                final_index: pi,
                steps: Vec::new(),
            },
            history: vec![p],
        }
    }
}

/// Advances every chain one round via minimum total *scale-normalized*
/// distance. Extra positions start new chains; starved chains (when
/// positions shrink) are dropped, mirroring the greedy linker's policy.
fn link_round_optimal(linked: &mut Vec<Linked>, positions: &[Point]) {
    if positions.is_empty() {
        linked.clear();
        return;
    }
    if linked.is_empty() {
        *linked = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| Linked::fresh(i, p))
            .collect();
        return;
    }
    let scales: Vec<f64> = linked.iter().map(|l| chain_scale(&l.chain)).collect();
    let (assignment, transposed): (Vec<usize>, bool) = if linked.len() <= positions.len() {
        let cost: Vec<Vec<f64>> = linked
            .iter()
            .zip(&scales)
            .map(|(l, &s)| {
                positions
                    .iter()
                    .map(|p| l.chain.last.distance(p) / s)
                    .collect()
            })
            .collect();
        (min_cost_assignment(&cost).0, false)
    } else {
        // More chains than positions: assign each position a chain, drop
        // the rest.
        let cost: Vec<Vec<f64>> = positions
            .iter()
            .map(|p| {
                linked
                    .iter()
                    .zip(&scales)
                    .map(|(l, &s)| l.chain.last.distance(p) / s)
                    .collect()
            })
            .collect();
        (min_cost_assignment(&cost).0, true)
    };

    let mut next: Vec<Linked> = Vec::with_capacity(positions.len());
    let mut pos_taken = vec![false; positions.len()];
    if !transposed {
        for (ci, l) in linked.drain(..).enumerate() {
            let pi = assignment[ci];
            pos_taken[pi] = true;
            next.push(advance(l, pi, positions));
        }
    } else {
        // assignment[pi] = chain index.
        let mut slots: Vec<Option<Linked>> = linked.drain(..).map(Some).collect();
        for (pi, &ci) in assignment.iter().enumerate() {
            let l = slots[ci].take().expect("each chain assigned once");
            pos_taken[pi] = true;
            next.push(advance(l, pi, positions));
        }
    }
    for (pi, &p) in positions.iter().enumerate() {
        if !pos_taken[pi] {
            next.push(Linked::fresh(pi, p));
        }
    }
    *linked = next;
}

fn advance(mut l: Linked, pi: usize, positions: &[Point]) -> Linked {
    l.chain.steps.push(l.chain.last.distance(&positions[pi]));
    l.chain.last = positions[pi];
    l.chain.final_index = pi;
    l.history.push(positions[pi]);
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::rng::rng_from_seed;

    fn req(positions: Vec<Point>) -> Request {
        Request {
            pseudonym: "p".into(),
            positions,
        }
    }

    #[test]
    fn optimal_is_order_independent_where_greedy_is_not() {
        // Chains end at 0 and 10; candidates at 9 and 11. Greedy links the
        // globally smallest pair first (10→9, cost 1) and strands 0 at 11
        // (total 12). The optimal assignment takes 0→9, 10→11 (total 10).
        let reqs = vec![
            req(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]),
            req(vec![Point::new(9.0, 0.0), Point::new(11.0, 0.0)]),
        ];
        let chains = OptimalTracker::build_chains(&reqs);
        let zero_chain = chains.iter().find(|c| c.steps[0] < 10.0).unwrap();
        assert_eq!(zero_chain.last, Point::new(9.0, 0.0));
        assert_eq!(zero_chain.steps, vec![9.0]);
        let ten_chain = chains
            .iter()
            .find(|c| c.last == Point::new(11.0, 0.0))
            .unwrap();
        assert_eq!(ten_chain.steps, vec![1.0]);
    }

    #[test]
    fn scale_normalization_protects_the_slow_chain() {
        // A slow walker (3 m steps) and a teleporter. At round 4 the
        // teleporter lands nearer to the walker's next position than the
        // walker is to anything else — naive min-total-squared matching
        // would hand the walker's position to the teleporter; the
        // scale-normalized cost (hundreds of "sigmas" for the walker to
        // jump, ~1 for the teleporter) keeps the walker's chain intact.
        let reqs = vec![
            req(vec![Point::new(0.0, 0.0), Point::new(500.0, 500.0)]),
            req(vec![Point::new(3.0, 0.0), Point::new(800.0, 100.0)]),
            req(vec![Point::new(6.0, 0.0), Point::new(100.0, 900.0)]),
            // Teleporter lands at (12, 1): 3 m from the walker's (9, 0)…
            req(vec![Point::new(9.0, 0.0), Point::new(12.0, 1.0)]),
            req(vec![Point::new(12.0, 0.0), Point::new(600.0, 300.0)]),
        ];
        let chains = OptimalTracker::build_chains(&reqs);
        let walker = chains
            .iter()
            .find(|c| c.last == Point::new(12.0, 0.0))
            .unwrap();
        assert!(
            walker.steps.iter().all(|&s| s <= 3.0 + 1e-9),
            "walker chain polluted: {:?}",
            walker.steps
        );
    }

    #[test]
    fn identifies_smooth_walker_among_teleporters() {
        let mut reqs = Vec::new();
        for t in 0..12 {
            let smooth = Point::new(t as f64 * 3.0, 50.0);
            let j1 = Point::new((t * 409 % 997) as f64, (t * 641 % 997) as f64);
            let j2 = Point::new((t * 197 % 997) as f64, (t * 839 % 997) as f64);
            reqs.push(req(vec![j1, smooth, j2]));
        }
        let adv = OptimalTracker::new(ChainScore::MaxStep);
        let mut rng = rng_from_seed(1);
        assert_eq!(adv.identify(&mut rng, &reqs), Some(1));
        let adv = OptimalTracker::new(ChainScore::StepVariance);
        assert_eq!(adv.identify(&mut rng, &reqs), Some(1));
    }

    #[test]
    fn handles_varying_position_counts() {
        let reqs = vec![
            req(vec![Point::new(0.0, 0.0)]),
            req(vec![Point::new(1.0, 0.0), Point::new(500.0, 500.0)]),
            req(vec![Point::new(2.0, 0.0)]),
            req(vec![
                Point::new(3.0, 0.0),
                Point::new(400.0, 400.0),
                Point::new(700.0, 1.0),
            ]),
        ];
        let chains = OptimalTracker::build_chains(&reqs);
        assert_eq!(chains.len(), 3);
        for c in &chains {
            assert!(c.final_index < 3);
        }
        let mut rng = rng_from_seed(2);
        let got = OptimalTracker::new(ChainScore::MaxStep).identify(&mut rng, &reqs);
        assert!(got.is_some());
    }

    #[test]
    fn empty_stream_is_none() {
        let mut rng = rng_from_seed(3);
        assert_eq!(
            OptimalTracker::new(ChainScore::MaxStep).identify(&mut rng, &[]),
            None
        );
        assert!(OptimalTracker::build_chains(&[]).is_empty());
    }

    #[test]
    fn never_weaker_than_greedy_on_random_dummy_streams() {
        use dummyloc_core::adversary::ContinuityTracker;
        use dummyloc_core::client::Client;
        use dummyloc_core::generator::{NoDensity, RandomGenerator};
        use dummyloc_geo::BBox;
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        let greedy = ContinuityTracker::new(ChainScore::MaxStep);
        let optimal = OptimalTracker::new(ChainScore::MaxStep);
        let mut greedy_hits = 0;
        let mut optimal_hits = 0;
        let trials = 40;
        let mut rng = rng_from_seed(4);
        for _ in 0..trials {
            let mut client = Client::new("p", RandomGenerator::new(area).unwrap(), 4);
            let mut truth = Point::new(500.0, 500.0);
            let mut rounds = vec![client.begin(&mut rng, truth).unwrap()];
            for _ in 0..12 {
                truth = Point::new(truth.x + 3.0, truth.y);
                rounds.push(client.step(&mut rng, truth, &NoDensity).unwrap());
            }
            let stream: Vec<Request> = rounds.iter().map(|r| r.request.clone()).collect();
            let want = rounds.last().unwrap().truth_index;
            if greedy.identify(&mut rng, &stream) == Some(want) {
                greedy_hits += 1;
            }
            if optimal.identify(&mut rng, &stream) == Some(want) {
                optimal_hits += 1;
            }
        }
        assert!(
            optimal_hits + 3 >= greedy_hits,
            "optimal ({optimal_hits}) should not trail greedy ({greedy_hits}) materially"
        );
        assert!(
            optimal_hits * 100 > trials * 60,
            "optimal hit only {optimal_hits}/{trials}"
        );
    }
}
