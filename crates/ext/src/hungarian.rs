//! Compatibility re-export: the Hungarian solver moved to
//! [`dummyloc_core::hungarian`] so the `dummyloc-attack` subsystem can
//! link candidates without depending on this crate. Existing
//! `dummyloc_ext::hungarian::min_cost_assignment` imports keep working.

pub use dummyloc_core::hungarian::min_cost_assignment;
