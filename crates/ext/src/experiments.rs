//! The extension experiments X1 and X2 of `DESIGN.md` §4.

use dummyloc_core::adversary::{Adversary, ChainScore, ContinuityTracker};
use dummyloc_core::generator::{DummyGenerator, MlnGenerator, MnGenerator, RandomGenerator};
use dummyloc_geo::rng::rng_from_seed;
use dummyloc_geo::Point;
use dummyloc_mobility::StreetGrid;
use dummyloc_sim::experiments::{Experiment, ExperimentReport, Registry};
use dummyloc_sim::report::{fmt, Table};
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::entropy::{belief, expected_distance_error, normalized_entropy};
use crate::map_adversary::MapFilter;
use crate::mix_zones::relink_rate;
use crate::optimal_tracker::OptimalTracker;
use crate::session::{run, Rotation, SessionConfig};
use crate::street_dummies::StreetDummyGenerator;

/// X1 result row: one dummy algorithm under the strongest observers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtTracingRow {
    /// Algorithm label.
    pub algorithm: String,
    /// Greedy max-step tracker identification rate (paper-level observer).
    pub greedy_rate: f64,
    /// Optimal (Hungarian) max-step tracker identification rate.
    pub optimal_rate: f64,
    /// Map-equipped observer identification rate (discards off-street
    /// chains first; the workload is street-bound).
    pub map_rate: f64,
    /// Mean normalized belief entropy (1 = observer learned nothing).
    pub mean_entropy: f64,
    /// Mean expected distance error of the belief-weighted estimate (m).
    pub mean_distance_error: f64,
}

/// The full X1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtTracingResult {
    /// One row per algorithm.
    pub rows: Vec<ExtTracingRow>,
}

/// Runs X1: every dummy algorithm (including street-constrained dummies)
/// against the greedy and optimal trackers, plus graded belief metrics.
pub fn ext_tracing(seed: u64, fleet: &Dataset) -> ExtTracingResult {
    let config = SessionConfig::nara_default(seed);
    let area = config.area;
    let street_spacing = 100.0;

    type Factory = Box<dyn FnMut(usize) -> Box<dyn DummyGenerator>>;
    let algorithms: Vec<(&str, Factory)> = vec![
        (
            "random",
            Box::new(move |_| {
                Box::new(RandomGenerator::new(area).expect("valid area")) as Box<dyn DummyGenerator>
            }),
        ),
        (
            "mn (m=120)",
            Box::new(move |_| {
                Box::new(MnGenerator::new(area, 120.0).expect("valid m")) as Box<dyn DummyGenerator>
            }),
        ),
        (
            "mn (m=60)",
            Box::new(move |_| {
                Box::new(MnGenerator::new(area, 60.0).expect("valid m")) as Box<dyn DummyGenerator>
            }),
        ),
        (
            "mln (m=120)",
            Box::new(move |_| {
                Box::new(MlnGenerator::new(area, 120.0).expect("valid m"))
                    as Box<dyn DummyGenerator>
            }),
        ),
        (
            "street",
            Box::new(move |_| {
                // Rickshaw-matched strides: 1.5–4 m/s over a 30 s round.
                let streets = StreetGrid::new(area, street_spacing);
                Box::new(StreetDummyGenerator::new(streets, (45.0, 120.0)))
                    as Box<dyn DummyGenerator>
            }),
        ),
        (
            "tour",
            Box::new(move |_| {
                Box::new(crate::tour_dummies::TourDummyGenerator::nara_matched(
                    StreetGrid::new(area, street_spacing),
                    0xA11CE,
                )) as Box<dyn DummyGenerator>
            }),
        ),
    ];

    let greedy = ContinuityTracker::new(ChainScore::MaxStep);
    let optimal = OptimalTracker::new(ChainScore::MaxStep);
    // The observer's map matches the rickshaw workload's street network;
    // 5 m tolerance models GPS noise.
    let map = MapFilter::new(StreetGrid::new(area, street_spacing), 5.0);
    let mut rows = Vec::new();
    for (label, mut factory) in algorithms {
        let outcome = run(fleet, &config, &mut *factory);
        let streams = outcome.into_streams();
        let rate = |adv: &dyn Adversary| {
            let mut rng = rng_from_seed(seed);
            dummyloc_core::adversary::identification_rate(adv, &mut rng, &streams)
        };
        let mut entropy_sum = 0.0;
        let mut err_sum = 0.0;
        for (requests, truth_index) in &streams {
            let b = belief(requests, ChainScore::MaxStep, 30.0);
            entropy_sum += normalized_entropy(&b);
            let truth: Point = requests
                .last()
                .map(|r| r.positions[*truth_index])
                .expect("streams are non-empty");
            err_sum += expected_distance_error(&b, truth);
        }
        let n = streams.len() as f64;
        rows.push(ExtTracingRow {
            algorithm: label.to_string(),
            greedy_rate: rate(&greedy),
            optimal_rate: rate(&optimal),
            map_rate: rate(&map),
            mean_entropy: entropy_sum / n,
            mean_distance_error: err_sum / n,
        });
    }
    ExtTracingResult { rows }
}

/// Renders the X1 table.
pub fn render_ext_tracing(result: &ExtTracingResult) -> String {
    let mut table = Table::new(
        "X1 — strongest-observer tracing (3 dummies; chance 0.25)",
        &[
            "algorithm",
            "greedy rate",
            "optimal rate",
            "map rate",
            "belief entropy",
            "E[dist err] (m)",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.algorithm.clone(),
            fmt(r.greedy_rate, 2),
            fmt(r.optimal_rate, 2),
            fmt(r.map_rate, 2),
            fmt(r.mean_entropy, 2),
            fmt(r.mean_distance_error, 0),
        ]);
    }
    table.render()
}

/// X2 result row: one rotation policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixZoneRow {
    /// Silent rounds at each pseudonym change.
    pub silent_rounds: usize,
    /// Dummies per user.
    pub dummies: usize,
    /// Observer's re-linking accuracy across changes (chance = 1/users).
    pub relink_rate: f64,
}

/// The full X2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixZoneResult {
    /// Number of users (fixes the chance level `1/users`).
    pub users: usize,
    /// One row per (silence, dummies) combination.
    pub rows: Vec<MixZoneRow>,
}

/// Runs X2: pseudonym rotation every 10 rounds with varying silent
/// periods and dummy counts; reports the re-linking attack's accuracy.
pub fn mix_zones(seed: u64, fleet: &Dataset) -> MixZoneResult {
    let mut rows = Vec::new();
    for &dummies in &[0usize, 3] {
        for &silent in &[0usize, 1, 2, 4, 8] {
            let mut config = SessionConfig::nara_default(seed);
            config.dummies = dummies;
            config.rotation = Some(Rotation {
                period: 10,
                silent_rounds: silent,
            });
            let area = config.area;
            let outcome = run(fleet, &config, |_| {
                Box::new(MnGenerator::new(area, 120.0).expect("valid m")) as Box<dyn DummyGenerator>
            });
            rows.push(MixZoneRow {
                silent_rounds: silent,
                dummies,
                relink_rate: relink_rate(&outcome),
            });
        }
    }
    MixZoneResult {
        users: fleet.len(),
        rows,
    }
}

/// Renders the X2 table.
pub fn render_mix_zones(result: &MixZoneResult) -> String {
    let mut table = Table::new(
        format!(
            "X2 — pseudonym-change re-linking accuracy ({} users; chance {:.3})",
            result.users,
            1.0 / result.users as f64
        ),
        &["dummies", "silent rounds", "relink rate"],
    );
    for r in &result.rows {
        table.row(&[
            r.dummies.to_string(),
            r.silent_rounds.to_string(),
            fmt(r.relink_rate, 3),
        ]);
    }
    table.render()
}

/// X3 result row: motion-distribution fingerprint of one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealismRow {
    /// "true users" or an algorithm label.
    pub source: String,
    /// Mean per-round step (m).
    pub mean_step: f64,
    /// 95th-percentile step (m).
    pub p95_step: f64,
    /// Mean absolute turn angle (degrees).
    pub mean_turn_deg: f64,
    /// Fraction of rounds with essentially no movement (%).
    pub stationary_pct: f64,
}

/// The full X3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealismResult {
    /// True-user reference first, then one row per algorithm.
    pub rows: Vec<RealismRow>,
}

fn motion_row(source: &str, tracks: &[dummyloc_trajectory::Trajectory]) -> RealismRow {
    use dummyloc_trajectory::stats::{summarize, turn_angles};
    let mut steps = Vec::new();
    let mut turns = Vec::new();
    let mut stationary = 0usize;
    for t in tracks {
        for (_, d) in t.steps() {
            if d < 0.5 {
                stationary += 1;
            }
            steps.push(d);
        }
        turns.extend(turn_angles(t));
    }
    let step_summary = summarize(&steps);
    let turn_summary = summarize(&turns);
    RealismRow {
        source: source.to_string(),
        mean_step: step_summary.mean,
        p95_step: step_summary.p95,
        mean_turn_deg: turn_summary.mean.to_degrees(),
        stationary_pct: if steps.is_empty() {
            0.0
        } else {
            stationary as f64 * 100.0 / steps.len() as f64
        },
    }
}

/// Runs X3: compares the per-round motion distribution (step lengths,
/// turn angles, dwell share) of every dummy algorithm against the true
/// fleet's — the distributional-indistinguishability view of dummy
/// quality that the identification rates only sample indirectly.
pub fn realism(seed: u64, fleet: &Dataset) -> RealismResult {
    use dummyloc_core::generator::{MomentumGenerator, NoDensity};
    use dummyloc_geo::rng::rng_from_seed;
    use dummyloc_trajectory::TrajectoryBuilder;

    let config = SessionConfig::nara_default(seed);
    let area = config.area;
    let tick = config.tick;
    let (start, end) = fleet
        .common_time_range()
        .expect("workload has a common window");
    let rounds = ((end - start) / tick).floor() as usize + 1;

    // Reference: the real fleet sampled at the service cadence.
    let reference: Vec<dummyloc_trajectory::Trajectory> = fleet
        .tracks()
        .iter()
        .map(|t| t.resample(tick).expect("tick is positive"))
        .collect();
    let mut rows = vec![motion_row("true users", &reference)];

    type Factory = Box<dyn FnMut() -> Box<dyn DummyGenerator>>;
    let algorithms: Vec<(&str, Factory)> = vec![
        (
            "random",
            Box::new(move || Box::new(RandomGenerator::new(area).expect("valid area")) as _),
        ),
        (
            "mn (m=120)",
            Box::new(move || Box::new(MnGenerator::new(area, 120.0).expect("valid m")) as _),
        ),
        (
            "mn (m=60)",
            Box::new(move || Box::new(MnGenerator::new(area, 60.0).expect("valid m")) as _),
        ),
        (
            "momentum",
            Box::new(move || {
                Box::new(MomentumGenerator::new(area, 90.0, 0.8).expect("valid params")) as _
            }),
        ),
        (
            "street",
            Box::new(move || {
                Box::new(StreetDummyGenerator::new(
                    StreetGrid::new(area, 100.0),
                    (45.0, 120.0),
                )) as _
            }),
        ),
        (
            "street+dwell",
            Box::new(move || {
                Box::new(
                    StreetDummyGenerator::new(StreetGrid::new(area, 100.0), (45.0, 120.0))
                        .with_dwell(crate::street_dummies::DwellBehavior {
                            prob: 0.08,
                            rounds: (1, 5),
                        }),
                ) as _
            }),
        ),
        (
            "tour",
            Box::new(move || {
                Box::new(crate::tour_dummies::TourDummyGenerator::nara_matched(
                    StreetGrid::new(area, 100.0),
                    0xA11CE,
                )) as _
            }),
        ),
    ];

    for (label, mut factory) in algorithms {
        // One generator instance driving `fleet.len()` dummies through the
        // same number of rounds as a session.
        let mut generator = factory();
        let mut rng = rng_from_seed(seed ^ 0xD157);
        let mut positions = generator.init(&mut rng, Point::new(0.0, 0.0), fleet.len());
        let mut builders: Vec<TrajectoryBuilder> = (0..fleet.len())
            .map(|i| TrajectoryBuilder::with_capacity(format!("d{i}"), rounds))
            .collect();
        for (b, p) in builders.iter_mut().zip(&positions) {
            b.push(0.0, *p);
        }
        for k in 1..rounds {
            positions = generator.step(&mut rng, &positions, &NoDensity);
            for (b, p) in builders.iter_mut().zip(&positions) {
                b.push(k as f64 * tick, *p);
            }
        }
        let tracks: Vec<dummyloc_trajectory::Trajectory> = builders
            .into_iter()
            .map(|b| b.build().expect("monotone round times"))
            .collect();
        rows.push(motion_row(label, &tracks));
    }
    RealismResult { rows }
}

/// Renders the X3 table.
pub fn render_realism(result: &RealismResult) -> String {
    let mut table = Table::new(
        "X3 — motion-distribution realism (per 30 s service round)",
        &[
            "source",
            "mean step (m)",
            "p95 step (m)",
            "mean turn (deg)",
            "stationary (%)",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.source.clone(),
            fmt(r.mean_step, 1),
            fmt(r.p95_step, 1),
            fmt(r.mean_turn_deg, 1),
            fmt(r.stationary_pct, 1),
        ]);
    }
    table.render()
}

/// X4 result row: one adoption level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptionRow {
    /// Fraction of users generating dummies.
    pub adoption: f64,
    /// Mean global ubiquity `F` over the run.
    pub mean_f: f64,
    /// Optimal-tracker identification rate over *protected* users
    /// (`NaN`-free: 0 when there are none).
    pub protected_rate: f64,
    /// Identification rate over *unprotected* users (trivially 1.0 — one
    /// candidate per round — reported to make the asymmetry explicit).
    pub unprotected_rate: f64,
}

/// The full X4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptionResult {
    /// One row per adoption level.
    pub rows: Vec<AdoptionRow>,
}

/// Runs X4: sweeps the fraction of users generating dummies. Stream-level
/// anonymity is a *private* good (only adopters get it), but ubiquity `F`
/// is a *public* one — every dummy on the map raises it for everyone,
/// which matters because `F` is what makes region-level information
/// worthless to the observer.
pub fn adoption(seed: u64, fleet: &Dataset) -> AdoptionResult {
    use dummyloc_core::metrics::ubiquity_f;
    use dummyloc_core::population::PopulationGrid;
    use dummyloc_geo::Grid;

    let mut rows = Vec::new();
    for &adoption in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut config = SessionConfig::nara_default(seed);
        config.adoption = adoption;
        let area = config.area;
        let outcome = run(fleet, &config, |_| {
            Box::new(MnGenerator::new(area, 120.0).expect("valid m")) as Box<dyn DummyGenerator>
        });
        let adopters = (adoption * fleet.len() as f64).round() as usize;
        let streams = outcome.into_streams();

        // Global F, reconstructed from the emitted streams per round.
        let grid = Grid::square(area, config.grid_size).expect("valid grid");
        let rounds = streams[0].0.len();
        let mut f_sum = 0.0;
        for k in 0..rounds {
            let positions = streams
                .iter()
                .flat_map(|(reqs, _)| reqs[k].positions.iter().copied());
            let pop = PopulationGrid::from_positions(&grid, positions)
                .expect("positions stay in the area");
            f_sum += ubiquity_f(&pop);
        }

        let tracker = OptimalTracker::new(ChainScore::MaxStep);
        let rate_over = |range: std::ops::Range<usize>| -> f64 {
            if range.is_empty() {
                return 0.0;
            }
            let subset: Vec<_> = streams[range.clone()].to_vec();
            let mut rng = rng_from_seed(seed);
            dummyloc_core::adversary::identification_rate(&tracker, &mut rng, &subset)
        };
        rows.push(AdoptionRow {
            adoption,
            mean_f: f_sum / rounds as f64,
            protected_rate: rate_over(0..adopters),
            unprotected_rate: rate_over(adopters..fleet.len()),
        });
    }
    AdoptionResult { rows }
}

/// Renders the X4 table.
pub fn render_adoption(result: &AdoptionResult) -> String {
    let mut table = Table::new(
        "X4 — partial adoption (MN, m=120, 3 dummies for adopters)",
        &[
            "adoption (%)",
            "global F (%)",
            "tracker rate (adopters)",
            "tracker rate (others)",
        ],
    );
    for r in &result.rows {
        table.row(&[
            fmt(r.adoption * 100.0, 0),
            fmt(r.mean_f * 100.0, 1),
            fmt(r.protected_rate, 2),
            fmt(r.unprotected_rate, 2),
        ]);
    }
    table.render()
}

struct ExtTracingExperiment;

impl Experiment for ExtTracingExperiment {
    fn name(&self) -> &'static str {
        "ext-tracing"
    }
    fn description(&self) -> &'static str {
        "X1 — strongest-observer tracing: greedy vs optimal linking + belief metrics"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> dummyloc_sim::Result<ExperimentReport> {
        let r = ext_tracing(seed, fleet);
        ExperimentReport::new(render_ext_tracing(&r), &r)
    }
}

struct MixZonesExperiment;

impl Experiment for MixZonesExperiment {
    fn name(&self) -> &'static str {
        "mix-zones"
    }
    fn description(&self) -> &'static str {
        "X2 — pseudonym rotation + silent rounds vs re-linking adversaries"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> dummyloc_sim::Result<ExperimentReport> {
        let r = mix_zones(seed, fleet);
        ExperimentReport::new(render_mix_zones(&r), &r)
    }
}

struct RealismExperiment;

impl Experiment for RealismExperiment {
    fn name(&self) -> &'static str {
        "realism"
    }
    fn description(&self) -> &'static str {
        "X3 — street-constrained dummies vs a map-equipped observer"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> dummyloc_sim::Result<ExperimentReport> {
        let r = realism(seed, fleet);
        ExperimentReport::new(render_realism(&r), &r)
    }
}

struct AdoptionExperiment;

impl Experiment for AdoptionExperiment {
    fn name(&self) -> &'static str {
        "adoption"
    }
    fn description(&self) -> &'static str {
        "X4 — partial adoption: privacy of adopters among non-adopters"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> dummyloc_sim::Result<ExperimentReport> {
        let r = adoption(seed, fleet);
        ExperimentReport::new(render_adoption(&r), &r)
    }
}

/// Adds the four extension experiments (X1–X4) to `registry`.
pub fn register_all(registry: &mut Registry) {
    registry.register(Box::new(ExtTracingExperiment));
    registry.register(Box::new(MixZonesExperiment));
    registry.register(Box::new(RealismExperiment));
    registry.register(Box::new(AdoptionExperiment));
}

/// The full experiment registry: the paper's nine artifacts, the four
/// extensions, and the four adversary (`attack-*`) sweeps — what the CLI
/// and the bench binaries resolve names against.
pub fn registry_with_extensions() -> Registry {
    let mut registry = Registry::builtin();
    register_all(&mut registry);
    dummyloc_attack::experiments::register_all(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_sim::workload;

    #[test]
    fn full_registry_has_seventeen_entries_in_order() {
        let r = registry_with_extensions();
        assert_eq!(r.len(), 17);
        let names = r.names();
        assert_eq!(names[..9], Registry::builtin().names()[..]);
        assert_eq!(
            &names[9..13],
            &["ext-tracing", "mix-zones", "realism", "adoption"]
        );
        assert_eq!(
            &names[13..],
            &["attack-random", "attack-mn", "attack-mln", "attack-linkage"]
        );
        // Registering twice must not duplicate entries.
        let mut again = registry_with_extensions();
        register_all(&mut again);
        dummyloc_attack::experiments::register_all(&mut again);
        assert_eq!(again.len(), 17);
    }

    fn small_fleet() -> Dataset {
        workload::nara_fleet_sized(8, 600.0, 13)
    }

    #[test]
    fn ext_tracing_covers_all_algorithms() {
        let r = ext_tracing(1, &small_fleet());
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.greedy_rate));
            assert!((0.0..=1.0).contains(&row.optimal_rate));
            assert!((0.0..=1.0).contains(&row.map_rate));
            assert!((0.0..=1.0).contains(&row.mean_entropy));
            assert!(row.mean_distance_error >= 0.0);
        }
        let s = render_ext_tracing(&r);
        assert!(s.contains("street"));
        assert!(s.contains("optimal rate"));
    }

    #[test]
    fn street_dummies_confuse_observers_at_least_as_well_as_matched_mn() {
        let r = ext_tracing(2, &small_fleet());
        let row = |name: &str| r.rows.iter().find(|x| x.algorithm == name).unwrap();
        let random = row("random");
        let street = row("street");
        // Street dummies must leave the observer materially more
        // uncertain than random dummies.
        assert!(street.mean_entropy > random.mean_entropy);
    }

    #[test]
    fn realism_reference_row_comes_first() {
        let fleet = workload::nara_fleet_sized(6, 600.0, 15);
        let r = realism(1, &fleet);
        assert_eq!(r.rows.len(), 8);
        assert_eq!(r.rows[0].source, "true users");
        for row in &r.rows {
            assert!(row.mean_step >= 0.0);
            assert!((0.0..=180.0).contains(&row.mean_turn_deg));
            assert!((0.0..=100.0).contains(&row.stationary_pct));
        }
        let s = render_realism(&r);
        assert!(s.contains("true users"));
        assert!(s.contains("momentum"));
    }

    #[test]
    fn momentum_turns_less_than_mn() {
        let fleet = workload::nara_fleet_sized(8, 900.0, 16);
        let r = realism(2, &fleet);
        let row = |name: &str| r.rows.iter().find(|x| x.source == name).unwrap();
        assert!(
            row("momentum").mean_turn_deg < row("mn (m=120)").mean_turn_deg,
            "momentum {} vs mn {}",
            row("momentum").mean_turn_deg,
            row("mn (m=120)").mean_turn_deg
        );
        // True users dwell sometimes; random dummies never do.
        assert!(row("true users").stationary_pct > row("random").stationary_pct);
        // The dwell extension closes the stationarity gap plain street
        // dummies leave open.
        assert!(row("street+dwell").stationary_pct > row("street").stationary_pct + 3.0);
    }

    #[test]
    fn adoption_sweep_shows_public_and_private_goods() {
        let fleet = workload::nara_fleet_sized(8, 600.0, 17);
        let r = adoption(1, &fleet);
        assert_eq!(r.rows.len(), 5);
        // F grows monotonically (within noise) with adoption.
        assert!(r.rows[4].mean_f > r.rows[0].mean_f + 0.1);
        // Unprotected users are always trivially identified.
        for row in &r.rows[..4] {
            assert_eq!(row.unprotected_rate, 1.0, "{row:?}");
        }
        // Zero-adoption has no adopters to rate.
        assert_eq!(r.rows[0].protected_rate, 0.0);
        let s = render_adoption(&r);
        assert!(s.contains("adoption"));
    }
    #[test]
    fn mix_zones_silence_reduces_relinking() {
        let r = mix_zones(3, &small_fleet());
        assert_eq!(r.rows.len(), 10);
        let rate = |dummies: usize, silent: usize| {
            r.rows
                .iter()
                .find(|x| x.dummies == dummies && x.silent_rounds == silent)
                .unwrap()
                .relink_rate
        };
        // Immediate re-linking with no silence is near-perfect.
        assert!(rate(0, 0) > 0.9, "no-silence relink {}", rate(0, 0));
        // Long silence must strictly help.
        assert!(rate(0, 8) < rate(0, 0));
        let s = render_mix_zones(&r);
        assert!(s.contains("relink rate"));
    }
}
