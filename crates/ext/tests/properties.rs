//! Property-based tests for the extension crate.

use dummyloc_core::adversary::ChainScore;
use dummyloc_core::client::Request;
use dummyloc_ext::entropy::{belief, expected_distance_error, normalized_entropy};
use dummyloc_ext::hungarian::min_cost_assignment;
use dummyloc_ext::optimal_tracker::OptimalTracker;
use dummyloc_geo::Point;
use proptest::prelude::*;

fn arb_cost(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1000.0f64, cols), rows)
}

fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
    // `rounds` requests of `k` positions each.
    (1usize..8, 1usize..15).prop_flat_map(|(k, rounds)| {
        prop::collection::vec(
            prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), k),
            rounds,
        )
        .prop_map(|rows| {
            rows.into_iter()
                .map(|row| Request {
                    pseudonym: "p".into(),
                    positions: row.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
                })
                .collect()
        })
    })
}

proptest! {
    #[test]
    fn hungarian_never_beats_itself_under_row_permutation(
        cost in (1usize..6, 1usize..6).prop_flat_map(|(n, extra)| arb_cost(n, n + extra)),
    ) {
        // Optimal total is invariant under permuting the rows.
        let (_, total) = min_cost_assignment(&cost);
        let mut reversed = cost.clone();
        reversed.reverse();
        let (_, total_rev) = min_cost_assignment(&reversed);
        prop_assert!((total - total_rev).abs() < 1e-6);
    }

    #[test]
    fn hungarian_total_is_a_lower_bound_of_greedy(
        cost in (1usize..6, 0usize..4).prop_flat_map(|(n, extra)| arb_cost(n, n + extra)),
    ) {
        let (assignment, total) = min_cost_assignment(&cost);
        // Greedy row-by-row assignment can never be cheaper.
        let mut taken = vec![false; cost[0].len()];
        let mut greedy_total = 0.0;
        for row in &cost {
            let (j, c) = row
                .iter()
                .enumerate()
                .filter(|(j, _)| !taken[*j])
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap();
            taken[j] = true;
            greedy_total += *c;
        }
        prop_assert!(total <= greedy_total + 1e-9);
        // And the assignment is a valid injection.
        let mut cols = assignment.clone();
        cols.sort_unstable();
        cols.dedup();
        prop_assert_eq!(cols.len(), cost.len());
    }

    #[test]
    fn chains_partition_every_round(requests in arb_requests()) {
        let chains = OptimalTracker::build_chains(&requests);
        let k = requests[0].positions.len();
        prop_assert_eq!(chains.len(), k);
        // Final indexes are a permutation of the final round's slots.
        let mut finals: Vec<usize> = chains.iter().map(|c| c.final_index).collect();
        finals.sort_unstable();
        prop_assert_eq!(finals, (0..k).collect::<Vec<_>>());
        // Step counts equal rounds - 1 for every chain.
        for c in &chains {
            prop_assert_eq!(c.steps.len(), requests.len() - 1);
        }
    }

    #[test]
    fn chain_histories_are_consistent(requests in arb_requests()) {
        let (chains, histories) = OptimalTracker::build_chains_with_history(&requests);
        prop_assert_eq!(chains.len(), histories.len());
        for (c, h) in chains.iter().zip(&histories) {
            prop_assert_eq!(h.len(), requests.len());
            prop_assert_eq!(*h.last().unwrap(), c.last);
            // Steps match consecutive history distances.
            for (step, w) in c.steps.iter().zip(h.windows(2)) {
                prop_assert!((step - w[0].distance(&w[1])).abs() < 1e-9);
            }
            // Every history entry appears in its round's request.
            for (round, p) in h.iter().enumerate() {
                prop_assert!(requests[round].positions.contains(p));
            }
        }
    }

    #[test]
    fn beliefs_are_distributions_with_bounded_entropy(
        requests in arb_requests(),
        temp in 1.0..1000.0f64,
    ) {
        let b = belief(&requests, ChainScore::MaxStep, temp);
        let sum: f64 = b.weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let h = normalized_entropy(&b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        // Expected error is bounded by the farthest candidate distance.
        let truth = requests.last().unwrap().positions[0];
        let err = expected_distance_error(&b, truth);
        let max_d = b
            .chains
            .iter()
            .map(|c| c.last.distance(&truth))
            .fold(0.0f64, f64::max);
        prop_assert!(err <= max_d + 1e-9);
        prop_assert!(err >= 0.0);
    }

    #[test]
    fn entropy_monotone_in_temperature(requests in arb_requests()) {
        let cool = normalized_entropy(&belief(&requests, ChainScore::MaxStep, 5.0));
        let warm = normalized_entropy(&belief(&requests, ChainScore::MaxStep, 500.0));
        prop_assert!(warm + 1e-9 >= cool, "warm {warm} < cool {cool}");
    }
}
