//! The `dummyloc` command-line tool.
//!
//! ```text
//! dummyloc workload  --count 39 --duration 3600 --seed 42 --out fleet.csv
//! dummyloc simulate  --workload fleet.csv --grid 12 --dummies 3 \
//!                    --generator mn --m 120 --heatmap \
//!                    [--checkpoint DIR --checkpoint-every N] [--resume]
//! dummyloc experiments list [--names]
//! dummyloc experiments run fig7 [--seed 42] [--quick] [--json out.json] \
//!                    [--checkpoint DIR] [--resume]
//! dummyloc render    --workload fleet.csv --out tracks.svg
//! dummyloc serve     --addr 127.0.0.1:7878 --workers 4 --pois 200 \
//!                    [--proto v4|v3] [--max-connections N] \
//!                    [--idle-timeout-ms MS] \
//!                    [--deadline-ms MS] [--fault-drop P] [--fault-delay P] \
//!                    [--no-admission] [--codel-target-ms MS] \
//!                    [--worker-delay-ms MS] \
//!                    [--drain-file PATH --drain-timeout-ms MS] \
//!                    [--wal FILE --wal-fsync always|every-N|os] \
//!                    [--store DIR --store-flush-bytes N \
//!                     --store-compact-tiers N] ...
//! dummyloc loadgen   --addr 127.0.0.1:7878 --users 8 --rounds 20 --seed 1 \
//!                    [--proto v4|v3] [--batch N] [--retries N] \
//!                    [--deadline-ms MS] [--rate RPS] [--hedge] \
//!                    [--breaker-threshold N --breaker-open-ms MS]
//! dummyloc metrics   127.0.0.1:7878 [--json]
//! dummyloc store     stats|digests|compact <dir> [--json]
//! dummyloc store     export <dir> --out FILE [--chunk N]
//! dummyloc store     import <dir> (--in FILE | --wal FILE)
//! dummyloc attack    <dir> [--json out.json] [--grid 24] [--tick 30] \
//!                    [--max-speed 7]
//! ```
//!
//! The global `--telemetry <dir>` flag (usable with simulate, experiment,
//! loadgen and timed serve) writes a run manifest + event stream into the
//! directory. The global `--threads <n>` flag sets the worker count for
//! every parallel code path (simulation engine, experiment sweeps);
//! results are byte-identical at any thread count, and `--threads 1`
//! runs the serial engine outright.
//!
//! The library half holds all the logic so it is testable; `main.rs` is a
//! two-line wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use dummyloc_sim::checkpoint::workload_digest;
use dummyloc_sim::engine::{GeneratorKind, SimConfig};
use dummyloc_sim::experiments::ExperimentReport;
use dummyloc_sim::viz::{ascii_heatmap, user_color, SvgScene};
use dummyloc_sim::workload;
use dummyloc_sim::{CheckpointSpec, ParallelEngine, SimCheckpoint};
use dummyloc_telemetry::{render_text, RunManifest, Telemetry};
use dummyloc_trajectory::{io as tio, Dataset};

/// CLI errors: either a usage problem (exit code 2) or a runtime failure
/// (exit code 1).
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; the string is the message shown with usage help.
    Usage(String),
    /// The command itself failed.
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

fn runtime(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

/// Top-level usage text.
pub const USAGE: &str = "\
dummyloc — dummy-based location privacy toolkit

commands:
  workload     generate a synthetic workload and write it as CSV
  simulate     run one simulation over a workload and report the metrics
               (--checkpoint <dir> --checkpoint-every <n> suspends state
               periodically; --resume continues from the last checkpoint,
               byte-identical to an uninterrupted run)
  experiments  list the experiment registry, run one entry by name, or
               run every entry (`experiments list [--names]`,
               `experiments run <name>`, `experiments run-all`; with
               --checkpoint <dir>, finished reports are cached and
               --resume skips re-running them)
  experiment   alias for `experiments run <name>`
  render       draw a workload's trajectories as SVG
  serve        run the online LBS query service over TCP (speaks both
               protocol v4 binary frames and v3 JSON on one port;
               --proto v3 pins JSON-only; supports --max-connections,
               --idle-timeout-ms, --deadline-ms,
               seeded --fault-* injection knobs, a crash-safe
               observer log via --wal <file> --wal-fsync <policy>, and
               a durable segment store via --store <dir>
               [--store-flush-bytes <n>] that keeps cold-start recovery
               fast by replaying only the WAL tail; a background
               size-tiered compactor folds same-sized segments together,
               --store-compact-tiers <n> sets the per-tier trigger,
               0 disables; overload knobs: deadline-aware admission is
               on by default (--no-admission turns it off),
               --codel-target-ms <ms> sheds queued jobs older than the
               sojourn target, --worker-delay-ms <ms> throttles each
               worker per job (a known small capacity for overload
               drills), and touching the --drain-file <path>
               drains gracefully — stop accepting, answer in-flight
               work within --drain-timeout-ms, flush WAL/store — then
               prints the final stats JSON and exits)
  loadgen      drive a running server with concurrent simulated users
               (--proto v4|v3 selects the wire protocol, --batch <n>
               bundles n rounds per request frame; retries with
               backoff: --retries, --retry-base-ms, ...; --rate <rps>
               switches to an open-loop paced offered load whose
               latency is measured from scheduled send times;
               --breaker-threshold <n> --breaker-open-ms <ms> arm the
               per-user circuit breaker, --hedge re-sends a read once
               its first attempt passes the observed p99)
  metrics      scrape a running server's telemetry registry
               (`metrics <addr> [--json]`)
  manifest     work with telemetry run manifests
               (`manifest scrub <file> [--out <file>]` removes every
               wall-clock- and thread-count-dependent field)
  store        inspect or maintain a durable observer store offline
               (`store stats <dir> [--json]`, `store digests <dir>`,
               `store compact <dir>`, `store export <dir> --out <file>`,
               `store import <dir> --in <file> | --wal <file>`)
  attack       run the adversary pipeline (consistency filters + Viterbi
               decoding) over every pseudonym in a durable observer
               store (`attack <dir> [--json <file>] [--grid <n>]
               [--tick <s>] [--max-speed <m/s>]`); streams the store,
               reports the guessed true position per pseudonym

global flags:
  --telemetry <dir>   write a run manifest (seed, config digest, git rev,
                      throughput, metric snapshot) plus a JSONL event
                      stream into <dir>; applies to simulate, experiment,
                      loadgen and timed serve runs (`none` disables)
  --threads <n>       worker threads for the parallel simulation engine
                      and experiment sweeps (default: available cores;
                      0 restores that default). Output is byte-identical
                      at any thread count; 1 runs fully serial

run `dummyloc <command> --help` for the command's flags";

/// Parsed key-value flags of one command invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `--key value` pairs and `--switch`es (a `--key` followed by
    /// another `--…` or nothing is a switch).
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument '{arg}'")));
            };
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.values.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.switches.push(key.to_string());
                i += 1;
            }
        }
        Ok(flags)
    }

    /// String flag with a default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<String, CliError> {
        self.values
            .get(key)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// Numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("flag --{key} got invalid value '{v}'"))),
        }
    }

    /// Whether a boolean switch is present.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Executes a full command line (without the program name); returns the
/// text to print.
pub fn run(args: &[String]) -> Result<String, CliError> {
    // The global --telemetry and --threads flags are stripped before
    // dispatch so every command's own flag parsing stays oblivious to
    // them.
    let (args, telemetry, threads) = extract_globals(args)?;
    let telemetry = telemetry.as_deref();
    if let Some(n) = threads {
        dummyloc_core::pool::set_default_threads(n);
    }
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    match command.as_str() {
        "workload" => cmd_workload(&Flags::parse(rest)?),
        "simulate" => cmd_simulate(&Flags::parse(rest)?, telemetry),
        "experiment" => {
            let Some((name, rest)) = rest.split_first() else {
                return Err(CliError::Usage("experiment needs a name".into()));
            };
            cmd_experiment(name, &Flags::parse(rest)?, telemetry)
        }
        "experiments" => {
            let Some((sub, rest)) = rest.split_first() else {
                return Err(CliError::Usage(
                    "experiments needs a subcommand (list | run)".into(),
                ));
            };
            match sub.as_str() {
                "list" => cmd_experiments_list(&Flags::parse(rest)?),
                "run" => {
                    let Some((name, rest)) = rest.split_first() else {
                        return Err(CliError::Usage("experiments run needs a name".into()));
                    };
                    cmd_experiment(name, &Flags::parse(rest)?, telemetry)
                }
                "run-all" => cmd_experiments_run_all(&Flags::parse(rest)?, telemetry),
                other => Err(CliError::Usage(format!(
                    "unknown experiments subcommand '{other}' (list | run | run-all)"
                ))),
            }
        }
        "render" => cmd_render(&Flags::parse(rest)?),
        "serve" => cmd_serve(&Flags::parse(rest)?, telemetry),
        "loadgen" => cmd_loadgen(&Flags::parse(rest)?, telemetry),
        "metrics" => {
            let Some((addr, rest)) = rest.split_first() else {
                return Err(CliError::Usage(
                    "metrics needs a server address (host:port)".into(),
                ));
            };
            cmd_metrics(addr, &Flags::parse(rest)?)
        }
        "manifest" => {
            let Some((sub, rest)) = rest.split_first() else {
                return Err(CliError::Usage(
                    "manifest needs a subcommand (scrub)".into(),
                ));
            };
            match sub.as_str() {
                "scrub" => {
                    let Some((path, rest)) = rest.split_first() else {
                        return Err(CliError::Usage("manifest scrub needs a file path".into()));
                    };
                    cmd_manifest_scrub(path, &Flags::parse(rest)?)
                }
                other => Err(CliError::Usage(format!(
                    "unknown manifest subcommand '{other}' (scrub)"
                ))),
            }
        }
        "store" => {
            let Some((sub, rest)) = rest.split_first() else {
                return Err(CliError::Usage(
                    "store needs a subcommand (stats | digests | compact | export | import)".into(),
                ));
            };
            let Some((dir, rest)) = rest.split_first() else {
                return Err(CliError::Usage(format!(
                    "store {sub} needs a store directory"
                )));
            };
            if dir.starts_with("--") {
                return Err(CliError::Usage(format!(
                    "store {sub} needs the store directory before any flags"
                )));
            }
            cmd_store(sub, dir, &Flags::parse(rest)?)
        }
        "attack" => {
            let Some((dir, rest)) = rest.split_first() else {
                return Err(CliError::Usage("attack needs a store directory".into()));
            };
            if dir.starts_with("--") {
                return Err(CliError::Usage(
                    "attack needs the store directory before any flags".into(),
                ));
            }
            cmd_attack(dir, &Flags::parse(rest)?, telemetry)
        }
        "--help" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

/// Splits the global `--telemetry <dir>` and `--threads <n>` flags out of
/// the argument list.
#[allow(clippy::type_complexity)]
fn extract_globals(
    args: &[String],
) -> Result<(Vec<String>, Option<PathBuf>, Option<usize>), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut dir = None;
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--telemetry" {
            let Some(value) = args.get(i + 1).filter(|v| !v.starts_with("--")) else {
                return Err(CliError::Usage("--telemetry needs a directory path".into()));
            };
            // `--telemetry none` explicitly disables the manifest, same
            // as the bench binaries' flag.
            dir = (value != "none").then(|| PathBuf::from(value));
            i += 2;
        } else if args[i] == "--threads" {
            let Some(value) = args.get(i + 1).filter(|v| !v.starts_with("--")) else {
                return Err(CliError::Usage("--threads needs a worker count".into()));
            };
            threads = Some(value.parse().map_err(|_| {
                CliError::Usage(format!("flag --threads got invalid value '{value}'"))
            })?);
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((rest, dir, threads))
}

fn cmd_workload(flags: &Flags) -> Result<String, CliError> {
    let count: usize = flags.num("count", 39)?;
    let duration: f64 = flags.num("duration", 3600.0)?;
    let seed: u64 = flags.num("seed", 42)?;
    let out = PathBuf::from(flags.require("out")?);
    let model = flags.get("model", "rickshaw");
    let fleet = match model.as_str() {
        "rickshaw" => workload::nara_fleet_sized(count, duration, seed),
        "waypoint" => workload::pedestrian_crowd(count, duration, seed),
        other => {
            return Err(CliError::Usage(format!(
                "unknown model '{other}' (rickshaw | waypoint)"
            )))
        }
    };
    write_dataset(&fleet, &out)?;
    let stats = dummyloc_trajectory::stats::dataset_stats(&fleet);
    Ok(format!(
        "wrote {} tracks ({} samples, mean speed {:.2} m/s) to {}",
        stats.tracks,
        stats.samples,
        stats.mean_speed,
        out.display()
    ))
}

fn cmd_simulate(flags: &Flags, telemetry: Option<&Path>) -> Result<String, CliError> {
    let fleet = load_workload(flags)?;
    let seed: u64 = flags.num("seed", 42)?;
    let generator = parse_generator(flags)?;
    let config = SimConfig {
        grid_size: flags.num("grid", 12)?,
        dummy_count: flags.num("dummies", 3)?,
        generator,
        tick: flags.num("tick", 30.0)?,
        quantize: flags.has("quantize"),
        ..SimConfig::nara_default(seed)
    };
    // Checkpoint/resume plumbing. `--checkpoint <dir>` names where the
    // single rolling `latest.ckpt` lives; `--checkpoint-every <n>` turns
    // periodic capture on; `--resume` loads `latest.ckpt` if present (a
    // missing file starts fresh, so crash-loop scripts can pass --resume
    // unconditionally). A resumed run is byte-identical to an
    // uninterrupted one at any thread count.
    let ckpt_every: usize = flags.num("checkpoint-every", 0)?;
    let resume_wanted = flags.has("resume");
    let ckpt_dir = flags.values.get("checkpoint").map(PathBuf::from);
    if (ckpt_every > 0 || resume_wanted) && ckpt_dir.is_none() {
        return Err(CliError::Usage(
            "--checkpoint-every and --resume need --checkpoint <dir>".into(),
        ));
    }
    if let Some(dir) = &ckpt_dir {
        std::fs::create_dir_all(dir).map_err(runtime)?;
    }
    let ckpt_path = ckpt_dir.as_ref().map(|d| d.join("latest.ckpt"));
    let resume_ckpt = match &ckpt_path {
        Some(path) if resume_wanted && path.exists() => {
            Some(SimCheckpoint::read_from(path).map_err(runtime)?)
        }
        _ => None,
    };
    let lineage = match &resume_ckpt {
        None => None,
        Some(c) => Some((
            format!("{:016x}", c.digest().map_err(runtime)?),
            c.completed_rounds as u64,
        )),
    };
    let bundle = telemetry.map(|dir| (dir, Telemetry::new(4096)));
    let mut engine = ParallelEngine::with_default_threads(config).map_err(runtime)?;
    if let Some((_, t)) = &bundle {
        engine = engine.with_telemetry(Arc::clone(&t.registry));
    }
    let started = Instant::now();
    let mut captured = 0usize;
    let outcome = {
        let mut sink = |c: &SimCheckpoint| {
            let path = ckpt_path
                .as_ref()
                .expect("--checkpoint-every was rejected without --checkpoint");
            c.write_to(path)?;
            captured += 1;
            Ok(())
        };
        let spec = (ckpt_every > 0).then_some(CheckpointSpec {
            every: ckpt_every,
            sink: &mut sink,
        });
        engine
            .run_session(&fleet, resume_ckpt.as_ref(), spec)
            .map_err(runtime)?
    };
    let telemetry_note = match &bundle {
        None => None,
        Some((dir, t)) => {
            let mut manifest = RunManifest::capture(
                "simulate",
                seed,
                &config,
                &t.registry,
                outcome.rounds as u64,
                started.elapsed(),
            );
            if let Some((parent, round)) = &lineage {
                manifest = manifest.with_resume(parent.clone(), *round);
            }
            let paths = t.write_run(dir, "simulate", &manifest).map_err(runtime)?;
            Some(format!("wrote telemetry to {}", paths.manifest.display()))
        }
    };
    let (p0, p12, p35, p6) = outcome.shift_buckets.percentages();
    let mut out = String::new();
    let _ = writeln!(out, "rounds:        {}", outcome.rounds);
    let _ = writeln!(out, "threads:       {}", engine.threads());
    if let Some((parent, round)) = &lineage {
        let _ = writeln!(
            out,
            "resumed:       round {round} (parent checkpoint {parent})"
        );
    } else if resume_wanted {
        let _ = writeln!(out, "resumed:       no checkpoint found, started fresh");
    }
    if captured > 0 {
        let path = ckpt_path.as_ref().expect("captured implies a path");
        let _ = writeln!(
            out,
            "checkpoints:   {captured} written to {}",
            path.display()
        );
    }
    let _ = writeln!(out, "mean F:        {:.1}%", outcome.mean_f * 100.0);
    let _ = writeln!(
        out,
        "Shift(P):      mean {:.2}  [0: {p0:.1}%, 1-2: {p12:.1}%, 3-5: {p35:.1}%, 6+: {p6:.1}%]",
        outcome.shift_mean
    );
    let _ = writeln!(out, "congestion CV: {:.3}", outcome.congestion_cv);
    if flags.has("heatmap") {
        let last = outcome.rounds - 1;
        let positions = outcome
            .streams
            .iter()
            .flat_map(|(reqs, _)| reqs[last].positions.iter().copied());
        let pop =
            dummyloc_core::population::PopulationGrid::from_positions(engine.grid(), positions)
                .map_err(runtime)?;
        let _ = writeln!(out, "\nfinal-round population:\n{}", ascii_heatmap(&pop));
    }
    if let Some(path) = flags.values.get("json") {
        let summary = serde_json::json!({
            "rounds": outcome.rounds,
            "mean_f": outcome.mean_f,
            "shift_mean": outcome.shift_mean,
            "congestion_cv": outcome.congestion_cv,
            "f_series": outcome.f_series,
        });
        std::fs::write(
            path,
            serde_json::to_string_pretty(&summary).map_err(runtime)?,
        )
        .map_err(runtime)?;
        let _ = writeln!(out, "wrote {path}");
    }
    if let Some(note) = telemetry_note {
        let _ = writeln!(out, "{note}");
    }
    Ok(out)
}

fn cmd_experiment(name: &str, flags: &Flags, telemetry: Option<&Path>) -> Result<String, CliError> {
    let registry = dummyloc_ext::experiments::registry_with_extensions();
    let Some(experiment) = registry.get(name) else {
        return Err(CliError::Usage(format!(
            "unknown experiment '{name}' (one of: {})",
            registry.names().join(", ")
        )));
    };
    let seed: u64 = flags.num("seed", 42)?;
    let quick = flags.has("quick");
    let fleet = if quick {
        workload::nara_fleet_sized(16, 600.0, seed)
    } else {
        workload::nara_fleet(seed)
    };
    let cache = report_cache(flags, seed, quick, &fleet)?;
    let started = Instant::now();
    let cached = match &cache {
        Some((dir, key)) if flags.has("resume") => read_cached_report(dir, name, key),
        _ => None,
    };
    let reused = cached.is_some();
    let report = match cached {
        Some(r) => r,
        None => {
            let r = experiment.run(seed, &fleet).map_err(runtime)?;
            if let Some((dir, key)) = &cache {
                write_cached_report(dir, name, key, &r)?;
            }
            r
        }
    };
    let cache_key = cache.as_ref().map(|(_, key)| key.clone());
    let mut out = report.rendered;
    if reused {
        let _ = writeln!(
            out,
            "reused cached report (key {})",
            cache_key.as_deref().unwrap_or("")
        );
    }
    if let Some(path) = flags.values.get("json") {
        std::fs::write(path, &report.json).map_err(runtime)?;
        let _ = writeln!(out, "wrote {path}");
    }
    if let Some(dir) = telemetry {
        let t = Telemetry::new(16);
        t.registry.counter("experiment.runs").inc();
        let mut manifest = RunManifest::capture(
            &format!("experiment-{name}"),
            seed,
            &(name, quick),
            &t.registry,
            1,
            started.elapsed(),
        );
        if reused {
            manifest = manifest.with_resume(cache_key.clone().unwrap_or_default(), 1);
        }
        let paths = t
            .write_run(dir, &format!("experiment-{name}"), &manifest)
            .map_err(runtime)?;
        let _ = writeln!(out, "wrote telemetry to {}", paths.manifest.display());
    }
    Ok(out)
}

fn cmd_experiments_run_all(flags: &Flags, telemetry: Option<&Path>) -> Result<String, CliError> {
    let registry = dummyloc_ext::experiments::registry_with_extensions();
    let seed: u64 = flags.num("seed", 42)?;
    let quick = flags.has("quick");
    let fleet = if quick {
        workload::nara_fleet_sized(flags.num("count", 16)?, flags.num("duration", 600.0)?, seed)
    } else {
        workload::nara_fleet(seed)
    };
    let cache = report_cache(flags, seed, quick, &fleet)?;
    let resume = flags.has("resume");
    let started = Instant::now();
    let mut reused = 0u64;
    let reports = match &cache {
        None => registry.run_all(seed, &fleet).map_err(runtime)?,
        // With a cache dir the experiments run one at a time so every
        // finished report is persisted before the next starts; on
        // --resume, persisted reports are reused instead of re-run. The
        // unit of resume is one whole experiment — coarser than the
        // round-level simulate checkpoints, but enough to survive a kill
        // partway through the sweep without repeating finished entries.
        Some((dir, key)) => {
            let mut v = Vec::new();
            for e in registry.iter() {
                let name = e.name();
                if resume {
                    if let Some(r) = read_cached_report(dir, name, key) {
                        reused += 1;
                        v.push((name, r));
                        continue;
                    }
                }
                let r = e.run(seed, &fleet).map_err(runtime)?;
                write_cached_report(dir, name, key, &r)?;
                v.push((name, r));
            }
            v
        }
    };
    let mut out = String::new();
    for (name, report) in &reports {
        let _ = writeln!(out, "== {name} ==");
        let _ = writeln!(out, "{}", report.rendered.trim_end());
        let _ = writeln!(out);
    }
    if reused > 0 {
        let (dir, _) = cache.as_ref().expect("reused implies a cache dir");
        let _ = writeln!(out, "reused {reused} cached reports from {}", dir.display());
    }
    if let Some(dir) = flags.values.get("json") {
        std::fs::create_dir_all(dir).map_err(runtime)?;
        for (name, report) in &reports {
            std::fs::write(Path::new(dir).join(format!("{name}.json")), &report.json)
                .map_err(runtime)?;
        }
        let _ = writeln!(out, "wrote {} JSON reports to {dir}", reports.len());
    }
    if let Some(dir) = telemetry {
        let t = Telemetry::new(16);
        t.registry
            .counter("experiment.runs")
            .add(reports.len() as u64);
        let mut manifest = RunManifest::capture(
            "experiments-run-all",
            seed,
            &("run-all", quick),
            &t.registry,
            reports.len() as u64,
            started.elapsed(),
        );
        if reused > 0 {
            let (_, key) = cache.as_ref().expect("reused implies a cache key");
            manifest = manifest.with_resume(key.clone(), reused);
        }
        let paths = t
            .write_run(dir, "experiments-run-all", &manifest)
            .map_err(runtime)?;
        let _ = writeln!(out, "wrote telemetry to {}", paths.manifest.display());
    }
    Ok(out)
}

fn cmd_manifest_scrub(path: &str, flags: &Flags) -> Result<String, CliError> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("open {path}: {e}")))?;
    let manifest: RunManifest = serde_json::from_str(&raw).map_err(runtime)?;
    let scrubbed = serde_json::to_string_pretty(&manifest.scrubbed()).map_err(runtime)?;
    match flags.values.get("out") {
        Some(out) => {
            std::fs::write(out, &scrubbed).map_err(runtime)?;
            Ok(format!("wrote {out}"))
        }
        None => Ok(scrubbed),
    }
}

fn cmd_experiments_list(flags: &Flags) -> Result<String, CliError> {
    let registry = dummyloc_ext::experiments::registry_with_extensions();
    if flags.has("names") {
        // Scripts iterate this form: keep it flat, one bare name per
        // line, no grouping.
        return Ok(registry.names().join("\n"));
    }
    let builtin = dummyloc_sim::experiments::Registry::builtin().names();
    let family = |name: &str| {
        if builtin.contains(&name) {
            "sim"
        } else if name.starts_with("attack-") {
            "attack"
        } else {
            "ext"
        }
    };
    let width = registry.names().iter().map(|n| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (title, key) in [
        ("sim — paper artifacts", "sim"),
        ("ext — extensions beyond the paper", "ext"),
        ("attack — adversary pipeline", "attack"),
    ] {
        let group: Vec<_> = registry
            .iter()
            .filter(|e| family(e.name()) == key)
            .collect();
        if group.is_empty() {
            continue;
        }
        if !out.is_empty() {
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "{title}:");
        for e in group {
            let _ = writeln!(out, "  {:width$}  {}", e.name(), e.description());
        }
    }
    Ok(out)
}

fn cmd_render(flags: &Flags) -> Result<String, CliError> {
    let fleet = load_workload(flags)?;
    let out = PathBuf::from(flags.require("out")?);
    let width: f64 = flags.num("width", 800.0)?;
    let bounds = fleet
        .bounds()
        .ok_or_else(|| CliError::Runtime("workload is empty".into()))?;
    let padded = bounds
        .expanded(bounds.width().max(1.0) * 0.05)
        .map_err(runtime)?;
    let mut scene = SvgScene::new(padded, width);
    if let Ok(grid) = dummyloc_geo::Grid::square(padded, flags.num("grid", 12)?) {
        scene.grid(&grid);
    }
    for (i, track) in fleet.tracks().iter().enumerate() {
        scene.trajectory(track, user_color(i), 1.5);
        if let Some(p) = track.points().first() {
            scene.dot(p.pos, user_color(i), 3.0);
        }
    }
    std::fs::write(&out, scene.render()).map_err(runtime)?;
    Ok(format!("wrote {} tracks to {}", fleet.len(), out.display()))
}

fn cmd_serve(flags: &Flags, telemetry: Option<&Path>) -> Result<String, CliError> {
    use dummyloc_server::server::spawn;
    use dummyloc_server::{FaultPlan, FsyncPolicy, ProtoVersion, ServeOptions, WalConfig};
    // The service area matches the loadgen's (and the experiments') Nara
    // default, so loadgen users stay in bounds.
    let area = dummyloc_geo::BBox::new(
        dummyloc_geo::Point::new(0.0, 0.0),
        dummyloc_geo::Point::new(2000.0, 2000.0),
    )
    .map_err(runtime)?;
    let pois = dummyloc_lbs::PoiDatabase::generate(
        area,
        flags.num("pois", 200)?,
        flags.num("poi-seed", 42)?,
    );
    let faults = FaultPlan {
        seed: flags.num("fault-seed", 1)?,
        drop: flags.num("fault-drop", 0.0)?,
        delay: flags.num("fault-delay", 0.0)?,
        delay_ms: flags.num("fault-delay-ms", 5)?,
        truncate: flags.num("fault-truncate", 0.0)?,
        corrupt: flags.num("fault-corrupt", 0.0)?,
        stall: flags.num("fault-stall", 0.0)?,
        refuse_accept: flags.num("fault-refuse", 0.0)?,
    };
    // `--wal <path>` makes the observer log durable: every recorded query
    // is appended to a write-ahead log and replayed on the next start, so
    // a crash (even kill -9) loses no acknowledged observation.
    let wal = match flags.values.get("wal") {
        None => None,
        Some(path) => {
            let fsync: FsyncPolicy = flags
                .get("wal-fsync", "always")
                .parse()
                .map_err(|e: String| CliError::Usage(format!("--wal-fsync: {e}")))?;
            Some(WalConfig {
                fsync,
                ..WalConfig::new(PathBuf::from(path))
            })
        }
    };
    // `--store <dir>` adds the log-structured durable store: startup
    // recovers from its manifest and replays only the WAL tail past the
    // store's durable frontier, and each memtable flush truncates the WAL.
    let store = match flags.values.get("store") {
        None => None,
        Some(dir) => Some(dummyloc_server::LogStoreConfig {
            flush_threshold_bytes: flags.num(
                "store-flush-bytes",
                dummyloc_server::DEFAULT_FLUSH_THRESHOLD_BYTES,
            )?,
            compact_tiers: flags.num(
                "store-compact-tiers",
                dummyloc_server::DEFAULT_COMPACT_TIERS,
            )?,
            ..dummyloc_server::LogStoreConfig::new(dir)
        }),
    };
    // `--proto v3` pins a JSON-only server: binary openings are refused
    // with a typed version mismatch and v4 clients fall back to v3.
    let max_proto: ProtoVersion = flags
        .get("proto", "v4")
        .parse()
        .map_err(|e: String| CliError::Usage(format!("--proto: {e}")))?;
    // `--drain-file <path>`: the scriptable drain trigger. The server
    // polls for the file; the moment it exists it drains — stops
    // accepting, answers everything already queued (bounded by
    // --drain-timeout-ms), flushes WAL/store — and exits with the final
    // stats JSON. A file beats a signal here: it needs no unsafe code
    // and works identically from any shell.
    let drain_file = match (flags.values.get("drain-file"), flags.has("drain-file")) {
        (Some(p), _) => Some(PathBuf::from(p)),
        (None, true) => return Err(CliError::Usage("--drain-file needs a path".into())),
        (None, false) => None,
    };
    let drain_grace = std::time::Duration::from_millis(flags.num("drain-timeout-ms", 5_000)?);
    let config = ServeOptions::new()
        .addr(flags.get("addr", "127.0.0.1:7878"))
        .max_proto(max_proto)
        .workers(flags.num("workers", 4)?)
        .shards(flags.num("shards", 8)?)
        .queue_depth(flags.num("queue", 1024)?)
        .max_frame_bytes(flags.num(
            "max-frame-bytes",
            dummyloc_server::proto::DEFAULT_MAX_FRAME_BYTES,
        )?)
        .max_requests_per_conn(flags.num("max-requests-per-conn", u64::MAX)?)
        .max_connections(flags.num("max-connections", 1024)?)
        .idle_timeout(millis_flag(flags, "idle-timeout-ms")?)
        .default_deadline(millis_flag(flags, "deadline-ms")?)
        .admission(!flags.has("no-admission"))
        .codel_target(millis_flag(flags, "codel-target-ms")?)
        // A per-job worker throttle, surfaced so scripts can stand up a
        // server with a known small capacity and drive it past it.
        .worker_delay(millis_flag(flags, "worker-delay-ms")?)
        .faults(faults)
        .wal(wal.clone())
        .store(store.clone())
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let handle = spawn(config, pois).map_err(runtime)?;
    println!(
        "dummyloc-server listening on {} (protocol v{}..v{})",
        handle.addr(),
        dummyloc_server::MIN_PROTOCOL_VERSION,
        max_proto.version()
    );
    if let (Some(sc), Some(recovery)) = (&store, handle.store_recovery()) {
        println!(
            "store: recovered {} records ({} segments, {} tail) in {} ms from {}",
            recovery.durable_records,
            recovery.segments,
            recovery.tail_replayed,
            recovery.recovery_ms,
            sc.dir.display()
        );
    }
    if let Some(wc) = &wal {
        let stats = handle.stats();
        let torn = if stats.wal.torn_truncations > 0 {
            format!(
                " (truncated a torn tail of {} bytes)",
                stats.wal.truncated_bytes
            )
        } else {
            String::new()
        };
        println!(
            "wal: replayed {} records from {}{torn}",
            stats.wal.replayed,
            wc.path.display()
        );
    }
    let duration = match flags.values.get("duration") {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| CliError::Usage(format!("flag --duration got invalid value '{v}'")))?,
        ),
    };
    let started = Instant::now();
    // One loop serves all three exits: drain-file touch, --duration
    // expiry, or (with neither) run until the process is killed. The
    // poll stays coarse when nothing is being watched.
    let poll = if drain_file.is_some() || duration.is_some() {
        std::time::Duration::from_millis(20)
    } else {
        std::time::Duration::from_secs(60)
    };
    let drained = loop {
        if let Some(path) = &drain_file {
            if path.exists() {
                break true;
            }
        }
        if let Some(secs) = duration {
            if started.elapsed().as_secs_f64() >= secs.max(0.0) {
                break false;
            }
        }
        std::thread::sleep(poll);
    };
    if let Some(dir) = telemetry {
        let manifest = RunManifest::capture(
            "serve",
            flags.num("fault-seed", 1)?,
            &handle.addr().to_string(),
            handle.registry(),
            handle.stats().requests,
            started.elapsed(),
        );
        dummyloc_telemetry::write_run(dir, "serve", &manifest, &[]).map_err(runtime)?;
    }
    let report = if drained {
        let report = handle.drain(drain_grace);
        println!(
            "drain: answered in-flight work and flushed durable state ({} requests total)",
            report.stats.requests
        );
        report
    } else {
        handle.shutdown()
    };
    serde_json::to_string_pretty(&report.stats).map_err(runtime)
}

/// Offline maintenance of a durable observer store. Every subcommand
/// opens the store the same way the server does (committing any crash
/// cleanup — orphan segments are removed), so what it reports is exactly
/// what a restarted server would recover.
fn cmd_store(sub: &str, dir: &str, flags: &Flags) -> Result<String, CliError> {
    use dummyloc_store::{LogStore, LogStoreConfig, Storage as _, StoreRecord};
    if !matches!(sub, "stats" | "digests" | "compact" | "export" | "import") {
        return Err(CliError::Usage(format!(
            "unknown store subcommand '{sub}' (stats | digests | compact | export | import)"
        )));
    }
    let (mut store, _info) =
        LogStore::open(LogStoreConfig::new(dir)).map_err(|e| CliError::Runtime(e.to_string()))?;
    match sub {
        "stats" => {
            let stats = store.store_stats();
            if flags.has("json") {
                return serde_json::to_string_pretty(&stats).map_err(runtime);
            }
            let mut out = String::new();
            let _ = writeln!(out, "backend:          {}", stats.backend);
            let _ = writeln!(
                out,
                "segments:         {} ({} bytes)",
                stats.segments, stats.segment_bytes
            );
            let _ = writeln!(out, "durable records:  {}", stats.durable_records);
            let _ = writeln!(
                out,
                "memtable:         {} records ({} bytes)",
                stats.memtable_records, stats.memtable_bytes
            );
            let _ = writeln!(out, "total records:    {}", stats.total_records);
            let _ = writeln!(out, "streams:          {}", stats.streams);
            let _ = writeln!(
                out,
                "last durable seq: {}",
                stats
                    .last_durable_seq
                    .map_or_else(|| "none".to_string(), |s| s.to_string())
            );
            let _ = writeln!(out, "tiered compactions: {}", stats.tiered_compactions);
            let _ = writeln!(out, "dir-fsync errors: {}", stats.dir_fsync_errors);
            Ok(out)
        }
        "digests" => {
            // One line per pseudonym, sorted, fixed-width hex — the
            // byte-comparable form the check script diffs across a
            // crash/recover/compact cycle.
            let mut digests = store.stream_digests();
            digests.sort();
            let mut out = String::new();
            for (pseudonym, digest) in digests {
                let _ = writeln!(out, "{pseudonym} {digest:016x}");
            }
            Ok(out)
        }
        "compact" => {
            let outcome = store
                .compact()
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            Ok(format!(
                "compacted {} -> {} segments ({} records, {} bytes)\n",
                outcome.segments_before, outcome.segments_after, outcome.records, outcome.bytes
            ))
        }
        "export" => {
            let out_path = flags.require("out")?;
            let chunk: usize = flags.num("chunk", 1024)?.max(1);
            let records = store
                .snapshot()
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            let mut file = std::io::BufWriter::new(
                std::fs::File::create(&out_path)
                    .map_err(|e| CliError::Runtime(format!("create {out_path}: {e}")))?,
            );
            use std::io::Write as _;
            for batch in records.chunks(chunk) {
                let mut buf = String::new();
                for r in batch {
                    let _ = writeln!(buf, "{}", serde_json::to_string(r).map_err(runtime)?);
                }
                file.write_all(buf.as_bytes()).map_err(runtime)?;
            }
            file.flush().map_err(runtime)?;
            Ok(format!(
                "exported {} records to {out_path}\n",
                records.len()
            ))
        }
        "import" => {
            let mut records: Vec<StoreRecord> =
                match (flags.values.get("in"), flags.values.get("wal")) {
                    (Some(path), None) => {
                        let raw = std::fs::read_to_string(path)
                            .map_err(|e| CliError::Runtime(format!("open {path}: {e}")))?;
                        let mut v = Vec::new();
                        for (n, line) in raw.lines().enumerate() {
                            if line.trim().is_empty() {
                                continue;
                            }
                            v.push(serde_json::from_str(line).map_err(|e| {
                                CliError::Runtime(format!("{path}:{}: {e}", n + 1))
                            })?);
                        }
                        v
                    }
                    (None, Some(path)) => {
                        // A server WAL is the reference history: importing one
                        // into a fresh store rebuilds exactly the state a
                        // store-backed server would hold — the oracle the
                        // check script compares digests against.
                        let bytes = std::fs::read(path)
                            .map_err(|e| CliError::Runtime(format!("open {path}: {e}")))?;
                        let (wal_records, clean_end) = dummyloc_server::wal::decode_all(&bytes);
                        if clean_end < bytes.len() {
                            eprintln!(
                                "warning: ignored {} torn/corrupt trailing bytes of {path}",
                                bytes.len() - clean_end
                            );
                        }
                        wal_records
                            .into_iter()
                            .map(|r| StoreRecord {
                                t: r.t,
                                seq: r.seq,
                                request_id: r.request_id,
                                request: r.request,
                            })
                            .collect()
                    }
                    _ => {
                        return Err(CliError::Usage(
                            "store import needs exactly one of --in <jsonl> or --wal <file>".into(),
                        ))
                    }
                };
            // Storage::append requires nondecreasing seq; files produced
            // by export/WAL are already ordered, but sorting makes the
            // command safe on concatenated or hand-edited inputs too.
            records.sort_by_key(|r| r.seq);
            let total = records.len();
            let mut recorded = 0u64;
            for r in records {
                let outcome = store
                    .append(r)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
                if outcome.recorded {
                    recorded += 1;
                }
            }
            store
                .flush()
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            Ok(format!(
                "imported {recorded} records into {dir} ({} duplicates skipped)\n",
                total as u64 - recorded
            ))
        }
        _ => unreachable!("subcommand validated above"),
    }
}

fn cmd_attack(dir: &str, flags: &Flags, telemetry: Option<&Path>) -> Result<String, CliError> {
    use dummyloc_attack::{attack_storage, AttackConfig};
    use dummyloc_sim::report::{fmt, Table};
    use dummyloc_store::{LogStore, LogStoreConfig};

    let mut config = AttackConfig::nara_default();
    config.grid_size = flags.num("grid", config.grid_size)?;
    config.tick = flags.num("tick", config.tick)?;
    config.max_speed = flags.num("max-speed", config.max_speed)?;
    let positive = |v: f64| v.is_finite() && v > 0.0;
    if config.grid_size == 0 || !positive(config.tick) || !positive(config.max_speed) {
        return Err(CliError::Usage(
            "attack needs --grid >= 1 and positive --tick / --max-speed".into(),
        ));
    }

    let (store, _info) =
        LogStore::open(LogStoreConfig::new(dir)).map_err(|e| CliError::Runtime(e.to_string()))?;
    let started = Instant::now();
    let bundle = telemetry.map(|_| Telemetry::new(1024));
    let reports = attack_storage(&store, &config, bundle.as_ref())
        .map_err(|e| CliError::Runtime(e.to_string()))?;

    let mut table = Table::new(
        format!("attack — {} pseudonym streams in {dir}", reports.len()),
        &[
            "pseudonym",
            "rounds",
            "candidates",
            "plausible",
            "guess",
            "cost",
            "margin",
        ],
    );
    for r in &reports {
        table.row(&[
            r.pseudonym.clone(),
            r.rounds.to_string(),
            r.candidates.to_string(),
            r.plausible.to_string(),
            r.guess.to_string(),
            fmt(r.cost, 1),
            fmt(r.margin, 1),
        ]);
    }
    let mut out = table.render();
    if let Some(path) = flags.values.get("json") {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&reports).map_err(runtime)?,
        )
        .map_err(runtime)?;
        let _ = writeln!(out, "wrote {path}");
    }
    if let (Some(dir_path), Some(t)) = (telemetry, &bundle) {
        let manifest = RunManifest::capture(
            "attack",
            0,
            &(dir, config.grid_size, config.tick, config.max_speed),
            &t.registry,
            reports.len() as u64,
            started.elapsed(),
        );
        let paths = t
            .write_run(dir_path, "attack", &manifest)
            .map_err(runtime)?;
        let _ = writeln!(out, "wrote telemetry to {}", paths.manifest.display());
    }
    Ok(out)
}

fn cmd_loadgen(flags: &Flags, telemetry: Option<&Path>) -> Result<String, CliError> {
    use dummyloc_server::loadgen::{self, GeneratorChoice};
    use dummyloc_server::{LoadgenOptions, ProtoVersion, RetryPolicy};
    let generator = match flags.get("generator", "mn").as_str() {
        "mn" => GeneratorChoice::Mn,
        "mln" => GeneratorChoice::Mln,
        "random" => GeneratorChoice::Random,
        other => {
            return Err(CliError::Usage(format!(
                "unknown generator '{other}' (mn, mln, random)"
            )))
        }
    };
    let query = parse_query(flags)?;
    let defaults = RetryPolicy::default();
    let retry = RetryPolicy {
        max_attempts: flags.num("retries", defaults.max_attempts)?,
        base_delay_ms: flags.num("retry-base-ms", defaults.base_delay_ms)?,
        max_delay_ms: flags.num("retry-max-ms", defaults.max_delay_ms)?,
        attempt_timeout_ms: flags.num("attempt-timeout-ms", defaults.attempt_timeout_ms)?,
        jitter: flags.num("retry-jitter", defaults.jitter)?,
        breaker_threshold: flags.num("breaker-threshold", defaults.breaker_threshold)?,
        breaker_open_ms: flags.num("breaker-open-ms", defaults.breaker_open_ms)?,
        hedge: flags.has("hedge"),
    };
    // `--rate 0` (or absent) keeps the classic closed loop; any other
    // value is an open-loop offered rate in queries per second.
    let rate = Some(flags.num::<f64>("rate", 0.0)?).filter(|&r| r != 0.0);
    let deadline_ms = millis_flag(flags, "deadline-ms")?.map(|d| d.as_millis() as u64);
    let proto: ProtoVersion = flags
        .get("proto", "v4")
        .parse()
        .map_err(|e: String| CliError::Usage(format!("--proto: {e}")))?;
    let config = LoadgenOptions::new()
        .addr(flags.get("addr", "127.0.0.1:7878"))
        .users(flags.num("users", 8)?)
        .rounds(flags.num("rounds", 20)?)
        .dummy_count(flags.num("dummies", 3)?)
        .generator(generator)
        .neighborhood_m(flags.num("m", 120.0)?)
        .tick(flags.num("tick", 30.0)?)
        .seed(flags.num("seed", 1)?)
        .query(query)
        .retry(retry)
        .deadline_ms(deadline_ms)
        .proto(proto)
        .batch(flags.num("batch", 1)?)
        .rate(rate)
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let bundle = telemetry.map(|dir| (dir, Telemetry::new(4096)));
    let started = Instant::now();
    let report =
        loadgen::run_instrumented(&config, bundle.as_ref().map(|(_, t)| t)).map_err(runtime)?;
    if let Some((dir, t)) = &bundle {
        let manifest = RunManifest::capture(
            "loadgen",
            config.seed,
            &config,
            &t.registry,
            report.answered,
            started.elapsed(),
        );
        t.write_run(dir, "loadgen", &manifest).map_err(runtime)?;
    }
    let json = serde_json::to_string_pretty(&report).map_err(runtime)?;
    if let Some(path) = flags.values.get("json") {
        std::fs::write(path, &json).map_err(runtime)?;
    }
    Ok(json)
}

fn cmd_metrics(addr: &str, flags: &Flags) -> Result<String, CliError> {
    let timeout = std::time::Duration::from_millis(flags.num("timeout-ms", 2_000)?);
    let mut client = dummyloc_server::ServiceClient::connect_with_timeout(addr, Some(timeout))
        .map_err(runtime)?;
    let snapshot = client.metrics().map_err(runtime)?;
    let _ = client.bye();
    if flags.has("json") {
        serde_json::to_string_pretty(&snapshot).map_err(runtime)
    } else {
        Ok(render_text(&snapshot))
    }
}

/// Optional duration flag in milliseconds; absent or 0 means "off".
fn millis_flag(flags: &Flags, key: &str) -> Result<Option<std::time::Duration>, CliError> {
    Ok(match flags.num::<u64>(key, 0)? {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    })
}

fn parse_query(flags: &Flags) -> Result<dummyloc_lbs::QueryKind, CliError> {
    use dummyloc_lbs::QueryKind;
    match flags.get("query", "bus").as_str() {
        "bus" => Ok(QueryKind::NextBus),
        "nearest" => Ok(QueryKind::NearestPoi { category: None }),
        "range" => Ok(QueryKind::PoisInRange {
            radius: flags.num("radius", 150.0)?,
        }),
        other => Err(CliError::Usage(format!(
            "unknown query '{other}' (bus, nearest, range)"
        ))),
    }
}

/// The experiment commands' `--checkpoint <dir>` report cache. Returns
/// the directory (created if absent) plus the cache key: a digest of the
/// seed, the `--quick` switch and the exact workload contents. `--resume`
/// reuses a stored report only under an identical key, so changing any
/// of those inputs invalidates the cache automatically.
fn report_cache(
    flags: &Flags,
    seed: u64,
    quick: bool,
    fleet: &Dataset,
) -> Result<Option<(PathBuf, String)>, CliError> {
    let Some(dir) = flags.values.get("checkpoint") else {
        if flags.has("resume") {
            return Err(CliError::Usage("--resume needs --checkpoint <dir>".into()));
        }
        return Ok(None);
    };
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).map_err(runtime)?;
    let key = dummyloc_telemetry::config_digest(&(seed, quick, workload_digest(fleet)));
    Ok(Some((dir, key)))
}

fn cached_report_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.report.json"))
}

/// Loads a cached experiment report if one exists *and* was written under
/// the same cache key. Any unreadable, torn or key-mismatched file is
/// treated as a miss (the experiment simply re-runs).
fn read_cached_report(dir: &Path, name: &str, key: &str) -> Option<ExperimentReport> {
    let raw = std::fs::read_to_string(cached_report_path(dir, name)).ok()?;
    let v: serde_json::Value = serde_json::from_str(&raw).ok()?;
    if v.get("key")?.as_str()? != key {
        return None;
    }
    Some(ExperimentReport {
        rendered: v.get("rendered")?.as_str()?.to_string(),
        json: v.get("json")?.as_str()?.to_string(),
    })
}

/// Persists one experiment report under `key`, atomically (tmp + rename)
/// so a kill mid-write can never leave a torn entry a later `--resume`
/// would trust.
fn write_cached_report(
    dir: &Path,
    name: &str,
    key: &str,
    report: &ExperimentReport,
) -> Result<(), CliError> {
    let payload = serde_json::json!({
        "key": key,
        "rendered": report.rendered,
        "json": report.json,
    });
    let path = cached_report_path(dir, name);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, serde_json::to_string(&payload).map_err(runtime)?).map_err(runtime)?;
    std::fs::rename(&tmp, &path).map_err(runtime)?;
    Ok(())
}

/// Loads the workload named by `--workload <path.csv|path.json>`, or
/// generates the standard fleet when the flag is absent.
fn load_workload(flags: &Flags) -> Result<Dataset, CliError> {
    match flags.values.get("workload") {
        None => Ok(workload::nara_fleet_sized(
            flags.num("count", 39)?,
            flags.num("duration", 3600.0)?,
            flags.num("seed", 42)?,
        )),
        Some(path) => read_dataset(Path::new(path)),
    }
}

fn write_dataset(fleet: &Dataset, out: &Path) -> Result<(), CliError> {
    let file = std::fs::File::create(out).map_err(runtime)?;
    match out.extension().and_then(|e| e.to_str()) {
        Some("json") => tio::write_json(fleet, file).map_err(runtime),
        _ => tio::write_csv(fleet, file).map_err(runtime),
    }
}

fn read_dataset(path: &Path) -> Result<Dataset, CliError> {
    let file = std::fs::File::open(path)
        .map_err(|e| CliError::Runtime(format!("open {}: {e}", path.display())))?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("json") => tio::read_json(file).map_err(runtime),
        _ => tio::read_csv(file).map_err(runtime),
    }
}

fn parse_generator(flags: &Flags) -> Result<GeneratorKind, CliError> {
    let m: f64 = flags.num("m", 120.0)?;
    match flags.get("generator", "mn").as_str() {
        "mn" => Ok(GeneratorKind::Mn { m }),
        "mln" => Ok(GeneratorKind::Mln {
            m,
            retry_budget: flags.num("retry-budget", 3)?,
        }),
        "random" => Ok(GeneratorKind::Random),
        "mn-disc" => Ok(GeneratorKind::MnDisc { m }),
        "stationary" => Ok(GeneratorKind::Stationary),
        other => Err(CliError::Usage(format!(
            "unknown generator '{other}' (mn, mln, random, mn-disc, stationary)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dummyloc-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// `--threads` sets a process-wide default; tests that assert on a
    /// specific thread count serialize through this lock so concurrent
    /// tests cannot change the knob mid-run.
    static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn flags_parse_values_and_switches() {
        let f = Flags::parse(&args("--count 5 --quick --out x.csv")).unwrap();
        assert_eq!(f.get("count", "0"), "5");
        assert!(f.has("quick"));
        assert!(!f.has("count"));
        assert_eq!(f.require("out").unwrap(), "x.csv");
        assert!(f.require("missing").is_err());
        assert_eq!(f.num::<u64>("count", 0).unwrap(), 5);
        assert!(f.num::<u64>("out", 0).is_err());
        assert!(Flags::parse(&args("stray")).is_err());
    }

    #[test]
    fn unknown_command_and_help() {
        assert!(matches!(run(&args("frobnicate")), Err(CliError::Usage(_))));
        assert!(run(&args("help")).unwrap().contains("commands:"));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn workload_roundtrip_csv_and_json() {
        for ext in ["csv", "json"] {
            let path = tmp(&format!("fleet.{ext}"));
            let msg = run(&args(&format!(
                "workload --count 4 --duration 120 --seed 7 --out {}",
                path.display()
            )))
            .unwrap();
            assert!(msg.contains("4 tracks"));
            let ds = read_dataset(&path).unwrap();
            assert_eq!(ds.len(), 4);
            assert_eq!(ds, workload::nara_fleet_sized(4, 120.0, 7));
        }
    }

    #[test]
    fn workload_waypoint_model() {
        let path = tmp("walkers.csv");
        run(&args(&format!(
            "workload --count 3 --duration 60 --model waypoint --out {}",
            path.display()
        )))
        .unwrap();
        let ds = read_dataset(&path).unwrap();
        assert_eq!(ds.tracks()[0].id(), "walker-00");
        assert!(matches!(
            run(&args("workload --model hovercraft --out /tmp/x.csv")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn simulate_reports_metrics_and_heatmap() {
        let path = tmp("simfleet.csv");
        run(&args(&format!(
            "workload --count 5 --duration 300 --seed 3 --out {}",
            path.display()
        )))
        .unwrap();
        let out = run(&args(&format!(
            "simulate --workload {} --dummies 2 --generator mln --heatmap",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("mean F:"));
        assert!(out.contains("Shift(P):"));
        assert!(out.contains("final-round population:"));
        assert!(out.contains("max P ="));
    }

    #[test]
    fn simulate_json_summary() {
        let json_path = tmp("sim.json");
        let out = run(&args(&format!(
            "simulate --count 4 --duration 120 --json {}",
            json_path.display()
        )))
        .unwrap();
        assert!(out.contains("wrote"));
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert!(v["mean_f"].as_f64().unwrap() > 0.0);
        assert!(v["f_series"].as_array().unwrap().len() > 1);
    }

    #[test]
    fn simulate_is_thread_count_invariant() {
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Same workload and seed at 1 vs 3 threads: the JSON summaries
        // (every f64 printed with full precision by serde) must be
        // byte-identical, and stdout differs only in the threads line.
        let a_path = tmp("sim-threads-1.json");
        let b_path = tmp("sim-threads-3.json");
        let a = run(&args(&format!(
            "simulate --count 5 --duration 150 --seed 8 --generator mln --threads 1 --json {}",
            a_path.display()
        )))
        .unwrap();
        let b = run(&args(&format!(
            "simulate --count 5 --duration 150 --seed 8 --generator mln --threads 3 --json {}",
            b_path.display()
        )))
        .unwrap();
        assert!(a.contains("threads:       1"), "{a}");
        assert!(b.contains("threads:       3"), "{b}");
        assert_eq!(
            std::fs::read_to_string(&a_path).unwrap(),
            std::fs::read_to_string(&b_path).unwrap()
        );
        assert!(matches!(
            run(&args("simulate --threads nope")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn manifest_scrub_makes_thread_counts_indistinguishable() {
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir1 = tmp("scrub-threads-1");
        let dir4 = tmp("scrub-threads-4");
        for (threads, dir) in [(1, &dir1), (4, &dir4)] {
            run(&args(&format!(
                "simulate --count 4 --duration 120 --seed 6 --threads {threads} --telemetry {}",
                dir.display()
            )))
            .unwrap();
        }
        let scrub = |dir: &PathBuf| {
            run(&args(&format!(
                "manifest scrub {}",
                dir.join("simulate.manifest.json").display()
            )))
            .unwrap()
        };
        let one = scrub(&dir1);
        let four = scrub(&dir4);
        assert_eq!(one, four);
        assert!(!one.contains(".worker."), "scrub must drop worker metrics");
        // The unscrubbed 4-thread manifest does carry per-worker metrics.
        let raw = std::fs::read_to_string(dir4.join("simulate.manifest.json")).unwrap();
        assert!(raw.contains("sim.worker.0.step_us"), "{raw}");
        // --out writes instead of printing.
        let out_path = tmp("scrubbed.json");
        let msg = run(&args(&format!(
            "manifest scrub {} --out {}",
            dir1.join("simulate.manifest.json").display(),
            out_path.display()
        )))
        .unwrap();
        assert!(msg.contains("wrote"));
        assert_eq!(std::fs::read_to_string(&out_path).unwrap(), one);
        assert!(matches!(run(&args("manifest")), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args("manifest scrub")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("manifest scrub /nonexistent.json")),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn experiments_run_all_renders_every_entry() {
        let json_dir = tmp("run-all-json");
        let out = run(&args(&format!(
            "experiments run-all --quick --count 4 --duration 120 --seed 3 --json {}",
            json_dir.display()
        )))
        .unwrap();
        let registry = dummyloc_ext::experiments::registry_with_extensions();
        for name in registry.names() {
            assert!(out.contains(&format!("== {name} ==")), "missing {name}");
            let json = std::fs::read_to_string(json_dir.join(format!("{name}.json"))).unwrap();
            assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
        }
        assert!(out.contains(&format!("wrote {} JSON reports", registry.len())));
    }

    #[test]
    fn simulate_checkpoint_resume_is_byte_identical() {
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ckpt_dir = tmp("sim-ckpt");
        std::fs::remove_dir_all(&ckpt_dir).ok();
        let base = "simulate --count 5 --duration 240 --seed 11 --generator mln";
        // The uninterrupted reference run.
        let full_json = tmp("sim-full.json");
        run(&args(&format!(
            "{base} --threads 2 --json {}",
            full_json.display()
        )))
        .unwrap();
        // A capturing run: every round rolls latest.ckpt, and the final
        // round is never captured, so the file ends up holding a genuine
        // mid-run state (round total-1).
        let out = run(&args(&format!(
            "{base} --threads 2 --checkpoint {} --checkpoint-every 1",
            ckpt_dir.display()
        )))
        .unwrap();
        assert!(out.contains("checkpoints:"), "{out}");
        let ckpt = SimCheckpoint::read_from(&ckpt_dir.join("latest.ckpt")).unwrap();
        assert!(ckpt.completed_rounds < ckpt.total_rounds);
        // Resume at a *different* thread count with telemetry: the JSON
        // summary must be byte-identical and the manifest must record
        // lineage.
        let resumed_json = tmp("sim-resumed.json");
        let tele_dir = tmp("sim-resumed-tele");
        let out = run(&args(&format!(
            "{base} --threads 3 --checkpoint {} --resume --json {} --telemetry {}",
            ckpt_dir.display(),
            resumed_json.display(),
            tele_dir.display()
        )))
        .unwrap();
        assert!(
            out.contains(&format!("resumed:       round {}", ckpt.completed_rounds)),
            "{out}"
        );
        assert_eq!(
            std::fs::read_to_string(&full_json).unwrap(),
            std::fs::read_to_string(&resumed_json).unwrap()
        );
        let manifest: dummyloc_telemetry::RunManifest = serde_json::from_str(
            &std::fs::read_to_string(tele_dir.join("simulate.manifest.json")).unwrap(),
        )
        .unwrap();
        let lineage = manifest.resume.expect("resumed run records lineage");
        assert_eq!(lineage.resumed_at_round, ckpt.completed_rounds as u64);
        assert_eq!(lineage.parent, format!("{:016x}", ckpt.digest().unwrap()));
        // --resume without a checkpoint file starts fresh rather than
        // failing, so crash-loop scripts can pass it unconditionally.
        std::fs::remove_dir_all(&ckpt_dir).ok();
        let out = run(&args(&format!(
            "{base} --checkpoint {} --resume",
            ckpt_dir.display()
        )))
        .unwrap();
        assert!(out.contains("started fresh"), "{out}");
        // The flags demand a directory to act on.
        assert!(matches!(
            run(&args("simulate --count 2 --duration 60 --resume")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(
                "simulate --count 2 --duration 60 --checkpoint-every 2"
            )),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn experiment_report_cache_reuses_on_resume() {
        let dir = tmp("exp-cache");
        std::fs::remove_dir_all(&dir).ok();
        let cmd = format!("experiment table1 --quick --checkpoint {}", dir.display());
        let first = run(&args(&cmd)).unwrap();
        assert!(dir.join("table1.report.json").exists());
        // A resume reuses the cached report verbatim (and says so).
        let second = run(&args(&format!("{cmd} --resume"))).unwrap();
        assert!(second.contains("reused cached report"), "{second}");
        assert!(second.starts_with(first.trim_end()));
        // A different seed changes the key, so the cache misses and the
        // stale entry is replaced rather than reused.
        let reseeded = run(&args(&format!("{cmd} --resume --seed 7"))).unwrap();
        assert!(!reseeded.contains("reused"), "{reseeded}");
        assert!(matches!(
            run(&args("experiment table1 --quick --resume")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_rejects_bad_wal_fsync_policy() {
        assert!(matches!(
            run(&args("serve --wal /tmp/x.wal --wal-fsync sometimes")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("serve --wal /tmp/x.wal --wal-fsync every-0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn simulate_rejects_bad_generator() {
        assert!(matches!(
            run(&args("simulate --count 2 --duration 60 --generator warp")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn experiment_quick_runs_fig2_and_table1() {
        // The cheap, workload-independent artifacts keep this test fast.
        let out = run(&args("experiment fig2 --quick")).unwrap();
        assert!(out.contains("|AS_F|"));
        let out = run(&args("experiment table1 --quick")).unwrap();
        assert!(out.contains("congestion"));
        assert!(matches!(
            run(&args("experiment fig99")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&args("experiment")), Err(CliError::Usage(_))));
    }

    #[test]
    fn render_writes_svg() {
        let fleet_path = tmp("renderfleet.csv");
        run(&args(&format!(
            "workload --count 3 --duration 120 --out {}",
            fleet_path.display()
        )))
        .unwrap();
        let svg_path = tmp("tracks.svg");
        let msg = run(&args(&format!(
            "render --workload {} --out {}",
            fleet_path.display(),
            svg_path.display()
        )))
        .unwrap();
        assert!(msg.contains("3 tracks"));
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 3);
    }

    #[test]
    fn missing_workload_file_is_runtime_error() {
        assert!(matches!(
            run(&args("simulate --workload /nonexistent/fleet.csv")),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn loadgen_drives_an_in_process_server() {
        let area = dummyloc_geo::BBox::new(
            dummyloc_geo::Point::new(0.0, 0.0),
            dummyloc_geo::Point::new(2000.0, 2000.0),
        )
        .unwrap();
        let handle = dummyloc_server::spawn(
            dummyloc_server::ServerConfig::default(),
            dummyloc_lbs::PoiDatabase::generate(area, 80, 42),
        )
        .unwrap();
        let json_path = tmp("loadgen.json");
        let out = run(&args(&format!(
            "loadgen --addr {} --users 3 --rounds 4 --dummies 2 --generator mln \
             --query nearest --seed 5 --json {}",
            handle.addr(),
            json_path.display()
        )))
        .unwrap();
        let report: dummyloc_server::LoadgenReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.sent, 12);
        // Retries absorb any bounces: every query ends answered.
        assert_eq!(report.answered, 12);
        assert_eq!(report.user_errors, 0);
        assert_eq!(report.per_user_digest.len(), 3);
        // --json wrote the same report to disk.
        let on_disk = std::fs::read_to_string(&json_path).unwrap();
        assert_eq!(on_disk, out);
        let stats = handle.shutdown().stats;
        // Fault-free, no overload: one server-side request per query.
        assert_eq!(stats.requests, 12);
        // Each request carried 2 dummies + the true position.
        assert_eq!(stats.positions, stats.requests * 3);
    }

    #[test]
    fn experiments_list_and_run() {
        let listing = run(&args("experiments list")).unwrap();
        assert!(listing.contains("fig7"));
        assert!(listing.contains("adoption"));
        assert!(listing.contains("ubiquity"));
        // The human-facing listing groups by family.
        assert!(listing.contains("sim — paper artifacts:"), "{listing}");
        assert!(listing.contains("ext — extensions beyond the paper:"));
        assert!(listing.contains("attack — adversary pipeline:"));
        let names = run(&args("experiments list --names")).unwrap();
        // The scriptable form stays flat: bare names, no headers.
        assert!(!names.contains("paper artifacts"));
        let names: Vec<&str> = names.lines().collect();
        assert_eq!(names.len(), 17);
        assert_eq!(names[0], "fig7");
        assert_eq!(names[12], "adoption");
        assert_eq!(names[13], "attack-random");
        assert_eq!(names[16], "attack-linkage");
        // `experiments run` and the `experiment` alias agree.
        let via_run = run(&args("experiments run fig2 --quick")).unwrap();
        assert!(via_run.contains("|AS_F|"));
        assert_eq!(via_run, run(&args("experiment fig2 --quick")).unwrap());
        // A bad name reports the full registry.
        let err = run(&args("experiments run fig99")).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(m) if m.contains("mix-zones")),
            "{err}"
        );
        assert!(matches!(run(&args("experiments")), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args("experiments frobnicate")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("experiments run")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn attack_decodes_a_durable_store() {
        use dummyloc_store::{LogStore, LogStoreConfig, Storage, StoreRecord};
        let dir = tmp("attack-store");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut store, _info) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        // Candidate 0 teleports around the area; candidate 1 walks.
        for t in 0u64..10 {
            store
                .append(StoreRecord {
                    t: t as f64,
                    seq: t,
                    request_id: None,
                    request: dummyloc_core::client::Request {
                        pseudonym: "u-0".into(),
                        positions: vec![
                            dummyloc_geo::Point::new(
                                (t * 701 % 1900) as f64,
                                (t * 997 % 1900) as f64,
                            ),
                            dummyloc_geo::Point::new(100.0 + t as f64 * 60.0, 500.0),
                        ],
                    },
                })
                .unwrap();
        }
        store.flush().unwrap();
        drop(store);

        let json_path = tmp("attack-report.json");
        let out = run(&args(&format!(
            "attack {} --json {}",
            dir.display(),
            json_path.display()
        )))
        .unwrap();
        assert!(out.contains("1 pseudonym streams"), "{out}");
        assert!(out.contains("u-0"), "{out}");
        let reports: Vec<dummyloc_attack::PseudonymReport> =
            serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].guess, 1);
        assert_eq!(reports[0].plausible, 1);

        // Telemetry lands a manifest carrying the attack counters.
        let tdir = tmp("attack-telemetry");
        run(&args(&format!(
            "attack {} --telemetry {}",
            dir.display(),
            tdir.display()
        )))
        .unwrap();
        let manifest: dummyloc_telemetry::RunManifest = serde_json::from_str(
            &std::fs::read_to_string(tdir.join("attack.manifest.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(manifest.tool, "attack");
        assert_eq!(manifest.metrics.counter("attack.streams"), Some(1));
        assert_eq!(manifest.metrics.counter("attack.rounds"), Some(10));

        // Usage errors: missing dir, flags before dir, bad tuning.
        assert!(matches!(run(&args("attack")), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args("attack --grid 8")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&format!("attack {} --grid 0", dir.display()))),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&format!("attack {} --max-speed -1", dir.display()))),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn metrics_scrapes_a_live_server_and_telemetry_writes_a_manifest() {
        let area = dummyloc_geo::BBox::new(
            dummyloc_geo::Point::new(0.0, 0.0),
            dummyloc_geo::Point::new(2000.0, 2000.0),
        )
        .unwrap();
        let handle = dummyloc_server::spawn(
            dummyloc_server::ServerConfig::default(),
            dummyloc_lbs::PoiDatabase::generate(area, 80, 42),
        )
        .unwrap();
        let dir = tmp("telemetry-run");
        let out = run(&args(&format!(
            "loadgen --addr {} --users 2 --rounds 3 --seed 9 --telemetry {}",
            handle.addr(),
            dir.display()
        )))
        .unwrap();
        let report: dummyloc_server::LoadgenReport = serde_json::from_str(&out).unwrap();
        assert_eq!(report.answered, 6);
        // The manifest landed next to the event stream and carries the
        // loadgen counters.
        let manifest: dummyloc_telemetry::RunManifest = serde_json::from_str(
            &std::fs::read_to_string(dir.join("loadgen.manifest.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(manifest.tool, "loadgen");
        assert_eq!(manifest.seed, 9);
        assert_eq!(manifest.metrics.counter("loadgen.answered"), Some(6));
        assert_eq!(
            manifest
                .metrics
                .histogram("loadgen.latency_us")
                .unwrap()
                .count,
            6
        );
        let events = std::fs::read_to_string(dir.join("loadgen.events.jsonl")).unwrap();
        assert_eq!(events.matches("user.done").count(), 2);
        // The metrics command scrapes non-zero server counters live.
        let text = run(&args(&format!("metrics {}", handle.addr()))).unwrap();
        assert!(text.contains("server.requests"), "{text}");
        let json = run(&args(&format!("metrics {} --json", handle.addr()))).unwrap();
        let snap: dummyloc_telemetry::RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap.counter("server.requests"), Some(6));
        assert!(snap.histogram("server.latency.next_bus").unwrap().count > 0);
        handle.shutdown();
        assert!(matches!(run(&args("metrics")), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args("loadgen --telemetry")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn simulate_with_telemetry_writes_phase_timings() {
        let dir = tmp("telemetry-sim");
        let out = run(&args(&format!(
            "simulate --count 4 --duration 120 --telemetry {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("wrote telemetry"), "{out}");
        let manifest: dummyloc_telemetry::RunManifest = serde_json::from_str(
            &std::fs::read_to_string(dir.join("simulate.manifest.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(manifest.tool, "simulate");
        let rounds = manifest.metrics.counter("sim.rounds").unwrap();
        assert!(rounds > 0);
        assert_eq!(
            manifest
                .metrics
                .histogram("sim.phase.dummy_gen_us")
                .unwrap()
                .count,
            rounds
        );
        assert_eq!(manifest.throughput.events, rounds);
        // `--telemetry none` disables the manifest instead of writing
        // into a directory literally named "none".
        let out = run(&args("simulate --count 4 --duration 120 --telemetry none")).unwrap();
        assert!(!out.contains("wrote telemetry"), "{out}");
        assert!(!Path::new("none").exists());
    }

    #[test]
    fn serve_and_loadgen_validate_new_knobs() {
        // Builder validation surfaces as a usage error before any server
        // starts (or any connection is attempted).
        assert!(matches!(
            run(&args("serve --workers 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("serve --max-connections 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("serve --fault-drop 1.5")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("loadgen --retries 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("loadgen --retry-jitter 7")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("loadgen --users 0")),
            Err(CliError::Usage(_))
        ));
        // Overload knobs go through the same builders.
        assert!(matches!(
            run(&args("loadgen --rate -3")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("loadgen --rate 100 --batch 4")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("loadgen --breaker-threshold 2 --breaker-open-ms 0")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("serve --drain-file")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn store_subcommands_round_trip() {
        use dummyloc_store::StoreRecord;
        let dir = tmp("store-rt");
        let dir2 = tmp("store-rt-copy");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
        // Seed a JSONL snapshot (with one idempotent duplicate) and import it.
        let jsonl = tmp("store-rt.jsonl");
        let mut body = String::new();
        for (pseudonym, seq, id) in [("u1", 0, 1), ("u2", 1, 1), ("u1", 2, 2), ("u1", 3, 2)] {
            let r = StoreRecord {
                t: seq as f64,
                seq,
                request_id: Some(id),
                request: dummyloc_core::client::Request {
                    pseudonym: pseudonym.into(),
                    positions: vec![dummyloc_geo::Point::new(seq as f64, 5.0)],
                },
            };
            body.push_str(&serde_json::to_string(&r).unwrap());
            body.push('\n');
        }
        std::fs::write(&jsonl, body).unwrap();
        let out = run(&args(&format!(
            "store import {} --in {}",
            dir.display(),
            jsonl.display()
        )))
        .unwrap();
        assert!(out.contains("imported 3 records"), "{out}");
        assert!(out.contains("1 duplicates skipped"), "{out}");

        let stats = run(&args(&format!("store stats {} --json", dir.display()))).unwrap();
        assert!(stats.contains("\"total_records\": 3"), "{stats}");
        let digests = run(&args(&format!("store digests {}", dir.display()))).unwrap();
        assert_eq!(digests.lines().count(), 2, "{digests}");
        assert!(digests.starts_with("u1 "), "{digests}");

        // Export → import into a fresh store must preserve the digests,
        // and compacting either store must not change them.
        let export = tmp("store-rt-export.jsonl");
        let out = run(&args(&format!(
            "store export {} --out {} --chunk 2",
            dir.display(),
            export.display()
        )))
        .unwrap();
        assert!(out.contains("exported 3 records"), "{out}");
        run(&args(&format!(
            "store import {} --in {}",
            dir2.display(),
            export.display()
        )))
        .unwrap();
        let copy = run(&args(&format!("store digests {}", dir2.display()))).unwrap();
        assert_eq!(copy, digests);
        let out = run(&args(&format!("store compact {}", dir.display()))).unwrap();
        assert!(out.contains("compacted"), "{out}");
        let after = run(&args(&format!("store digests {}", dir.display()))).unwrap();
        assert_eq!(after, digests);
    }

    #[test]
    fn store_usage_errors() {
        assert!(matches!(run(&args("store")), Err(CliError::Usage(_))));
        assert!(matches!(run(&args("store stats")), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args("store stats --json")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("store vacuum /tmp/nope")),
            Err(CliError::Usage(_))
        ));
        let dir = tmp("store-usage");
        assert!(matches!(
            run(&args(&format!("store import {}", dir.display()))),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&format!(
                "store import {} --in a --wal b",
                dir.display()
            ))),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&format!("store export {}", dir.display()))),
            Err(CliError::Usage(_))
        ));
        // Serve-side validation: a zero flush threshold is rejected by the
        // options builder before any socket is bound.
        assert!(matches!(
            run(&args("serve --store /tmp/x --store-flush-bytes 0")),
            Err(CliError::Usage(_))
        ));
        // A one-segment "tier" can never terminate: compaction would
        // rewrite the same segment forever. 0 (off) and >= 2 are valid.
        assert!(matches!(
            run(&args("serve --store /tmp/x --store-compact-tiers 1")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_and_loadgen_reject_bad_flags() {
        assert!(matches!(
            run(&args("loadgen --generator warp")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("loadgen --query palmistry")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args("serve --workers nine")),
            Err(CliError::Usage(_))
        ));
    }
}
