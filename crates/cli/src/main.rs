//! `dummyloc` binary entry point; all logic lives in the library half.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dummyloc_cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(e @ dummyloc_cli::CliError::Usage(_)) => {
            eprintln!("{e}\n\n{}", dummyloc_cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
