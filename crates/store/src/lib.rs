//! Pluggable storage for observer state.
//!
//! The paper's honest-but-curious provider retains every `1+k`-position
//! request stream it ever receives; the adversary pipeline replays those
//! streams against trackers. Everywhere else in the workspace that state
//! lives in RAM ([`MemoryBackend`], extracted verbatim from the old
//! `ObserverLog` internals) — this crate adds a durable sibling,
//! [`LogStore`], an embedded log-structured store so a provider restart
//! recovers from a compact on-disk image instead of replaying its entire
//! write-ahead log:
//!
//! * [`Storage`] — the backend trait: append a report, scan a
//!   pseudonym's stream, snapshot/restore the whole log, and stable
//!   per-stream FNV-1a digests (bit-exact across backends, the currency
//!   of every crash-recovery proof in this repo),
//! * [`memory`] — the in-memory map, byte-for-byte the semantics the
//!   provider always had (stable `(time, seq)` merges, per-pseudonym
//!   idempotent request-id dedup, borrowed stream views),
//! * [`segment`] — length-prefixed FNV-checksummed segment files written
//!   in `(pseudonym, seq)`-sorted runs, with a buffered reader for cold
//!   scans ([`segment::SegmentReader`]),
//! * [`manifest`] — the checksummed JSON manifest that makes flushes and
//!   compactions atomic (write segment → fsync → commit manifest via
//!   tmp + rename) and carries per-stream recovery state: record count,
//!   running digest, last sequence number and the seen request-id set,
//! * [`log`] — [`LogStore`]: memtable + threshold flush + explicit
//!   (background-free) compaction over the two modules above.
//!
//! # Recovery contract
//!
//! [`Storage::append`] callers that intend to recover by WAL *tail*
//! replay must append in nondecreasing `seq` order (the server
//! serializes sequence assignment and append under one lock). Then at
//! any crash point the durable store holds exactly the records with
//! `seq <= last_durable_seq()`, and replaying only WAL records past that
//! sequence number reconstructs the identical per-stream digests that a
//! full WAL replay into a [`MemoryBackend`] would produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io;
use std::path::PathBuf;

use dummyloc_core::client::Request;
use serde::{Deserialize, Serialize};

pub mod digest;
pub mod log;
pub mod manifest;
pub mod memory;
pub mod segment;
pub mod vfs;

pub use log::{
    LogStore, LogStoreConfig, RecoveryInfo, DEFAULT_COMPACT_TIERS, DEFAULT_FLUSH_THRESHOLD_BYTES,
};
pub use memory::{MemoryBackend, StreamView, TimeIter};
pub use vfs::{real_vfs, FaultVfs, RealVfs, Vfs, VfsFile};

/// One observed report: the unit every backend stores.
///
/// Mirrors the server's WAL record — a receive time, the globally
/// monotone arrival sequence number, the idempotent request id (when the
/// protocol supplied one) and the full `1+k`-position request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreRecord {
    /// Receive time (simulation seconds).
    pub t: f64,
    /// Global arrival sequence number.
    pub seq: u64,
    /// Idempotent request id, if the ingest path carried one.
    pub request_id: Option<u64>,
    /// The full request as received.
    pub request: Request,
}

/// What [`Storage::append`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendOutcome {
    /// `false` when the record was an idempotent duplicate (same
    /// pseudonym, same request id) and nothing was stored.
    pub recorded: bool,
    /// `true` when the append pushed the memtable past its threshold and
    /// a flush ran. Callers pairing the store with a WAL truncate the
    /// WAL when they see this.
    pub flushed: bool,
}

/// What a [`Storage::flush`] wrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Records moved from the memtable into the new segment.
    pub records: u64,
    /// Bytes of the new segment file (0 when nothing was flushed).
    pub bytes: u64,
    /// File name of the new segment, when one was written.
    pub segment: Option<String>,
}

/// What a [`Storage::compact`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Segment files before compaction.
    pub segments_before: u64,
    /// Segment files after compaction (1, or unchanged when there was
    /// nothing to merge).
    pub segments_after: u64,
    /// Durable records carried through the merge.
    pub records: u64,
    /// Bytes of the merged segment (0 when compaction was a no-op).
    pub bytes: u64,
}

/// Point-in-time counters for a backend, serializable for `store stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Backend name: `"memory"` or `"log"`.
    pub backend: String,
    /// Segment files currently referenced by the manifest.
    pub segments: u64,
    /// Total bytes across referenced segment files.
    pub segment_bytes: u64,
    /// Records durable in segments.
    pub durable_records: u64,
    /// Records still in the memtable.
    pub memtable_records: u64,
    /// Approximate encoded bytes held in the memtable.
    pub memtable_bytes: u64,
    /// Durable + memtable records.
    pub total_records: u64,
    /// Distinct pseudonym streams.
    pub streams: u64,
    /// Highest sequence number appended (durable or not).
    pub last_seq: Option<u64>,
    /// Highest sequence number durable in segments.
    pub last_durable_seq: Option<u64>,
    /// Flushes performed by this instance.
    pub flushes: u64,
    /// Compactions performed by this instance.
    pub compactions: u64,
    /// Size-tiered (background-policy) compactions performed by this
    /// instance.
    pub tiered_compactions: u64,
    /// Manifest-commit directory fsyncs that failed (the commit itself
    /// succeeded; its durability could not be confirmed).
    pub dir_fsync_errors: u64,
}

/// Everything that can go wrong in a storage backend.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure while touching `path`.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A file failed validation (bad magic, checksum, or structure).
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// A configuration value failed validation.
    Config {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store i/o error at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, message } => {
                write!(f, "store corruption in {}: {message}", path.display())
            }
            StoreError::Config { message } => write!(f, "invalid store configuration: {message}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type StoreResult<T> = Result<T, StoreError>;

/// A backend for observer state.
///
/// Two implementations ship: [`MemoryBackend`] (the provider's historic
/// in-RAM map, zero behavior change) and [`LogStore`] (durable,
/// log-structured). The contract both uphold:
///
/// * **Dedup** — a record whose `(pseudonym, request_id)` pair was
///   already recorded is dropped ([`AppendOutcome::recorded`] false),
///   exactly the provider's idempotent-retry semantics.
/// * **Digests** — [`Storage::stream_digest`] folds a pseudonym's
///   records in stream order with the same FNV-1a recipe regardless of
///   backend (see [`digest`]), so cross-backend equality checks are
///   byte-exact.
/// * **Seq order** — callers that recover via WAL-tail replay must
///   append in nondecreasing `seq` order (see the crate docs).
pub trait Storage: Send + Sync + fmt::Debug {
    /// Appends one record; dedups by `(pseudonym, request_id)`.
    fn append(&mut self, record: StoreRecord) -> StoreResult<AppendOutcome>;

    /// All records of one pseudonym in stream (`seq`) order. Unknown
    /// pseudonyms yield an empty vector.
    fn scan(&self, pseudonym: &str) -> StoreResult<Vec<StoreRecord>>;

    /// Streams one pseudonym's records in `seq` order without
    /// materializing the whole stream up front — the cold-scan path the
    /// attack pipeline walks over recovered server images, sized so a
    /// log bigger than RAM can still be scanned. Unknown pseudonyms
    /// yield an empty iterator; decode failures surface as `Err` items.
    ///
    /// The default implementation falls back to [`Storage::scan`];
    /// [`MemoryBackend`] and [`LogStore`] override it with genuinely
    /// incremental iterators (the log store k-way-merges its segment
    /// readers with the memtable instead of loading every segment).
    fn scan_stream<'a>(
        &'a self,
        pseudonym: &str,
    ) -> StoreResult<Box<dyn Iterator<Item = StoreResult<StoreRecord>> + 'a>> {
        Ok(Box::new(self.scan(pseudonym)?.into_iter().map(Ok)))
    }

    /// Every record in the store in global `seq` order — the export path.
    fn snapshot(&self) -> StoreResult<Vec<StoreRecord>>;

    /// Bulk-appends a snapshot, returning `(recorded, duplicates)` — the
    /// import path.
    fn restore(&mut self, records: Vec<StoreRecord>) -> StoreResult<(u64, u64)> {
        let mut recorded = 0u64;
        let mut duplicates = 0u64;
        for record in records {
            if self.append(record)?.recorded {
                recorded += 1;
            } else {
                duplicates += 1;
            }
        }
        Ok((recorded, duplicates))
    }

    /// Pseudonyms in order of first appearance (owned; the memory
    /// backend also offers a borrowed view).
    fn pseudonym_list(&self) -> Vec<String>;

    /// Total records stored.
    fn len(&self) -> u64;

    /// Whether nothing has been stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest sequence number appended, durable or not.
    fn last_seq(&self) -> Option<u64>;

    /// Highest sequence number that would survive `kill -9` right now
    /// (`None` for in-memory backends, which lose everything).
    fn last_durable_seq(&self) -> Option<u64>;

    /// FNV-1a digest of one pseudonym's stream; `None` when unknown.
    fn stream_digest(&self, pseudonym: &str) -> Option<u64>;

    /// [`Storage::stream_digest`] for every pseudonym, sorted by
    /// pseudonym — the canonical whole-log fingerprint.
    fn stream_digests(&self) -> Vec<(String, u64)>;

    /// Forces buffered records to durable storage (no-op for memory).
    fn flush(&mut self) -> StoreResult<FlushOutcome>;

    /// Merges all durable segments into one sorted run (no-op for
    /// memory). Digests and counts are invariant under compaction.
    fn compact(&mut self) -> StoreResult<CompactOutcome>;

    /// Point-in-time counters.
    fn store_stats(&self) -> StoreStats;

    /// Downcast hook: `Some` when this backend is the in-memory map,
    /// unlocking its borrowed-slice APIs (`requests_of`, `stream`, …).
    fn as_memory(&self) -> Option<&MemoryBackend> {
        None
    }

    /// Mutable variant of [`Storage::as_memory`].
    fn as_memory_mut(&mut self) -> Option<&mut MemoryBackend> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::Point;

    fn record(pseudonym: &str, seq: u64, id: Option<u64>) -> StoreRecord {
        StoreRecord {
            t: seq as f64 * 30.0,
            seq,
            request_id: id,
            request: Request {
                pseudonym: pseudonym.into(),
                positions: vec![Point::new(seq as f64, 1.0), Point::new(2.0, seq as f64)],
            },
        }
    }

    #[test]
    fn restore_counts_duplicates() {
        let mut backend = MemoryBackend::default();
        let records = vec![
            record("a", 0, Some(1)),
            record("a", 1, Some(1)), // duplicate id for "a"
            record("b", 2, Some(1)), // ids are scoped per pseudonym
        ];
        let (recorded, duplicates) = backend.restore(records).unwrap();
        assert_eq!((recorded, duplicates), (2, 1));
        assert_eq!(backend.len(), 2);
    }

    #[test]
    fn store_record_json_round_trips() {
        let r = record("p", 7, Some(9));
        let json = serde_json::to_string(&r).unwrap();
        let back: StoreRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn error_display_names_the_path() {
        let e = StoreError::Corrupt {
            path: PathBuf::from("/x/MANIFEST"),
            message: "bad checksum".into(),
        };
        assert!(e.to_string().contains("/x/MANIFEST"));
        let e = StoreError::Config {
            message: "zero threshold".into(),
        };
        assert!(e.to_string().contains("zero threshold"));
    }
}
