//! Segment files: the durable unit of the log-structured store.
//!
//! A segment is one sorted run — records ordered by `(pseudonym, seq)`
//! — laid out as a magic header followed by length-prefixed,
//! FNV-checksummed frames, the same framing discipline the server's WAL
//! uses:
//!
//! ```text
//! [8-byte magic "dlseg01\n"]
//! repeat: [u32 payload_len LE][u64 fnv1a(payload) LE][payload]
//! ```
//!
//! The payload is a compact fixed-layout binary encoding (not JSON —
//! recovery-path decoding must be cheap):
//!
//! ```text
//! [u32 pseudonym_len][pseudonym utf-8]
//! [u64 seq][u64 t.to_bits()]
//! [u8 has_request_id][u64 request_id]   // id present only when flag = 1
//! [u32 n_positions] n × ([u64 x.to_bits()][u64 y.to_bits()])
//! ```
//!
//! Unlike the WAL — where a torn tail is expected and truncated — a
//! segment is only ever referenced by the manifest *after* it was fully
//! written and fsynced, so any decode failure inside a referenced
//! segment is reported as corruption, never silently skipped. Decoders
//! here never panic on arbitrary bytes (fuzzed in
//! `tests/tests/fuzz_no_panic.rs`).
//!
//! Cold scans go through [`SegmentReader`], a buffered streaming reader.
//! An mmap-backed reader would slot in behind the same iterator shape,
//! but the workspace forbids `unsafe`, so buffered I/O is the one
//! implementation.

use std::io::{self, BufReader, Read};
use std::path::Path;

use dummyloc_core::client::Request;
use dummyloc_geo::Point;

use crate::digest::fnv1a;
use crate::vfs::{Vfs, VfsFile};
use crate::StoreRecord;

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"dlseg01\n";

/// Frame header: u32 length + u64 checksum.
pub const FRAME_HEADER_BYTES: usize = 4 + 8;

/// Upper bound on a single record payload — anything larger is corrupt.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// Encodes one record's payload (no frame header).
pub fn encode_payload(record: &StoreRecord) -> Vec<u8> {
    let pseudonym = record.request.pseudonym.as_bytes();
    let mut out = Vec::with_capacity(
        4 + pseudonym.len() + 8 + 8 + 9 + 4 + 16 * record.request.positions.len(),
    );
    out.extend_from_slice(&(pseudonym.len() as u32).to_le_bytes());
    out.extend_from_slice(pseudonym);
    out.extend_from_slice(&record.seq.to_le_bytes());
    out.extend_from_slice(&record.t.to_bits().to_le_bytes());
    match record.request_id {
        Some(id) => {
            out.push(1);
            out.extend_from_slice(&id.to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(record.request.positions.len() as u32).to_le_bytes());
    for p in &record.request.positions {
        out.extend_from_slice(&p.x.to_bits().to_le_bytes());
        out.extend_from_slice(&p.y.to_bits().to_le_bytes());
    }
    out
}

/// Byte cursor with checked little-endian reads — the never-panicking
/// substrate of [`decode_payload`].
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Decodes one payload. `None` on any structural violation: short input,
/// trailing bytes, invalid UTF-8 pseudonym, or a flag byte that is
/// neither 0 nor 1. Never panics.
pub fn decode_payload(bytes: &[u8]) -> Option<StoreRecord> {
    let mut c = Cursor { bytes, at: 0 };
    let pseudonym_len = c.u32()? as usize;
    if pseudonym_len > MAX_RECORD_BYTES {
        return None;
    }
    let pseudonym = std::str::from_utf8(c.take(pseudonym_len)?)
        .ok()?
        .to_string();
    let seq = c.u64()?;
    let t = f64::from_bits(c.u64()?);
    let request_id = match c.u8()? {
        0 => None,
        1 => Some(c.u64()?),
        _ => return None,
    };
    let n_positions = c.u32()? as usize;
    // A position costs 16 bytes; reject counts the input cannot hold
    // before allocating.
    if n_positions > bytes.len() / 16 + 1 {
        return None;
    }
    let mut positions = Vec::with_capacity(n_positions);
    for _ in 0..n_positions {
        let x = f64::from_bits(c.u64()?);
        let y = f64::from_bits(c.u64()?);
        positions.push(Point::new(x, y));
    }
    if !c.done() {
        return None;
    }
    Some(StoreRecord {
        t,
        seq,
        request_id,
        request: Request {
            pseudonym,
            positions,
        },
    })
}

/// Encodes one record as a framed entry: header + payload.
pub fn encode_frame(record: &StoreRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encodes a whole segment: magic + one frame per record, in the order
/// given (callers pass `(pseudonym, seq)`-sorted runs).
pub fn encode_segment(records: &[StoreRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SEGMENT_MAGIC);
    for r in records {
        out.extend_from_slice(&encode_frame(r));
    }
    out
}

/// Decodes a whole segment from bytes. Any violation — bad magic, torn
/// frame, checksum mismatch, malformed payload — is an error naming the
/// offset; arbitrary bytes never panic.
pub fn decode_segment(bytes: &[u8]) -> Result<Vec<StoreRecord>, String> {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err("bad segment magic".into());
    }
    let mut at = SEGMENT_MAGIC.len();
    let mut records = Vec::new();
    while at < bytes.len() {
        let Some(header) = bytes.get(at..at + FRAME_HEADER_BYTES) else {
            return Err(format!("torn frame header at offset {at}"));
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES {
            return Err(format!("oversized frame ({len} bytes) at offset {at}"));
        }
        let start = at + FRAME_HEADER_BYTES;
        let Some(payload) = bytes.get(start..start + len) else {
            return Err(format!("torn frame payload at offset {at}"));
        };
        if fnv1a(payload) != sum {
            return Err(format!("checksum mismatch at offset {at}"));
        }
        let Some(record) = decode_payload(payload) else {
            return Err(format!("malformed record payload at offset {at}"));
        };
        records.push(record);
        at = start + len;
    }
    Ok(records)
}

/// `io::Read` adapter over a [`VfsFile`] handle, so the buffered reader
/// below works over any [`Vfs`]. Each buffer refill is one VFS read op.
#[derive(Debug)]
struct VfsRead(Box<dyn VfsFile>);

impl Read for VfsRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

/// Buffered streaming reader over one segment file — the cold-scan path,
/// which never loads a whole segment into memory at once.
#[derive(Debug)]
pub struct SegmentReader {
    reader: BufReader<VfsRead>,
    offset: usize,
}

impl SegmentReader {
    /// Opens a segment file through `vfs` and validates its magic.
    pub fn open(vfs: &dyn Vfs, path: &Path) -> io::Result<Self> {
        let file = vfs.open_read(path)?;
        let mut reader = BufReader::new(VfsRead(file));
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != SEGMENT_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad segment magic",
            ));
        }
        Ok(SegmentReader {
            reader,
            offset: SEGMENT_MAGIC.len(),
        })
    }

    fn read_one(&mut self) -> Result<Option<StoreRecord>, String> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        match self.reader.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(format!("read error at offset {}: {e}", self.offset)),
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES {
            return Err(format!(
                "oversized frame ({len} bytes) at offset {}",
                self.offset
            ));
        }
        let mut payload = vec![0u8; len];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| format!("torn frame at offset {}: {e}", self.offset))?;
        if fnv1a(&payload) != sum {
            return Err(format!("checksum mismatch at offset {}", self.offset));
        }
        let record = decode_payload(&payload)
            .ok_or_else(|| format!("malformed record payload at offset {}", self.offset))?;
        self.offset += FRAME_HEADER_BYTES + len;
        Ok(Some(record))
    }
}

impl Iterator for SegmentReader {
    type Item = Result<StoreRecord, String>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pseudonym: &str, seq: u64, id: Option<u64>) -> StoreRecord {
        StoreRecord {
            t: seq as f64 * 30.0 + 0.25,
            seq,
            request_id: id,
            request: Request {
                pseudonym: pseudonym.into(),
                positions: vec![Point::new(seq as f64, -1.5), Point::new(0.0, seq as f64)],
            },
        }
    }

    #[test]
    fn payload_round_trips() {
        for r in [
            record("user-1", 0, Some(7)),
            record("", 42, None),
            StoreRecord {
                t: f64::NAN,
                seq: u64::MAX,
                request_id: Some(u64::MAX),
                request: Request {
                    pseudonym: "päron".into(),
                    positions: vec![],
                },
            },
        ] {
            let back = decode_payload(&encode_payload(&r)).unwrap();
            // NaN-safe comparison: compare bit patterns through re-encode.
            assert_eq!(encode_payload(&back), encode_payload(&r));
        }
    }

    #[test]
    fn payload_rejects_trailing_bytes_and_bad_flags() {
        let mut bytes = encode_payload(&record("p", 1, None));
        bytes.push(0);
        assert!(decode_payload(&bytes).is_none());
        let mut bytes = encode_payload(&record("p", 1, None));
        // Flag byte sits right after [4+len pseudonym][8 seq][8 t].
        let flag_at = 4 + 1 + 8 + 8;
        bytes[flag_at] = 2;
        assert!(decode_payload(&bytes).is_none());
        assert!(decode_payload(&[]).is_none());
    }

    #[test]
    fn segment_round_trips_and_rejects_corruption() {
        let records: Vec<StoreRecord> = (0..5).map(|k| record("p", k, Some(k))).collect();
        let bytes = encode_segment(&records);
        assert_eq!(decode_segment(&bytes).unwrap(), records);

        // Flip one payload byte: the checksum must catch it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(decode_segment(&bad).unwrap_err().contains("checksum"));

        // Truncate mid-frame: torn, not panicking.
        let torn = &bytes[..bytes.len() - 3];
        assert!(decode_segment(torn).unwrap_err().contains("torn"));

        // Wrong magic.
        assert!(decode_segment(b"not a segment")
            .unwrap_err()
            .contains("magic"));
        assert!(decode_segment(b"").unwrap_err().contains("magic"));
    }

    #[test]
    fn segment_reader_streams_the_same_records() {
        let dir = std::env::temp_dir().join("dummyloc-store-segtest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000001.seg");
        let records: Vec<StoreRecord> = (0..20).map(|k| record("q", k, None)).collect();
        std::fs::write(&path, encode_segment(&records)).unwrap();
        let streamed: Vec<StoreRecord> = SegmentReader::open(&crate::vfs::RealVfs, &path)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(streamed, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_reader_reports_torn_tails() {
        let dir = std::env::temp_dir().join("dummyloc-store-segtest-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000002.seg");
        let bytes = encode_segment(&[record("q", 0, None)]);
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let results: Vec<Result<StoreRecord, String>> =
            SegmentReader::open(&crate::vfs::RealVfs, &path)
                .unwrap()
                .collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].as_ref().unwrap_err().contains("torn"));
        std::fs::remove_file(&path).ok();
    }
}
