//! [`LogStore`]: the embedded log-structured backend.
//!
//! Writes buffer in an in-memory memtable (already framed, so flushing
//! is a concatenation); when the memtable crosses a byte threshold it is
//! flushed as one `(pseudonym, seq)`-sorted segment file and the
//! manifest is committed atomically. Compaction is explicit and
//! background-free (`dummyloc store compact`): all segments merge into
//! one sorted run, with digests and counts invariant by construction —
//! compaction rewrites files, never stream state.
//!
//! Crash windows, all of which recover to a consistent store:
//!
//! 1. crash while writing a segment → the manifest never referenced it;
//!    [`LogStore::open`] deletes the orphan,
//! 2. crash after the segment is fsynced but before the manifest commit
//!    → same as (1): the durable prefix is simply one flush shorter and
//!    the WAL tail one flush longer,
//! 3. crash after the manifest commit but before the caller truncates
//!    its WAL → harmless: tail replay filters records with
//!    `seq <= last_durable_seq`,
//! 4. crash mid-compaction → either the old manifest still references
//!    the old segments (the merged file is an orphan) or the new
//!    manifest references the merged file (the old segments are stale);
//!    both are cleaned at open and describe identical stream state.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::digest::{fold_report, FNV_OFFSET_BASIS};
use crate::manifest::{Manifest, SegmentMeta, StreamMeta};
use crate::segment::{encode_frame, SegmentReader, SEGMENT_MAGIC};
use crate::vfs::{real_vfs, Vfs};
use crate::{
    AppendOutcome, CompactOutcome, FlushOutcome, Storage, StoreError, StoreRecord, StoreResult,
    StoreStats,
};

/// Default memtable flush threshold: 1 MiB of framed record bytes.
pub const DEFAULT_FLUSH_THRESHOLD_BYTES: usize = 1 << 20;

/// Default size-tiered compaction trigger: merge a size tier once it
/// holds this many same-sized segments.
pub const DEFAULT_COMPACT_TIERS: usize = 4;

/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Where and how a [`LogStore`] lives on disk.
#[derive(Debug, Clone)]
pub struct LogStoreConfig {
    /// Store directory (created if missing).
    pub dir: PathBuf,
    /// Memtable size that triggers a flush on append.
    pub flush_threshold_bytes: usize,
    /// Same-sized segments per tier that trigger a size-tiered merge
    /// (0 disables tiered compaction; 1 is rejected — it would rewrite
    /// every segment forever).
    pub compact_tiers: usize,
    /// Filesystem every store syscall is routed through. Production
    /// configs carry [`crate::vfs::RealVfs`]; fault suites substitute
    /// [`crate::vfs::FaultVfs`].
    pub vfs: Arc<dyn Vfs>,
}

impl LogStoreConfig {
    /// A config with the default flush threshold, the default tier
    /// policy, and the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogStoreConfig {
            dir: dir.into(),
            flush_threshold_bytes: DEFAULT_FLUSH_THRESHOLD_BYTES,
            compact_tiers: DEFAULT_COMPACT_TIERS,
            vfs: real_vfs(),
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> StoreResult<()> {
        if self.flush_threshold_bytes == 0 {
            return Err(StoreError::Config {
                message: "flush_threshold_bytes must be at least 1".into(),
            });
        }
        if self.compact_tiers == 1 {
            return Err(StoreError::Config {
                message: "compact_tiers must be 0 (disabled) or at least 2".into(),
            });
        }
        Ok(())
    }
}

/// What [`LogStore::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Records already durable in segments.
    pub durable_records: u64,
    /// Referenced segment files.
    pub segments: u64,
    /// Pseudonym streams with durable state.
    pub streams: u64,
    /// Unreferenced segment files deleted (crash leftovers).
    pub orphans_removed: u64,
}

/// Durable per-stream state, mirrored from the committed manifest.
#[derive(Debug, Clone, Default)]
struct DurableStream {
    records: u64,
    digest: u64,
    last_seq: u64,
    ids: HashSet<u64>,
}

/// Buffered (not yet durable) per-stream state.
#[derive(Debug, Default)]
struct MemStream {
    /// Records with their already-encoded frames, in append (seq) order.
    records: Vec<(StoreRecord, Vec<u8>)>,
    ids: HashSet<u64>,
}

/// The embedded log-structured store. See the module docs for the
/// on-disk layout and crash-consistency argument.
#[derive(Debug)]
pub struct LogStore {
    config: LogStoreConfig,
    segments: Vec<SegmentMeta>,
    next_segment_id: u64,
    durable_records: u64,
    last_durable_seq: Option<u64>,
    /// Pseudonyms in first-appearance order (durable first, then
    /// memtable-only).
    order: Vec<String>,
    durable: HashMap<String, DurableStream>,
    mem: HashMap<String, MemStream>,
    mem_bytes: usize,
    mem_records: u64,
    last_seq: Option<u64>,
    flushes: u64,
    compactions: u64,
    tiered_compactions: u64,
    dir_fsync_errors: u64,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

impl LogStore {
    /// Opens (creating if needed) the store at `config.dir`: reads the
    /// committed manifest, restores per-stream recovery state, and
    /// deletes unreferenced segment files left by a crash mid-flush or
    /// mid-compaction.
    pub fn open(config: LogStoreConfig) -> StoreResult<(LogStore, RecoveryInfo)> {
        config.validate()?;
        let vfs = Arc::clone(&config.vfs);
        vfs.create_dir_all(&config.dir)
            .map_err(|e| io_err(&config.dir, e))?;
        let tmp = config.dir.join(MANIFEST_TMP);
        if vfs.exists(&tmp) {
            vfs.remove(&tmp).map_err(|e| io_err(&tmp, e))?;
        }
        let manifest_path = config.dir.join(MANIFEST_FILE);
        let manifest = if vfs.exists(&manifest_path) {
            let bytes = vfs
                .read(&manifest_path)
                .map_err(|e| io_err(&manifest_path, e))?;
            Manifest::decode(&bytes).map_err(|message| StoreError::Corrupt {
                path: manifest_path.clone(),
                message,
            })?
        } else {
            Manifest::default()
        };

        let referenced: HashSet<&str> = manifest.segments.iter().map(|s| s.file.as_str()).collect();
        let mut orphans_removed = 0u64;
        for name in vfs
            .read_dir(&config.dir)
            .map_err(|e| io_err(&config.dir, e))?
        {
            if name.starts_with("seg-")
                && name.ends_with(".seg")
                && !referenced.contains(name.as_str())
            {
                let path = config.dir.join(&name);
                vfs.remove(&path).map_err(|e| io_err(&path, e))?;
                orphans_removed += 1;
            }
        }
        for seg in &manifest.segments {
            let path = config.dir.join(&seg.file);
            if !vfs.exists(&path) {
                return Err(StoreError::Corrupt {
                    path,
                    message: "manifest references a missing segment".into(),
                });
            }
        }

        let mut order = Vec::with_capacity(manifest.streams.len());
        let mut durable = HashMap::with_capacity(manifest.streams.len());
        for s in &manifest.streams {
            order.push(s.pseudonym.clone());
            durable.insert(
                s.pseudonym.clone(),
                DurableStream {
                    records: s.records,
                    digest: s.digest,
                    last_seq: s.last_seq,
                    ids: s.ids.iter().copied().collect(),
                },
            );
        }
        let info = RecoveryInfo {
            durable_records: manifest.durable_records,
            segments: manifest.segments.len() as u64,
            streams: manifest.streams.len() as u64,
            orphans_removed,
        };
        let store = LogStore {
            last_seq: manifest.last_durable_seq,
            last_durable_seq: manifest.last_durable_seq,
            durable_records: manifest.durable_records,
            next_segment_id: manifest.next_segment_id,
            segments: manifest.segments,
            order,
            durable,
            mem: HashMap::new(),
            mem_bytes: 0,
            mem_records: 0,
            flushes: 0,
            compactions: 0,
            tiered_compactions: 0,
            dir_fsync_errors: 0,
            config,
        };
        Ok((store, info))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Per-stream seen request ids of the durable prefix — what a server
    /// preloads into its RAM shards after recovery so retries of
    /// pre-crash queries still dedup.
    pub fn seen_ids(&self) -> Vec<(String, Vec<u64>)> {
        self.order
            .iter()
            .filter_map(|p| {
                let d = self.durable.get(p)?;
                let mut ids: Vec<u64> = d.ids.iter().copied().collect();
                ids.sort_unstable();
                Some((p.clone(), ids))
            })
            .collect()
    }

    /// Flushes performed by this instance.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Compactions performed by this instance.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Size-tiered (background-policy) compactions performed by this
    /// instance.
    pub fn tiered_compactions(&self) -> u64 {
        self.tiered_compactions
    }

    /// Directory-fsync failures observed at manifest commits. The commit
    /// itself still succeeded (tmp write + fsync + rename all passed);
    /// this counts the cases where the *rename's* durability could not
    /// be confirmed — silent before, surfaced in `store stats` now.
    pub fn dir_fsync_errors(&self) -> u64 {
        self.dir_fsync_errors
    }

    fn manifest(&self) -> Manifest {
        Manifest {
            next_segment_id: self.next_segment_id,
            durable_records: self.durable_records,
            last_durable_seq: self.last_durable_seq,
            segments: self.segments.clone(),
            streams: self
                .order
                .iter()
                .filter_map(|p| {
                    let d = self.durable.get(p)?;
                    let mut ids: Vec<u64> = d.ids.iter().copied().collect();
                    ids.sort_unstable();
                    Some(StreamMeta {
                        pseudonym: p.clone(),
                        records: d.records,
                        digest: d.digest,
                        last_seq: d.last_seq,
                        ids,
                    })
                })
                .collect(),
        }
    }

    /// Atomically commits the manifest: tmp + fsync + rename + directory
    /// fsync. A directory-fsync failure does not fail the commit (the
    /// rename itself succeeded and the data is consistent either way),
    /// but it is no longer swallowed: it increments `dir_fsync_errors`,
    /// surfaced in [`StoreStats`] and `store stats`.
    fn commit_manifest(&mut self) -> StoreResult<()> {
        let tmp = self.config.dir.join(MANIFEST_TMP);
        let final_path = self.config.dir.join(MANIFEST_FILE);
        let bytes = self.manifest().encode();
        let vfs = Arc::clone(&self.config.vfs);
        {
            let f = vfs.create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        vfs.rename(&tmp, &final_path)
            .map_err(|e| io_err(&final_path, e))?;
        if vfs.sync_dir(&self.config.dir).is_err() {
            self.dir_fsync_errors += 1;
        }
        Ok(())
    }

    fn write_segment(&mut self, frames: &[&[u8]]) -> StoreResult<(String, u64)> {
        let name = format!("seg-{:06}.seg", self.next_segment_id);
        let path = self.config.dir.join(&name);
        let f = self
            .config
            .vfs
            .create(&path)
            .map_err(|e| io_err(&path, e))?;
        let mut bytes = SEGMENT_MAGIC.len() as u64;
        f.write_all(SEGMENT_MAGIC).map_err(|e| io_err(&path, e))?;
        for frame in frames {
            f.write_all(frame).map_err(|e| io_err(&path, e))?;
            bytes += frame.len() as u64;
        }
        f.sync_all().map_err(|e| io_err(&path, e))?;
        self.next_segment_id += 1;
        Ok((name, bytes))
    }

    fn flush_inner(&mut self) -> StoreResult<FlushOutcome> {
        if self.mem_records == 0 {
            return Ok(FlushOutcome::default());
        }
        // One sorted run: streams in sorted pseudonym order, records
        // within a stream in seq order.
        let mut names: Vec<String> = self.mem.keys().cloned().collect();
        names.sort_unstable();
        let mut mem = std::mem::take(&mut self.mem);
        for stream in mem.values_mut() {
            stream.records.sort_by_key(|(r, _)| r.seq);
        }
        let frames: Vec<&[u8]> = names
            .iter()
            .flat_map(|p| mem[p].records.iter().map(|(_, f)| f.as_slice()))
            .collect();
        let (file, bytes) = match self.write_segment(&frames) {
            Ok(v) => v,
            Err(e) => {
                // Put the memtable back: the records are not durable and
                // must not be dropped just because a flush failed.
                self.mem = mem;
                return Err(e);
            }
        };
        drop(frames);

        let records = self.mem_records;
        let mut max_seq = self.last_durable_seq;
        for p in &names {
            let stream = mem.remove(p).expect("listed stream");
            let d = self.durable.entry(p.clone()).or_insert_with(|| {
                // Pseudonym first seen in this memtable: the digest
                // starts at the FNV offset basis.
                DurableStream {
                    digest: FNV_OFFSET_BASIS,
                    ..DurableStream::default()
                }
            });
            for (record, _) in &stream.records {
                fold_report(&mut d.digest, record.t, &record.request);
                d.last_seq = d.last_seq.max(record.seq);
                max_seq = Some(max_seq.map_or(record.seq, |m| m.max(record.seq)));
            }
            d.records += stream.records.len() as u64;
            d.ids.extend(stream.ids);
        }
        self.segments.push(SegmentMeta {
            file: file.clone(),
            records,
            bytes,
        });
        self.durable_records += records;
        self.last_durable_seq = max_seq;
        self.mem_bytes = 0;
        self.mem_records = 0;
        self.commit_manifest()?;
        self.flushes += 1;
        Ok(FlushOutcome {
            records,
            bytes,
            segment: Some(file),
        })
    }

    fn read_all_segments(&self) -> StoreResult<Vec<StoreRecord>> {
        let mut all = Vec::with_capacity(self.durable_records as usize);
        for seg in &self.segments {
            let path = self.config.dir.join(&seg.file);
            let reader =
                SegmentReader::open(&*self.config.vfs, &path).map_err(|e| io_err(&path, e))?;
            for record in reader {
                all.push(record.map_err(|message| StoreError::Corrupt {
                    path: path.clone(),
                    message,
                })?);
            }
        }
        if all.len() as u64 != self.durable_records {
            return Err(StoreError::Corrupt {
                path: self.config.dir.join(MANIFEST_FILE),
                message: format!(
                    "segments hold {} records but the manifest says {}",
                    all.len(),
                    self.durable_records
                ),
            });
        }
        Ok(all)
    }

    fn memtable_records(&self, pseudonym: &str) -> impl Iterator<Item = &StoreRecord> {
        self.mem
            .get(pseudonym)
            .into_iter()
            .flat_map(|s| s.records.iter().map(|(r, _)| r))
    }

    /// Plans one size-tiered merge, or `None` when no tier is full.
    ///
    /// Segments bucket by the power-of-two order of their byte size
    /// ("same-sized" in STCS terms); the fullest bucket with at least
    /// `compact_tiers` members is merged. The plan only *reads* store
    /// state (plus reserving a segment id for the output file, so a
    /// concurrent flush can never collide with the merge's output name —
    /// a burned id on a failed merge is harmless). The expensive merge
    /// I/O in [`TieredPlan::merge`] then runs without any reference to
    /// the store: a background thread drops the store lock, merges, and
    /// re-locks only for [`LogStore::commit_tiered`].
    pub fn tiered_plan(&mut self) -> Option<TieredPlan> {
        if self.config.compact_tiers == 0 || self.segments.len() < self.config.compact_tiers {
            return None;
        }
        let mut tiers: HashMap<u32, Vec<SegmentMeta>> = HashMap::new();
        for seg in &self.segments {
            tiers
                .entry(size_tier(seg.bytes))
                .or_default()
                .push(seg.clone());
        }
        let inputs = tiers
            .into_values()
            .filter(|members| members.len() >= self.config.compact_tiers)
            .max_by_key(|members| members.len())?;
        let out_file = format!("seg-{:06}.seg", self.next_segment_id);
        self.next_segment_id += 1;
        Some(TieredPlan {
            inputs,
            out_file,
            dir: self.config.dir.clone(),
            vfs: Arc::clone(&self.config.vfs),
        })
    }

    /// Commits a finished tiered merge: splices the merged segment in
    /// place of its inputs and commits the manifest. Returns `Ok(None)`
    /// — merge discarded, its output removed — when the inputs are no
    /// longer all referenced (an explicit `compact()` ran underneath the
    /// background merge). Stream state is untouched: like explicit
    /// compaction, a tiered merge rewrites files, never history.
    pub fn commit_tiered(&mut self, merged: MergedSegment) -> StoreResult<Option<CompactOutcome>> {
        let input_names: HashSet<&str> = merged.inputs.iter().map(|s| s.file.as_str()).collect();
        let referenced = self
            .segments
            .iter()
            .filter(|s| input_names.contains(s.file.as_str()))
            .count();
        if referenced != merged.inputs.len() {
            // The store moved on while we merged; the output is an
            // orphan. Best effort: the next open deletes leftovers.
            let _ = self
                .config
                .vfs
                .remove(&self.config.dir.join(&merged.meta.file));
            return Ok(None);
        }
        let segments_before = self.segments.len() as u64;
        let first = self
            .segments
            .iter()
            .position(|s| input_names.contains(s.file.as_str()))
            .expect("inputs verified referenced");
        let old_segments = self.segments.clone();
        self.segments
            .retain(|s| !input_names.contains(s.file.as_str()));
        self.segments.insert(first, merged.meta.clone());
        if let Err(e) = self.commit_manifest() {
            // Roll the in-memory view back to the manifest that is
            // still on disk; the merged file becomes an orphan.
            self.segments = old_segments;
            let _ = self
                .config
                .vfs
                .remove(&self.config.dir.join(&merged.meta.file));
            return Err(e);
        }
        for seg in &merged.inputs {
            let _ = self.config.vfs.remove(&self.config.dir.join(&seg.file));
        }
        self.tiered_compactions += 1;
        Ok(Some(CompactOutcome {
            segments_before,
            segments_after: self.segments.len() as u64,
            records: merged.meta.records,
            bytes: merged.meta.bytes,
        }))
    }

    /// One full plan → merge → commit cycle, for callers without a
    /// background thread (tests, `dummyloc store compact --tiered`-style
    /// paths). `Ok(None)` when no tier is full.
    pub fn compact_tiered_once(&mut self) -> StoreResult<Option<CompactOutcome>> {
        let Some(plan) = self.tiered_plan() else {
            return Ok(None);
        };
        let merged = plan.merge()?;
        self.commit_tiered(merged)
    }
}

/// The size tier (power-of-two order of byte size) a segment falls in.
fn size_tier(bytes: u64) -> u32 {
    u64::BITS - bytes.max(1).leading_zeros()
}

/// A planned size-tiered merge: which segments to merge and where the
/// output goes. Produced under the store lock by
/// [`LogStore::tiered_plan`]; [`TieredPlan::merge`] is then safe to run
/// with no lock held at all — segment files are immutable once
/// referenced, and the output file is invisible until
/// [`LogStore::commit_tiered`] references it.
#[derive(Debug)]
pub struct TieredPlan {
    inputs: Vec<SegmentMeta>,
    out_file: String,
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
}

/// A merged-but-uncommitted segment: the output of [`TieredPlan::merge`],
/// fully written and fsynced but referenced by no manifest yet.
#[derive(Debug)]
pub struct MergedSegment {
    inputs: Vec<SegmentMeta>,
    meta: SegmentMeta,
}

impl TieredPlan {
    /// Input segments this plan will merge.
    pub fn inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Reads the input segments, merges them into one
    /// `(pseudonym, seq)`-sorted run, and writes + fsyncs the output
    /// file. Lock-free by construction (see the type docs).
    pub fn merge(&self) -> StoreResult<MergedSegment> {
        let mut all = Vec::new();
        for seg in &self.inputs {
            let path = self.dir.join(&seg.file);
            let reader = SegmentReader::open(&*self.vfs, &path).map_err(|e| io_err(&path, e))?;
            for record in reader {
                all.push(record.map_err(|message| StoreError::Corrupt {
                    path: path.clone(),
                    message,
                })?);
            }
        }
        all.sort_by(|a, b| {
            (a.request.pseudonym.as_str(), a.seq).cmp(&(b.request.pseudonym.as_str(), b.seq))
        });
        let path = self.dir.join(&self.out_file);
        let f = self.vfs.create(&path).map_err(|e| io_err(&path, e))?;
        let mut bytes = SEGMENT_MAGIC.len() as u64;
        f.write_all(SEGMENT_MAGIC).map_err(|e| io_err(&path, e))?;
        for record in &all {
            let frame = encode_frame(record);
            f.write_all(&frame).map_err(|e| io_err(&path, e))?;
            bytes += frame.len() as u64;
        }
        f.sync_all().map_err(|e| io_err(&path, e))?;
        Ok(MergedSegment {
            inputs: self.inputs.clone(),
            meta: SegmentMeta {
                file: self.out_file.clone(),
                records: all.len() as u64,
                bytes,
            },
        })
    }
}

/// Lazily walks one segment file yielding only `pseudonym`'s records.
///
/// Segments are written in `(pseudonym, seq)`-sorted runs (flush and
/// compaction both sort), so a pseudonym's records are contiguous: once
/// the run has been entered and left, the iterator stops without reading
/// the rest of the file.
struct SegmentScan {
    path: PathBuf,
    reader: SegmentReader,
    pseudonym: String,
    entered: bool,
    done: bool,
}

impl Iterator for SegmentScan {
    type Item = StoreResult<StoreRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.reader.next() {
                None => {
                    self.done = true;
                    return None;
                }
                Some(Err(message)) => {
                    self.done = true;
                    return Some(Err(StoreError::Corrupt {
                        path: self.path.clone(),
                        message,
                    }));
                }
                Some(Ok(r)) if r.request.pseudonym == self.pseudonym => {
                    self.entered = true;
                    return Some(Ok(r));
                }
                Some(Ok(_)) if self.entered => {
                    self.done = true;
                    return None;
                }
                Some(Ok(_)) => continue,
            }
        }
    }
}

/// K-way merge by `seq` over per-source iterators that are each already
/// `seq`-ascending. Ties keep the earlier source (segments in manifest
/// order before the memtable), matching [`Storage::scan`]'s stable sort.
/// An error at the head of any source is surfaced immediately.
struct SeqMerge<'a> {
    sources: Vec<std::iter::Peekable<Box<dyn Iterator<Item = StoreResult<StoreRecord>> + 'a>>>,
}

impl Iterator for SeqMerge<'_> {
    type Item = StoreResult<StoreRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<(usize, u64)> = None;
        for (i, src) in self.sources.iter_mut().enumerate() {
            match src.peek() {
                None => {}
                Some(Err(_)) => return src.next(),
                Some(Ok(r)) if best.is_none_or(|(_, s)| r.seq < s) => {
                    best = Some((i, r.seq));
                }
                Some(Ok(_)) => {}
            }
        }
        let (i, _) = best?;
        self.sources[i].next()
    }
}

impl Storage for LogStore {
    fn append(&mut self, record: StoreRecord) -> StoreResult<AppendOutcome> {
        let pseudonym = record.request.pseudonym.clone();
        if let Some(id) = record.request_id {
            let durable_hit = self
                .durable
                .get(&pseudonym)
                .is_some_and(|d| d.ids.contains(&id));
            let mem_hit = self
                .mem
                .get(&pseudonym)
                .is_some_and(|m| m.ids.contains(&id));
            if durable_hit || mem_hit {
                return Ok(AppendOutcome {
                    recorded: false,
                    flushed: false,
                });
            }
        }
        if !self.durable.contains_key(&pseudonym) && !self.mem.contains_key(&pseudonym) {
            self.order.push(pseudonym.clone());
        }
        let frame = encode_frame(&record);
        self.mem_bytes += frame.len();
        self.mem_records += 1;
        self.last_seq = Some(self.last_seq.map_or(record.seq, |m| m.max(record.seq)));
        let stream = self.mem.entry(pseudonym).or_default();
        if let Some(id) = record.request_id {
            stream.ids.insert(id);
        }
        stream.records.push((record, frame));
        let mut flushed = false;
        if self.mem_bytes >= self.config.flush_threshold_bytes {
            self.flush_inner()?;
            flushed = true;
        }
        Ok(AppendOutcome {
            recorded: true,
            flushed,
        })
    }

    fn scan(&self, pseudonym: &str) -> StoreResult<Vec<StoreRecord>> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let path = self.config.dir.join(&seg.file);
            let reader =
                SegmentReader::open(&*self.config.vfs, &path).map_err(|e| io_err(&path, e))?;
            for record in reader {
                let record = record.map_err(|message| StoreError::Corrupt {
                    path: path.clone(),
                    message,
                })?;
                if record.request.pseudonym == pseudonym {
                    out.push(record);
                }
            }
        }
        out.extend(self.memtable_records(pseudonym).cloned());
        out.sort_by_key(|r| r.seq);
        Ok(out)
    }

    fn scan_stream<'a>(
        &'a self,
        pseudonym: &str,
    ) -> StoreResult<Box<dyn Iterator<Item = StoreResult<StoreRecord>> + 'a>> {
        if !self.durable.contains_key(pseudonym) && !self.mem.contains_key(pseudonym) {
            return Ok(Box::new(std::iter::empty()));
        }
        let mut sources: Vec<
            std::iter::Peekable<Box<dyn Iterator<Item = StoreResult<StoreRecord>> + 'a>>,
        > = Vec::with_capacity(self.segments.len() + 1);
        for seg in &self.segments {
            let path = self.config.dir.join(&seg.file);
            let reader =
                SegmentReader::open(&*self.config.vfs, &path).map_err(|e| io_err(&path, e))?;
            let scan: Box<dyn Iterator<Item = StoreResult<StoreRecord>> + 'a> =
                Box::new(SegmentScan {
                    path,
                    reader,
                    pseudonym: pseudonym.to_string(),
                    entered: false,
                    done: false,
                });
            sources.push(scan.peekable());
        }
        // The memtable is bounded by the flush threshold, so cloning it
        // keeps the scan's memory footprint independent of segment count.
        let mut mem: Vec<StoreRecord> = self.memtable_records(pseudonym).cloned().collect();
        mem.sort_by_key(|r| r.seq);
        let mem_iter: Box<dyn Iterator<Item = StoreResult<StoreRecord>> + 'a> =
            Box::new(mem.into_iter().map(Ok));
        sources.push(mem_iter.peekable());
        Ok(Box::new(SeqMerge { sources }))
    }

    fn snapshot(&self) -> StoreResult<Vec<StoreRecord>> {
        let mut all = self.read_all_segments()?;
        for p in &self.order {
            all.extend(self.memtable_records(p).cloned());
        }
        all.sort_by_key(|r| r.seq);
        Ok(all)
    }

    fn pseudonym_list(&self) -> Vec<String> {
        self.order.clone()
    }

    fn len(&self) -> u64 {
        self.durable_records + self.mem_records
    }

    fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    fn last_durable_seq(&self) -> Option<u64> {
        self.last_durable_seq
    }

    fn stream_digest(&self, pseudonym: &str) -> Option<u64> {
        let durable = self.durable.get(pseudonym);
        let in_mem = self.mem.contains_key(pseudonym);
        if durable.is_none() && !in_mem {
            return None;
        }
        let mut h = durable.map_or(FNV_OFFSET_BASIS, |d| d.digest);
        for record in self.memtable_records(pseudonym) {
            fold_report(&mut h, record.t, &record.request);
        }
        Some(h)
    }

    fn stream_digests(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .order
            .iter()
            .map(|p| (p.clone(), self.stream_digest(p).expect("listed pseudonym")))
            .collect();
        out.sort();
        out
    }

    fn flush(&mut self) -> StoreResult<FlushOutcome> {
        self.flush_inner()
    }

    fn compact(&mut self) -> StoreResult<CompactOutcome> {
        self.flush_inner()?;
        let segments_before = self.segments.len() as u64;
        if segments_before <= 1 {
            return Ok(CompactOutcome {
                segments_before,
                segments_after: segments_before,
                records: self.durable_records,
                bytes: 0,
            });
        }
        let mut all = self.read_all_segments()?;
        all.sort_by(|a, b| {
            (a.request.pseudonym.as_str(), a.seq).cmp(&(b.request.pseudonym.as_str(), b.seq))
        });
        let frames: Vec<Vec<u8>> = all.iter().map(encode_frame).collect();
        let frame_refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let (file, bytes) = self.write_segment(&frame_refs)?;
        let old = std::mem::replace(
            &mut self.segments,
            vec![SegmentMeta {
                file,
                records: all.len() as u64,
                bytes,
            }],
        );
        // Stream state (counts, digests, ids, sequence numbers) is
        // untouched: compaction rewrites files, not history.
        self.commit_manifest()?;
        for seg in old {
            // Best effort: a leftover is an unreferenced file that the
            // next open deletes.
            let _ = self.config.vfs.remove(&self.config.dir.join(&seg.file));
        }
        self.compactions += 1;
        Ok(CompactOutcome {
            segments_before,
            segments_after: 1,
            records: self.durable_records,
            bytes,
        })
    }

    fn store_stats(&self) -> StoreStats {
        StoreStats {
            backend: "log".into(),
            segments: self.segments.len() as u64,
            segment_bytes: self.segments.iter().map(|s| s.bytes).sum(),
            durable_records: self.durable_records,
            memtable_records: self.mem_records,
            memtable_bytes: self.mem_bytes as u64,
            total_records: self.len(),
            streams: self.order.len() as u64,
            last_seq: self.last_seq,
            last_durable_seq: self.last_durable_seq,
            flushes: self.flushes,
            compactions: self.compactions,
            tiered_compactions: self.tiered_compactions,
            dir_fsync_errors: self.dir_fsync_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use dummyloc_core::client::Request;
    use dummyloc_geo::Point;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SCRATCH: AtomicU64 = AtomicU64::new(0);

    fn scratch(name: &str) -> PathBuf {
        let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join("dummyloc-store-tests")
            .join(format!("{name}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(pseudonym: &str, seq: u64) -> StoreRecord {
        StoreRecord {
            t: seq as f64 * 30.0,
            seq,
            request_id: Some(seq),
            request: Request {
                pseudonym: pseudonym.into(),
                positions: vec![Point::new(seq as f64, 0.5), Point::new(-1.0, seq as f64)],
            },
        }
    }

    fn fill(store: &mut LogStore, users: usize, rounds: u64) {
        let mut seq = 0u64;
        for round in 0..rounds {
            for user in 0..users {
                let mut r = record(&format!("user-{user}"), seq);
                r.request_id = Some(round);
                store.append(r).unwrap();
                seq += 1;
            }
        }
    }

    #[test]
    fn digests_match_memory_backend_at_any_flush_point() {
        for threshold in [1, 200, usize::MAX >> 1] {
            let dir = scratch("digest-parity");
            let mut config = LogStoreConfig::new(&dir);
            config.flush_threshold_bytes = threshold;
            let (mut store, _) = LogStore::open(config).unwrap();
            let mut memory = MemoryBackend::default();
            let mut seq = 0;
            for round in 0..10u64 {
                for user in 0..4 {
                    let mut r = record(&format!("user-{user}"), seq);
                    r.request_id = Some(round);
                    memory.append(r.clone()).unwrap();
                    store.append(r).unwrap();
                    seq += 1;
                }
            }
            assert_eq!(store.stream_digests(), memory.stream_digests());
            store.flush().unwrap();
            assert_eq!(store.stream_digests(), memory.stream_digests());
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn reopen_restores_digests_ids_and_seq() {
        let dir = scratch("reopen");
        let (mut store, info) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(info, RecoveryInfo::default());
        fill(&mut store, 3, 5);
        let digests = store.stream_digests();
        let last_seq = store.last_seq();
        store.flush().unwrap();

        let (reopened, info) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(info.durable_records, 15);
        assert_eq!(info.segments, 1);
        assert_eq!(info.streams, 3);
        assert_eq!(reopened.stream_digests(), digests);
        assert_eq!(reopened.last_durable_seq(), last_seq);
        assert_eq!(
            reopened.seen_ids(),
            vec![
                ("user-0".to_string(), vec![0, 1, 2, 3, 4]),
                ("user-1".to_string(), vec![0, 1, 2, 3, 4]),
                ("user-2".to_string(), vec![0, 1, 2, 3, 4]),
            ]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicates_dedup_across_memtable_and_segments() {
        let dir = scratch("dedup");
        let (mut store, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert!(store.append(record("p", 0)).unwrap().recorded);
        // Memtable hit.
        assert!(!store.append(record("p", 0)).unwrap().recorded);
        store.flush().unwrap();
        // Durable hit.
        assert!(!store.append(record("p", 0)).unwrap().recorded);
        // Ids are scoped per pseudonym.
        assert!(store.append(record("q", 0)).unwrap().recorded);
        assert_eq!(store.len(), 2);

        // ...and survive reopen.
        store.flush().unwrap();
        let (mut reopened, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert!(!reopened.append(record("p", 0)).unwrap().recorded);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_and_snapshot_return_seq_ordered_records() {
        let dir = scratch("scan");
        let mut config = LogStoreConfig::new(&dir);
        config.flush_threshold_bytes = 150; // several tiny segments
        let (mut store, _) = LogStore::open(config).unwrap();
        fill(&mut store, 2, 6);
        let p = store.scan("user-0").unwrap();
        assert_eq!(p.len(), 6);
        assert!(p.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(store.scan("nobody").unwrap().is_empty());
        let snap = store.snapshot().unwrap();
        assert_eq!(snap.len(), 12);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_stream_matches_scan_across_segments_and_memtable() {
        let dir = scratch("scan-stream");
        let mut config = LogStoreConfig::new(&dir);
        config.flush_threshold_bytes = 150; // several tiny segments
        let (mut store, _) = LogStore::open(config).unwrap();
        fill(&mut store, 3, 6);
        store.flush().unwrap();
        drop(store);
        // Reopen with the default (large) threshold so a tail of appends
        // is guaranteed to stay in the memtable.
        let (mut store, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        for user in 0..3 {
            let mut r = record(&format!("user-{user}"), 18 + user as u64);
            r.request_id = Some(6);
            store.append(r).unwrap();
        }
        // Records live in multiple segments plus a non-empty memtable.
        assert!(store.store_stats().segments > 1);
        assert!(store.store_stats().memtable_records > 0);
        for user in 0..3 {
            let p = format!("user-{user}");
            let streamed: Vec<StoreRecord> = store
                .scan_stream(&p)
                .unwrap()
                .collect::<StoreResult<_>>()
                .unwrap();
            assert_eq!(streamed, store.scan(&p).unwrap());
        }
        assert_eq!(store.scan_stream("nobody").unwrap().count(), 0);
        // Compaction leaves the streamed view invariant too.
        let before: Vec<StoreRecord> = store
            .scan_stream("user-1")
            .unwrap()
            .collect::<StoreResult<_>>()
            .unwrap();
        store.compact().unwrap();
        let after: Vec<StoreRecord> = store
            .scan_stream("user-1")
            .unwrap()
            .collect::<StoreResult<_>>()
            .unwrap();
        assert_eq!(before, after);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_is_digest_and_scan_invariant() {
        let dir = scratch("compact");
        let mut config = LogStoreConfig::new(&dir);
        config.flush_threshold_bytes = 150;
        let (mut store, _) = LogStore::open(config).unwrap();
        fill(&mut store, 3, 8);
        store.flush().unwrap();
        let digests = store.stream_digests();
        let snap = store.snapshot().unwrap();
        assert!(store.store_stats().segments > 1);

        let outcome = store.compact().unwrap();
        assert!(outcome.segments_before > 1);
        assert_eq!(outcome.segments_after, 1);
        assert_eq!(store.stream_digests(), digests);
        assert_eq!(store.snapshot().unwrap(), snap);
        assert_eq!(store.store_stats().segments, 1);
        // Old segment files are gone.
        let seg_files = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".seg")
            })
            .count();
        assert_eq!(seg_files, 1);

        // Compacting a single segment is a no-op.
        let again = store.compact().unwrap();
        assert_eq!(again.segments_before, 1);
        assert_eq!(store.stream_digests(), digests);

        // Reopen: identical state.
        let (reopened, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(reopened.stream_digests(), digests);
        assert_eq!(reopened.snapshot().unwrap(), snap);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_segments_are_removed_at_open() {
        let dir = scratch("orphan");
        let (mut store, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        fill(&mut store, 2, 3);
        store.flush().unwrap();
        let digests = store.stream_digests();

        // Crash image: a partial segment written but never referenced.
        fs::write(dir.join("seg-009999.seg"), b"dlseg01\n\x05\x00\x00").unwrap();
        let (reopened, info) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(info.orphans_removed, 1);
        assert_eq!(reopened.stream_digests(), digests);
        assert!(!dir.join("seg-009999.seg").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_referenced_segment_is_corruption() {
        let dir = scratch("missing-seg");
        let (mut store, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        fill(&mut store, 1, 2);
        store.flush().unwrap();
        let seg = store.store_stats();
        assert_eq!(seg.segments, 1);
        let name = store.segments[0].file.clone();
        drop(store);
        fs::remove_file(dir.join(name)).unwrap();
        assert!(matches!(
            LogStore::open(LogStoreConfig::new(&dir)),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threshold_flushes_happen_inside_append() {
        let dir = scratch("threshold");
        let mut config = LogStoreConfig::new(&dir);
        config.flush_threshold_bytes = 1;
        let (mut store, _) = LogStore::open(config).unwrap();
        let out = store.append(record("p", 0)).unwrap();
        assert!(out.recorded && out.flushed);
        assert_eq!(store.store_stats().memtable_records, 0);
        assert_eq!(store.last_durable_seq(), Some(0));
        assert_eq!(store.flushes(), 1);
        assert!(LogStoreConfig {
            flush_threshold_bytes: 0,
            ..LogStoreConfig::new(&dir)
        }
        .validate()
        .is_err());
        assert!(LogStoreConfig {
            compact_tiers: 1,
            ..LogStoreConfig::new(&dir)
        }
        .validate()
        .is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiered_compaction_merges_full_tiers_and_is_invariant() {
        let dir = scratch("tiered");
        let mut config = LogStoreConfig::new(&dir);
        config.flush_threshold_bytes = usize::MAX >> 1;
        config.compact_tiers = 3;
        let (mut store, _) = LogStore::open(config).unwrap();
        // Same-shaped flushes land in the same size tier.
        let mut seq = 0;
        for _ in 0..4 {
            for user in 0..2 {
                store.append(record(&format!("user-{user}"), seq)).unwrap();
                seq += 1;
            }
            store.flush().unwrap();
        }
        assert_eq!(store.store_stats().segments, 4);
        let digests = store.stream_digests();
        let snap = store.snapshot().unwrap();

        let outcome = store.compact_tiered_once().unwrap().unwrap();
        assert_eq!(outcome.segments_before, 4);
        assert!(outcome.segments_after < 4);
        assert_eq!(store.stream_digests(), digests);
        assert_eq!(store.snapshot().unwrap(), snap);
        assert_eq!(store.tiered_compactions(), 1);
        assert_eq!(store.store_stats().tiered_compactions, 1);

        // Reopen sees the same state and no leftovers.
        drop(store);
        let (reopened, info) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(info.orphans_removed, 0);
        assert_eq!(reopened.stream_digests(), digests);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiered_plan_respects_policy_bounds() {
        let dir = scratch("tiered-bounds");
        let mut config = LogStoreConfig::new(&dir);
        config.compact_tiers = 0; // disabled
        let (mut store, _) = LogStore::open(config).unwrap();
        fill(&mut store, 2, 2);
        store.flush().unwrap();
        assert!(store.tiered_plan().is_none());
        assert!(store.compact_tiered_once().unwrap().is_none());
        drop(store);

        // Too few segments for the tier: no plan.
        let mut config = LogStoreConfig::new(&dir);
        config.compact_tiers = 4;
        let (mut store, _) = LogStore::open(config).unwrap();
        assert!(store.tiered_plan().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tiered_commit_is_discarded() {
        let dir = scratch("tiered-stale");
        let mut config = LogStoreConfig::new(&dir);
        config.compact_tiers = 2;
        let (mut store, _) = LogStore::open(config).unwrap();
        for seq in 0..3 {
            store.append(record("p", seq)).unwrap();
            store.flush().unwrap();
        }
        let digests = store.stream_digests();
        let plan = store.tiered_plan().unwrap();
        let merged = plan.merge().unwrap();
        // An explicit compaction runs underneath the background merge.
        store.compact().unwrap();
        assert!(store.commit_tiered(merged).unwrap().is_none());
        assert_eq!(store.stream_digests(), digests);
        assert_eq!(store.tiered_compactions(), 0);
        // The discarded output is not on disk (removed or orphaned).
        drop(store);
        let (reopened, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(reopened.stream_digests(), digests);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_flush_and_stats_are_benign() {
        let dir = scratch("empty");
        let (mut store, _) = LogStore::open(LogStoreConfig::new(&dir)).unwrap();
        assert_eq!(store.flush().unwrap(), FlushOutcome::default());
        assert!(store.is_empty());
        let stats = store.store_stats();
        assert_eq!(stats.backend, "log");
        assert_eq!(stats.total_records, 0);
        assert_eq!(store.stream_digest("nobody"), None);
        fs::remove_dir_all(&dir).ok();
    }
}
