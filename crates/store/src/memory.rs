//! The in-memory backend: the provider's historic observer-log map,
//! extracted behind [`Storage`] with zero behavior change.
//!
//! Streams are parallel arrays so request sequences can be handed to
//! adversaries as borrowed `&[Request]` slices without cloning; merges
//! are stable on `(time, arrival-sequence)`; idempotent request ids are
//! deduplicated per pseudonym. All of that predates this crate — it
//! moved here verbatim so the durable [`LogStore`](crate::LogStore) and
//! the RAM map answer to one trait.

use std::collections::{HashMap, HashSet};

use dummyloc_core::client::Request;

use crate::digest::{fold_report, FNV_OFFSET_BASIS};
use crate::{
    AppendOutcome, CompactOutcome, FlushOutcome, Storage, StoreRecord, StoreResult, StoreStats,
};

/// One pseudonym's stream, stored as parallel arrays so request sequences
/// can be handed to adversaries as a borrowed `&[Request]` slice without
/// cloning. Each record carries an arrival sequence number so merges stay
/// stable even for equal timestamps, and a set of already-seen request
/// ids so a retried (idempotent) report is never double-counted.
#[derive(Debug, Clone, Default)]
struct Stream {
    times: Vec<f64>,
    seqs: Vec<u64>,
    ids: Vec<Option<u64>>,
    requests: Vec<Request>,
    seen: HashSet<u64>,
}

impl Stream {
    /// Appends `other` preserving `(time, sequence)` order: a plain append
    /// when `other` starts no earlier than this stream ends (the common
    /// case when merging shard logs that each saw disjoint pseudonyms or
    /// disjoint time windows), a stable two-way merge otherwise. Ties on
    /// the timestamp are broken by arrival sequence, then by taking this
    /// stream's record first — so the merge result does not depend on
    /// which shard happened to be folded in first.
    fn merge(&mut self, other: Stream) {
        self.seen.extend(other.seen);
        let in_order = match (
            self.times.last().zip(self.seqs.last()),
            other.times.first().zip(other.seqs.first()),
        ) {
            (Some((&ta, &sa)), Some((&tb, &sb))) => ta < tb || (ta == tb && sa <= sb),
            _ => true,
        };
        let (mut bt, mut bs, mut bid, mut br) =
            (other.times, other.seqs, other.ids, other.requests);
        if in_order {
            self.times.append(&mut bt);
            self.seqs.append(&mut bs);
            self.ids.append(&mut bid);
            self.requests.append(&mut br);
            return;
        }
        let at = std::mem::take(&mut self.times);
        let as_ = std::mem::take(&mut self.seqs);
        let a_ids = std::mem::take(&mut self.ids);
        let mut a_req = std::mem::take(&mut self.requests).into_iter();
        let mut b_req = br.into_iter();
        let (mut ai, mut bi) = (0, 0);
        while ai < at.len() || bi < bt.len() {
            let take_a = if ai == at.len() {
                false
            } else if bi == bt.len() {
                true
            } else {
                at[ai] < bt[bi] || (at[ai] == bt[bi] && as_[ai] <= bs[bi])
            };
            if take_a {
                self.times.push(at[ai]);
                self.seqs.push(as_[ai]);
                self.ids.push(a_ids[ai]);
                self.requests.push(a_req.next().expect("parallel vecs"));
                ai += 1;
            } else {
                self.times.push(bt[bi]);
                self.seqs.push(bs[bi]);
                self.ids.push(bid[bi]);
                self.requests.push(b_req.next().expect("parallel vecs"));
                bi += 1;
            }
        }
    }
}

/// Borrowed view of one pseudonym's time-ordered stream: parallel
/// timestamp and request slices of equal length.
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    times: &'a [f64],
    requests: &'a [Request],
}

impl<'a> StreamView<'a> {
    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Receive times, parallel to [`StreamView::requests`].
    pub fn times(&self) -> &'a [f64] {
        self.times
    }

    /// The requests in receive order.
    pub fn requests(&self) -> &'a [Request] {
        self.requests
    }

    /// `(time, request)` pairs in receive order.
    pub fn iter(&self) -> std::iter::Zip<TimeIter<'a>, std::slice::Iter<'a, Request>> {
        self.times.iter().copied().zip(self.requests.iter())
    }

    /// The most recent `(time, request)` pair.
    pub fn last(&self) -> Option<(f64, &'a Request)> {
        Some((*self.times.last()?, self.requests.last()?))
    }
}

/// Iterator over a stream's receive times.
pub type TimeIter<'a> = std::iter::Copied<std::slice::Iter<'a, f64>>;

impl<'a> IntoIterator for StreamView<'a> {
    type Item = (f64, &'a Request);
    type IntoIter = std::iter::Zip<TimeIter<'a>, std::slice::Iter<'a, Request>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// What [`MemoryBackend::requests_of`] returns for unknown pseudonyms.
static NO_REQUESTS: &[Request] = &[];

/// The in-memory storage backend: per-pseudonym, the full time-ordered
/// sequence of received requests, kept entirely in RAM.
///
/// This is precisely the input the paper's threat model gives the
/// observer (*"users cannot prevent service providers from analyzing
/// motion patterns using the stored true position data"*); the adversary
/// models in `dummyloc-core` consume these streams.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    order: Vec<String>,
    streams: HashMap<String, Stream>,
    next_seq: u64,
}

impl MemoryBackend {
    /// Records one received request at time `t` (clones the request; hot
    /// paths use [`MemoryBackend::record_owned`]).
    pub fn record(&mut self, t: f64, request: &Request) {
        self.record_owned(t, request.clone());
    }

    /// Records one received request at time `t`, taking ownership so the
    /// hot path never clones position vectors.
    pub fn record_owned(&mut self, t: f64, request: Request) {
        let seq = self.next_seq;
        self.record_full(t, seq, None, request);
    }

    /// Records one received request carrying an idempotent request id.
    /// Returns `false` (and records nothing) when this pseudonym already
    /// reported the same id.
    pub fn record_owned_unique(&mut self, t: f64, request_id: u64, request: Request) -> bool {
        let seq = self.next_seq;
        self.record_full(t, seq, Some(request_id), request)
    }

    /// Full-control record used by sharded server logs: an explicit
    /// arrival sequence number `seq` (globally monotone across shards, so
    /// [`MemoryBackend::absorb`] reconstructs exact arrival order even
    /// for equal timestamps) and an optional idempotent request id.
    /// Returns `false` when the id was already seen for this pseudonym.
    pub fn record_full(
        &mut self,
        t: f64,
        seq: u64,
        request_id: Option<u64>,
        request: Request,
    ) -> bool {
        let stream = self
            .streams
            .entry(request.pseudonym.clone())
            .or_insert_with(|| {
                self.order.push(request.pseudonym.clone());
                Stream::default()
            });
        if let Some(id) = request_id {
            if !stream.seen.insert(id) {
                return false;
            }
        }
        self.next_seq = self.next_seq.max(seq + 1);
        stream.times.push(t);
        stream.seqs.push(seq);
        stream.ids.push(request_id);
        stream.requests.push(request);
        true
    }

    /// Seeds a pseudonym's seen-id set without recording anything — the
    /// server's recovery path when a durable store already holds the
    /// records: the RAM log keeps only the WAL tail, but must still
    /// dedup retries of queries acknowledged before the crash.
    pub fn preload_seen(&mut self, pseudonym: &str, ids: impl IntoIterator<Item = u64>) {
        let stream = match self.streams.get_mut(pseudonym) {
            Some(s) => s,
            None => {
                self.order.push(pseudonym.to_string());
                self.streams.entry(pseudonym.to_string()).or_default()
            }
        };
        stream.seen.extend(ids);
    }

    /// Advances the internal sequence counter so future
    /// [`MemoryBackend::record_owned`] calls stamp past `next`.
    pub fn advance_seq(&mut self, next: u64) {
        self.next_seq = self.next_seq.max(next);
    }

    /// Pseudonyms in order of first appearance (borrowed).
    pub fn pseudonyms(&self) -> &[String] {
        &self.order
    }

    /// The time-ordered request stream of one pseudonym.
    pub fn stream(&self, pseudonym: &str) -> Option<StreamView<'_>> {
        self.streams.get(pseudonym).map(|s| StreamView {
            times: &s.times,
            requests: &s.requests,
        })
    }

    /// The request sequence of one pseudonym without timestamps.
    /// Borrowed: unknown pseudonyms yield an empty slice, and no request
    /// is ever cloned.
    pub fn requests_of(&self, pseudonym: &str) -> &[Request] {
        self.streams
            .get(pseudonym)
            .map_or(NO_REQUESTS, |s| &s.requests)
    }

    /// Iterates one pseudonym's requests in receive order without cloning.
    pub fn iter_requests_of(&self, pseudonym: &str) -> std::slice::Iter<'_, Request> {
        self.requests_of(pseudonym).iter()
    }

    /// Merges another backend into this one, preserving per-stream
    /// `(time, arrival-sequence)` order — how the server folds its
    /// per-shard logs into one observer view. The merge is *stable*:
    /// records with equal timestamps keep their arrival-sequence order,
    /// so folding shards in any order produces the same streams.
    pub fn absorb(&mut self, other: MemoryBackend) {
        let MemoryBackend {
            order,
            mut streams,
            next_seq,
        } = other;
        self.next_seq = self.next_seq.max(next_seq);
        for pseudonym in order {
            let incoming = streams
                .remove(&pseudonym)
                .expect("order lists every stream");
            match self.streams.entry(pseudonym.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.order.push(pseudonym);
                    e.insert(incoming);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge(incoming);
                }
            }
        }
    }

    /// Record count as `usize` (the historic signature).
    pub fn record_count(&self) -> usize {
        self.streams.values().map(|s| s.requests.len()).sum()
    }
}

impl Storage for MemoryBackend {
    fn append(&mut self, record: StoreRecord) -> StoreResult<AppendOutcome> {
        let recorded = self.record_full(record.t, record.seq, record.request_id, record.request);
        Ok(AppendOutcome {
            recorded,
            flushed: false,
        })
    }

    fn scan(&self, pseudonym: &str) -> StoreResult<Vec<StoreRecord>> {
        let Some(s) = self.streams.get(pseudonym) else {
            return Ok(Vec::new());
        };
        Ok(s.times
            .iter()
            .zip(&s.seqs)
            .zip(&s.ids)
            .zip(&s.requests)
            .map(|(((&t, &seq), &request_id), request)| StoreRecord {
                t,
                seq,
                request_id,
                request: request.clone(),
            })
            .collect())
    }

    fn scan_stream<'a>(
        &'a self,
        pseudonym: &str,
    ) -> StoreResult<Box<dyn Iterator<Item = StoreResult<StoreRecord>> + 'a>> {
        let Some(s) = self.streams.get(pseudonym) else {
            return Ok(Box::new(std::iter::empty()));
        };
        // Lazy per-record clones over the parallel arrays: nothing is
        // materialized beyond the record currently yielded.
        Ok(Box::new(
            s.times
                .iter()
                .zip(&s.seqs)
                .zip(&s.ids)
                .zip(&s.requests)
                .map(|(((&t, &seq), &request_id), request)| {
                    Ok(StoreRecord {
                        t,
                        seq,
                        request_id,
                        request: request.clone(),
                    })
                }),
        ))
    }

    fn snapshot(&self) -> StoreResult<Vec<StoreRecord>> {
        let mut all = Vec::with_capacity(self.record_count());
        for pseudonym in &self.order {
            all.extend(self.scan(pseudonym)?);
        }
        // Stable on seq: equal sequence numbers (possible only through
        // manual `record_full` calls) keep first-appearance order.
        all.sort_by_key(|r| r.seq);
        Ok(all)
    }

    fn pseudonym_list(&self) -> Vec<String> {
        self.order.clone()
    }

    fn len(&self) -> u64 {
        self.record_count() as u64
    }

    fn last_seq(&self) -> Option<u64> {
        self.next_seq.checked_sub(1)
    }

    fn last_durable_seq(&self) -> Option<u64> {
        None
    }

    fn stream_digest(&self, pseudonym: &str) -> Option<u64> {
        let s = self.streams.get(pseudonym)?;
        let mut h = FNV_OFFSET_BASIS;
        for (t, req) in s.times.iter().zip(&s.requests) {
            fold_report(&mut h, *t, req);
        }
        Some(h)
    }

    fn stream_digests(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .order
            .iter()
            .map(|p| (p.clone(), self.stream_digest(p).expect("listed pseudonym")))
            .collect();
        out.sort();
        out
    }

    fn flush(&mut self) -> StoreResult<FlushOutcome> {
        Ok(FlushOutcome::default())
    }

    fn compact(&mut self) -> StoreResult<CompactOutcome> {
        Ok(CompactOutcome::default())
    }

    fn store_stats(&self) -> StoreStats {
        let records = self.len();
        StoreStats {
            backend: "memory".into(),
            memtable_records: records,
            total_records: records,
            streams: self.order.len() as u64,
            last_seq: self.last_seq(),
            ..StoreStats::default()
        }
    }

    fn as_memory(&self) -> Option<&MemoryBackend> {
        Some(self)
    }

    fn as_memory_mut(&mut self) -> Option<&mut MemoryBackend> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::Point;

    fn request(pseudonym: &str, positions: Vec<Point>) -> Request {
        Request {
            pseudonym: pseudonym.into(),
            positions,
        }
    }

    #[test]
    fn scan_preserves_ids_and_order() {
        let mut m = MemoryBackend::default();
        assert!(m.record_owned_unique(0.0, 7, request("p", vec![Point::new(1.0, 1.0)])));
        m.record_owned(30.0, request("p", vec![Point::new(2.0, 2.0)]));
        let scanned = m.scan("p").unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].request_id, Some(7));
        assert_eq!(scanned[1].request_id, None);
        assert!(scanned[0].seq < scanned[1].seq);
        assert!(m.scan("zz").unwrap().is_empty());
    }

    #[test]
    fn snapshot_is_globally_seq_ordered() {
        let mut m = MemoryBackend::default();
        m.record_full(5.0, 3, None, request("b", vec![Point::new(3.0, 0.0)]));
        m.record_full(5.0, 1, None, request("a", vec![Point::new(1.0, 0.0)]));
        m.record_full(5.0, 2, None, request("b", vec![Point::new(2.0, 0.0)]));
        let snap = m.snapshot().unwrap();
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn scan_stream_matches_scan() {
        let mut m = MemoryBackend::default();
        assert!(m.record_owned_unique(0.0, 7, request("p", vec![Point::new(1.0, 1.0)])));
        m.record_owned(30.0, request("p", vec![Point::new(2.0, 2.0)]));
        m.record_owned(60.0, request("q", vec![Point::new(3.0, 3.0)]));
        for p in ["p", "q"] {
            let streamed: Vec<StoreRecord> = m
                .scan_stream(p)
                .unwrap()
                .collect::<StoreResult<_>>()
                .unwrap();
            assert_eq!(streamed, m.scan(p).unwrap());
        }
        assert_eq!(m.scan_stream("zz").unwrap().count(), 0);
    }

    #[test]
    fn preload_seen_dedups_without_recording() {
        let mut m = MemoryBackend::default();
        m.preload_seen("p", [4, 5]);
        assert_eq!(m.len(), 0);
        assert!(!m.record_owned_unique(0.0, 4, request("p", vec![Point::new(1.0, 1.0)])));
        assert!(m.record_owned_unique(0.0, 6, request("p", vec![Point::new(1.0, 1.0)])));
        assert_eq!(m.len(), 1);
        // Preloading an existing stream only widens its seen set.
        m.preload_seen("p", [9]);
        assert!(!m.record_owned_unique(0.0, 9, request("p", vec![Point::new(1.0, 1.0)])));
        assert_eq!(m.pseudonyms(), &["p".to_string()]);
    }

    #[test]
    fn advance_seq_moves_the_stamp_forward() {
        let mut m = MemoryBackend::default();
        m.advance_seq(10);
        m.record_owned(0.0, request("p", vec![Point::new(1.0, 1.0)]));
        assert_eq!(m.scan("p").unwrap()[0].seq, 10);
        assert_eq!(m.last_seq(), Some(10));
    }

    #[test]
    fn digest_matches_manual_fold() {
        let mut m = MemoryBackend::default();
        let req = request("p", vec![Point::new(1.5, -2.5)]);
        m.record(10.0, &req);
        let mut h = FNV_OFFSET_BASIS;
        fold_report(&mut h, 10.0, &req);
        assert_eq!(m.stream_digest("p"), Some(h));
        assert_eq!(Storage::stream_digests(&m), vec![("p".to_string(), h)]);
    }
}
