//! The FNV-1a digest recipe shared by every backend.
//!
//! A pseudonym's stream digest folds, per record in stream order: the
//! receive time's f64 bit pattern (little-endian), the pseudonym bytes,
//! and each reported position's x/y bit patterns. This is bit-for-bit
//! the fold `ObserverLog::stream_digest` has always used, so digests
//! computed by the in-memory map, the log-structured store, and a WAL
//! replay are directly comparable — the equality every crash-recovery
//! test in this repo asserts.

use dummyloc_core::client::Request;

/// FNV-1a 64-bit offset basis — the digest of an empty stream.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds bytes into a running FNV-1a state.
pub fn fold_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// One-shot FNV-1a of a byte slice (checksums for segments/manifests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET_BASIS;
    fold_bytes(&mut h, bytes);
    h
}

/// Folds one observed report into a running stream digest.
pub fn fold_report(h: &mut u64, t: f64, request: &Request) {
    fold_bytes(h, &t.to_bits().to_le_bytes());
    fold_bytes(h, request.pseudonym.as_bytes());
    for p in &request.positions {
        fold_bytes(h, &p.x.to_bits().to_le_bytes());
        fold_bytes(h, &p.y.to_bits().to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::Point;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fold_report_is_order_sensitive() {
        let r1 = Request {
            pseudonym: "p".into(),
            positions: vec![Point::new(1.0, 2.0)],
        };
        let r2 = Request {
            pseudonym: "p".into(),
            positions: vec![Point::new(3.0, 4.0)],
        };
        let mut a = FNV_OFFSET_BASIS;
        fold_report(&mut a, 0.0, &r1);
        fold_report(&mut a, 1.0, &r2);
        let mut b = FNV_OFFSET_BASIS;
        fold_report(&mut b, 1.0, &r2);
        fold_report(&mut b, 0.0, &r1);
        assert_ne!(a, b);
    }
}
