//! Virtual filesystem layer: every syscall the store (and the server's
//! WAL, and the sim's checkpoint writer) issues goes through a [`Vfs`].
//!
//! Production code runs on [`RealVfs`], a zero-cost passthrough to
//! `std::fs`. Tests run on [`FaultVfs`], a deterministic in-memory disk
//! that can hurt you in exactly three ways, at exactly the syscall index
//! you choose (the op-indexed analogue of the server's seeded
//! `FaultPlan`):
//!
//! * **errno injection** — the Nth syscall returns a chosen errno
//!   (`EIO`, `ENOSPC`, `EINTR`) without touching the virtual disk;
//! * **short write** — the Nth syscall, if it is a write, persists only
//!   a prefix of its buffer into the page cache and then fails with
//!   `EIO` (a torn write the caller *is* told about);
//! * **power cut** — the virtual disk freezes atomically to its last
//!   *synced* image mid-operation; every later syscall fails until
//!   [`FaultVfs::revive`], after which the test reopens the torn image
//!   in-process — the `kill -9` experience without a process boundary.
//!
//! The crash model mirrors a kernel page cache: every file carries a
//! `persisted` image (what survives a power cut) and a `current` image
//! (what open handles and readers see). `sync_data`/`sync_all` promote
//! `current` to `persisted`. One documented simplification: *metadata*
//! operations (create, rename, remove) are durable immediately — the
//! fault matrix exercises torn data and failed syscalls, not journal
//! reordering of directory entries.

use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// `EIO`: low-level I/O failure.
pub const EIO: i32 = 5;
/// `EINTR`: interrupted syscall.
pub const EINTR: i32 = 4;
/// `ENOSPC`: the disk is full.
pub const ENOSPC: i32 = 28;

/// Builds an `io::Error` carrying a raw errno, the same shape the OS
/// would hand back (`libc`-free: the workspace adds no dependencies).
pub fn errno(code: i32) -> io::Error {
    io::Error::from_raw_os_error(code)
}

/// One open file handle. Methods take `&self` because callers share
/// handles across threads (the WAL writer holds its log file in an
/// `Arc` and group-commit leaders sync it from any worker).
pub trait VfsFile: Send + Sync + Debug {
    /// Writes the whole buffer at the handle's cursor (append handles
    /// write at end-of-file).
    fn write_all(&self, buf: &[u8]) -> io::Result<()>;
    /// Reads up to `buf.len()` bytes at the handle's cursor.
    fn read(&self, buf: &mut [u8]) -> io::Result<usize>;
    /// Flushes file data to durable storage.
    fn sync_data(&self) -> io::Result<()>;
    /// Flushes file data and metadata to durable storage.
    fn sync_all(&self) -> io::Result<()>;
    /// Truncates (or extends with zeros) to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
}

/// The filesystem operations the store, WAL and checkpoint writer use.
/// Implementations are shared behind `Arc<dyn Vfs>` in the configs that
/// carry them.
pub trait Vfs: Send + Sync + Debug {
    /// Creates (truncating if present) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens (creating if absent) a file whose writes land at end-of-file.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for writing without truncating it.
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) directly inside a directory.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Creates a directory and any missing ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory, making renames/creates inside it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists (a pure metadata probe; never faulted).
    fn exists(&self, path: &Path) -> bool;
    /// Current length of a file in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
}

/// The default [`Vfs`]: a shared handle to the real filesystem.
pub fn real_vfs() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

/// Passthrough [`Vfs`] over `std::fs` — what production configs carry.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        (&self.0).write_all(buf)
    }

    fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        (&self.0).read(buf)
    }

    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn sync_all(&self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::open(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(f)))
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new().write(true).open(path)?;
        Ok(Box::new(RealFile(f)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

/// What kind of syscall an op-trace entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `create` / `create_dir_all`.
    Create,
    /// `open_read` / `open_append` / `open_write`.
    Open,
    /// A handle `read` or a whole-file `read`.
    Read,
    /// A handle `write_all`.
    Write,
    /// `sync_data` / `sync_all` on a file handle.
    Sync,
    /// `set_len`.
    SetLen,
    /// `rename`.
    Rename,
    /// `remove`.
    Remove,
    /// `read_dir`.
    ReadDir,
    /// `sync_dir`.
    SyncDir,
}

/// The three ways [`FaultVfs`] can hurt a syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with this errno; the virtual disk is untouched.
    Errno(i32),
    /// Persist only a prefix of the write's buffer, then fail with
    /// `EIO`. On a non-write syscall this degrades to `Errno(EIO)`.
    ShortWrite,
    /// Freeze the disk to its last synced image and fail every syscall
    /// from here on (until [`FaultVfs::revive`]).
    PowerCut,
}

/// The canonical errno rotation the sampled fault matrix draws from.
pub const FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::Errno(EIO),
    FaultKind::Errno(ENOSPC),
    FaultKind::Errno(EINTR),
    FaultKind::ShortWrite,
    FaultKind::PowerCut,
];

/// One file on the virtual disk: the synced image and the live (page
/// cache) image.
#[derive(Debug, Default, Clone)]
struct FileEntry {
    persisted: Vec<u8>,
    current: Vec<u8>,
}

#[derive(Debug, Default)]
struct FaultDisk {
    files: HashMap<PathBuf, FileEntry>,
    dirs: HashSet<PathBuf>,
    ops: u64,
    trace: Vec<(OpKind, PathBuf)>,
    faults: Vec<(u64, FaultKind)>,
    cut: bool,
}

/// What the fault gate decided about one syscall.
enum Gate {
    Pass,
    Short,
}

impl FaultDisk {
    /// Counts the syscall, applies any fault armed at its index, and
    /// freezes the disk on a power cut.
    fn gate(&mut self, op: OpKind, path: &Path) -> io::Result<Gate> {
        if self.cut {
            return Err(errno(EIO));
        }
        let idx = self.ops;
        self.ops += 1;
        self.trace.push((op, path.to_path_buf()));
        let Some(pos) = self.faults.iter().position(|(at, _)| *at == idx) else {
            return Ok(Gate::Pass);
        };
        let (_, kind) = self.faults.remove(pos);
        match kind {
            FaultKind::Errno(code) => Err(errno(code)),
            FaultKind::ShortWrite if op == OpKind::Write => Ok(Gate::Short),
            FaultKind::ShortWrite => Err(errno(EIO)),
            FaultKind::PowerCut => {
                self.power_cut();
                Err(errno(EIO))
            }
        }
    }

    /// Atomically freezes every file to its synced image.
    fn power_cut(&mut self) {
        self.cut = true;
        for entry in self.files.values_mut() {
            entry.current = entry.persisted.clone();
        }
    }

    fn entry_or_not_found(&self, path: &Path) -> io::Result<&FileEntry> {
        self.files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such virtual file"))
    }
}

/// Deterministic in-memory faulting filesystem. Cloning shares the same
/// virtual disk, so a test can keep a control handle while the store
/// owns another.
#[derive(Debug, Clone, Default)]
pub struct FaultVfs {
    disk: Arc<Mutex<FaultDisk>>,
}

impl FaultVfs {
    /// An empty, fault-free virtual disk.
    pub fn new() -> Self {
        FaultVfs::default()
    }

    fn lock(&self) -> MutexGuard<'_, FaultDisk> {
        self.disk.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Syscalls issued so far — the index space faults are armed in.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// The full `(kind, path)` trace of every syscall so far.
    pub fn trace(&self) -> Vec<(OpKind, PathBuf)> {
        self.lock().trace.clone()
    }

    /// Arms one fault at syscall index `at_op` (0-based over the ops
    /// issued after this call's present). Faults are one-shot.
    pub fn inject(&self, at_op: u64, kind: FaultKind) {
        self.lock().faults.push((at_op, kind));
    }

    /// Disarms every pending fault.
    pub fn clear_faults(&self) {
        self.lock().faults.clear();
    }

    /// Whether a power cut froze the disk.
    pub fn is_cut(&self) -> bool {
        self.lock().cut
    }

    /// Brings a power-cut disk back: the live image becomes the synced
    /// image (everything unsynced is gone), pending faults are cleared,
    /// and syscalls work again — reopening now reads the torn image.
    pub fn revive(&self) {
        let mut disk = self.lock();
        if !disk.cut {
            for entry in disk.files.values_mut() {
                entry.current = entry.persisted.clone();
            }
        }
        disk.cut = false;
        disk.faults.clear();
    }

    /// The synced (crash-surviving) image of one file, if it exists.
    pub fn persisted(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).map(|e| e.persisted.clone())
    }
}

/// SplitMix64 — the seed-expansion step the server's `FaultPlan` uses,
/// reproduced here so seeded fault schedules stay dependency-free.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministically samples up to `cases` distinct `(op index, fault)`
/// pairs out of a matrix of `op_count` injection points × the
/// [`FAULT_KINDS`] rotation — the bounded schedule the CI gate walks
/// when the full per-syscall matrix would be too slow.
pub fn sample_faults(seed: u64, op_count: u64, cases: usize) -> Vec<(u64, FaultKind)> {
    let total = op_count.saturating_mul(FAULT_KINDS.len() as u64);
    if total == 0 {
        return Vec::new();
    }
    let mut picked = HashSet::new();
    let mut out = Vec::new();
    let mut state = seed;
    // Draw with a bounded retry budget so a near-exhaustive request
    // still terminates; duplicates are simply skipped.
    for draw in 0..cases.saturating_mul(8) {
        if out.len() >= cases || out.len() as u64 >= total {
            break;
        }
        state = splitmix(state ^ (draw as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let cell = state % total;
        if picked.insert(cell) {
            let at = cell / FAULT_KINDS.len() as u64;
            let kind = FAULT_KINDS[(cell % FAULT_KINDS.len() as u64) as usize];
            out.push((at, kind));
        }
    }
    out.sort_by_key(|(at, _)| *at);
    out
}

#[derive(Debug)]
struct FaultFile {
    disk: Arc<Mutex<FaultDisk>>,
    path: PathBuf,
    append: bool,
    pos: Mutex<u64>,
}

impl FaultFile {
    fn lock_disk(&self) -> MutexGuard<'_, FaultDisk> {
        self.disk.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl VfsFile for FaultFile {
    fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let mut disk = self.lock_disk();
        let gate = disk.gate(OpKind::Write, &self.path)?;
        let written = match gate {
            Gate::Pass => buf,
            // A torn write: half the buffer lands, the caller sees EIO.
            Gate::Short => &buf[..buf.len() / 2],
        };
        let entry = disk.files.entry(self.path.clone()).or_default();
        if self.append {
            entry.current.extend_from_slice(written);
        } else {
            let mut pos = self.pos.lock().unwrap_or_else(|e| e.into_inner());
            let at = *pos as usize;
            if entry.current.len() < at + written.len() {
                entry.current.resize(at + written.len(), 0);
            }
            entry.current[at..at + written.len()].copy_from_slice(written);
            *pos += written.len() as u64;
        }
        match gate {
            Gate::Pass => Ok(()),
            Gate::Short => Err(errno(EIO)),
        }
    }

    fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        let mut disk = self.lock_disk();
        disk.gate(OpKind::Read, &self.path)?;
        let entry = disk.entry_or_not_found(&self.path)?;
        let mut pos = self.pos.lock().unwrap_or_else(|e| e.into_inner());
        let at = (*pos as usize).min(entry.current.len());
        let n = (entry.current.len() - at).min(buf.len());
        buf[..n].copy_from_slice(&entry.current[at..at + n]);
        *pos += n as u64;
        Ok(n)
    }

    fn sync_data(&self) -> io::Result<()> {
        self.sync_all()
    }

    fn sync_all(&self) -> io::Result<()> {
        let mut disk = self.lock_disk();
        disk.gate(OpKind::Sync, &self.path)?;
        if let Some(entry) = disk.files.get_mut(&self.path) {
            entry.persisted = entry.current.clone();
        }
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        let mut disk = self.lock_disk();
        disk.gate(OpKind::SetLen, &self.path)?;
        let entry = disk.files.entry(self.path.clone()).or_default();
        entry.current.resize(len as usize, 0);
        let mut pos = self.pos.lock().unwrap_or_else(|e| e.into_inner());
        *pos = (*pos).min(len);
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut disk = self.lock();
        disk.gate(OpKind::Create, path)?;
        disk.files.insert(path.to_path_buf(), FileEntry::default());
        Ok(Box::new(FaultFile {
            disk: Arc::clone(&self.disk),
            path: path.to_path_buf(),
            append: false,
            pos: Mutex::new(0),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut disk = self.lock();
        disk.gate(OpKind::Open, path)?;
        disk.entry_or_not_found(path)?;
        Ok(Box::new(FaultFile {
            disk: Arc::clone(&self.disk),
            path: path.to_path_buf(),
            append: false,
            pos: Mutex::new(0),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut disk = self.lock();
        disk.gate(OpKind::Open, path)?;
        disk.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(FaultFile {
            disk: Arc::clone(&self.disk),
            path: path.to_path_buf(),
            append: true,
            pos: Mutex::new(0),
        }))
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut disk = self.lock();
        disk.gate(OpKind::Open, path)?;
        disk.entry_or_not_found(path)?;
        Ok(Box::new(FaultFile {
            disk: Arc::clone(&self.disk),
            path: path.to_path_buf(),
            append: false,
            pos: Mutex::new(0),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut disk = self.lock();
        disk.gate(OpKind::Read, path)?;
        Ok(disk.entry_or_not_found(path)?.current.clone())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut disk = self.lock();
        disk.gate(OpKind::Rename, from)?;
        let entry = disk
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such virtual file"))?;
        disk.files.insert(to.to_path_buf(), entry);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut disk = self.lock();
        disk.gate(OpKind::Remove, path)?;
        disk.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such virtual file"))
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut disk = self.lock();
        disk.gate(OpKind::ReadDir, path)?;
        let mut names: Vec<String> = disk
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .filter_map(|p| p.file_name()?.to_str().map(str::to_string))
            .collect();
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut disk = self.lock();
        disk.gate(OpKind::Create, path)?;
        let mut at = Some(path);
        while let Some(p) = at {
            disk.dirs.insert(p.to_path_buf());
            at = p.parent();
        }
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut disk = self.lock();
        disk.gate(OpKind::SyncDir, path)?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let disk = self.lock();
        disk.files.contains_key(path) || disk.dirs.contains(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let disk = self.lock();
        Ok(disk.entry_or_not_found(path)?.current.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PathBuf {
        PathBuf::from("/v").join(name)
    }

    #[test]
    fn real_vfs_round_trips_files_and_dirs() {
        let dir = std::env::temp_dir().join(format!("dummyloc-vfs-{}", std::process::id()));
        let vfs = RealVfs;
        vfs.create_dir_all(&dir).unwrap();
        let path = dir.join("a.bin");
        let f = vfs.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        assert_eq!(vfs.len(&path).unwrap(), 5);
        assert!(vfs.exists(&path));
        let g = vfs.open_append(&path).unwrap();
        g.write_all(b" world").unwrap();
        g.sync_data().unwrap();
        drop(g);
        let r = vfs.open_read(&path).unwrap();
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world");
        let renamed = dir.join("b.bin");
        vfs.rename(&path, &renamed).unwrap();
        assert!(vfs.read_dir(&dir).unwrap().contains(&"b.bin".to_string()));
        vfs.sync_dir(&dir).unwrap();
        let w = vfs.open_write(&renamed).unwrap();
        w.set_len(5).unwrap();
        drop(w);
        assert_eq!(vfs.read(&renamed).unwrap(), b"hello");
        vfs.remove(&renamed).unwrap();
        assert!(!vfs.exists(&renamed));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_vfs_behaves_like_a_filesystem_when_unfaulted() {
        let vfs = FaultVfs::new();
        vfs.create_dir_all(&p("")).unwrap();
        let f = vfs.create(&p("x")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(vfs.read(&p("x")).unwrap(), b"abc");
        let a = vfs.open_append(&p("x")).unwrap();
        a.write_all(b"def").unwrap();
        drop(a);
        assert_eq!(vfs.read(&p("x")).unwrap(), b"abcdef");
        vfs.rename(&p("x"), &p("y")).unwrap();
        assert!(!vfs.exists(&p("x")));
        assert_eq!(vfs.len(&p("y")).unwrap(), 6);
        assert_eq!(vfs.read_dir(&p("")).unwrap(), vec!["y".to_string()]);
        assert!(vfs.open_read(&p("x")).is_err());
        assert!(vfs.remove(&p("x")).is_err());
        vfs.remove(&p("y")).unwrap();
    }

    #[test]
    fn errno_faults_fire_once_at_their_index() {
        let vfs = FaultVfs::new();
        let f = vfs.create(&p("x")).unwrap(); // op 0
        vfs.inject(1, FaultKind::Errno(ENOSPC));
        let err = f.write_all(b"abc").unwrap_err(); // op 1: faulted
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        f.write_all(b"abc").unwrap(); // op 2: clean again
        assert_eq!(vfs.op_count(), 3);
        assert_eq!(vfs.trace()[1].0, OpKind::Write);
    }

    #[test]
    fn short_write_persists_a_prefix_and_errors() {
        let vfs = FaultVfs::new();
        let f = vfs.create(&p("x")).unwrap(); // op 0
        vfs.inject(1, FaultKind::ShortWrite);
        let err = f.write_all(b"abcdef").unwrap_err(); // op 1
        assert_eq!(err.raw_os_error(), Some(EIO));
        drop(f);
        assert_eq!(vfs.read(&p("x")).unwrap(), b"abc");
    }

    #[test]
    fn power_cut_freezes_to_the_synced_image() {
        let vfs = FaultVfs::new();
        let f = vfs.create(&p("x")).unwrap(); // op 0
        f.write_all(b"synced").unwrap(); // op 1
        f.sync_all().unwrap(); // op 2
        f.write_all(b" pending").unwrap(); // op 3 (never synced)
        vfs.inject(4, FaultKind::PowerCut);
        assert!(f.sync_all().is_err()); // op 4: the lights go out
        assert!(vfs.is_cut());
        // Everything fails while the disk is down.
        assert!(vfs.read(&p("x")).is_err());
        vfs.revive();
        // The unsynced suffix is gone; the synced prefix survived.
        assert_eq!(vfs.read(&p("x")).unwrap(), b"synced");
    }

    #[test]
    fn revive_without_a_cut_just_drops_unsynced_data() {
        let vfs = FaultVfs::new();
        let f = vfs.create(&p("x")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_all().unwrap();
        f.write_all(b"tail").unwrap();
        drop(f);
        vfs.revive();
        assert_eq!(vfs.read(&p("x")).unwrap(), b"abc");
    }

    #[test]
    fn sampled_schedules_are_deterministic_bounded_and_in_range() {
        let a = sample_faults(42, 100, 32);
        let b = sample_faults(42, 100, 32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|(at, _)| *at < 100));
        let c = sample_faults(43, 100, 32);
        assert_ne!(a, c);
        // A near-exhaustive request saturates instead of spinning.
        assert!(sample_faults(1, 2, 64).len() <= 10);
        assert!(sample_faults(1, 0, 8).is_empty());
    }
}
