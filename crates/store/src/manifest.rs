//! The store manifest: the single source of truth for what is durable.
//!
//! A manifest is one file, committed atomically (write to `MANIFEST.tmp`,
//! fsync, rename over `MANIFEST`), holding a checksummed header line and
//! a JSON body:
//!
//! ```text
//! dlstore-manifest-v1 <fnv1a(body) as 16 hex digits>\n
//! { ...json body... }
//! ```
//!
//! The body lists the referenced segment files and, per pseudonym
//! stream, the complete recovery state: durable record count, the
//! running stream digest, the last durable sequence number, and the set
//! of seen request ids. Recovery therefore reads *one small file*
//! instead of re-decoding every historical request — that is the whole
//! reason cold start beats full WAL replay.
//!
//! Segment files are only ever referenced by a committed manifest after
//! they are fully written and fsynced. A crash between those two steps
//! leaves an unreferenced (orphan) segment, which
//! [`LogStore::open`](crate::LogStore::open) deletes; a crash after the
//! commit but before old segments are unlinked (compaction) leaves
//! stale files, deleted the same way. Either way the committed manifest
//! describes a consistent store.

use serde::{Deserialize, Serialize};

use crate::digest::fnv1a;

/// Header tag of every manifest file.
pub const MANIFEST_MAGIC: &str = "dlstore-manifest-v1";

/// One referenced segment file.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name relative to the store directory (`seg-000001.seg`).
    pub file: String,
    /// Records in the segment.
    pub records: u64,
    /// File size in bytes.
    pub bytes: u64,
}

/// Recovery state of one pseudonym stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamMeta {
    /// The pseudonym.
    pub pseudonym: String,
    /// Durable records in this stream.
    pub records: u64,
    /// Running FNV-1a digest over the durable prefix, in stream order.
    pub digest: u64,
    /// Highest durable sequence number in this stream.
    pub last_seq: u64,
    /// Idempotent request ids already recorded (sorted for determinism).
    pub ids: Vec<u64>,
}

/// The manifest body: everything [`LogStore`](crate::LogStore) needs to
/// recover without reading a single record payload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Next segment file number to allocate.
    pub next_segment_id: u64,
    /// Total durable records across all segments.
    pub durable_records: u64,
    /// Highest durable sequence number, `None` for an empty store. WAL
    /// tail replay starts past this.
    pub last_durable_seq: Option<u64>,
    /// Referenced segment files, oldest first.
    pub segments: Vec<SegmentMeta>,
    /// Per-stream recovery state, in order of first appearance.
    pub streams: Vec<StreamMeta>,
}

impl Manifest {
    /// Serializes with the checksummed header line.
    pub fn encode(&self) -> Vec<u8> {
        let body = serde_json::to_vec(self).expect("manifest serializes");
        let mut out = format!("{MANIFEST_MAGIC} {:016x}\n", fnv1a(&body)).into_bytes();
        out.extend_from_slice(&body);
        out
    }

    /// Parses and validates a manifest file. Errors (never panics) on a
    /// missing or malformed header, a checksum mismatch, or a body that
    /// is not the expected JSON.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, String> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("missing manifest header line")?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| "header is not utf-8".to_string())?;
        let body = &bytes[newline + 1..];
        let sum_hex = header
            .strip_prefix(MANIFEST_MAGIC)
            .ok_or("bad manifest magic")?
            .trim();
        let sum = u64::from_str_radix(sum_hex, 16).map_err(|_| "malformed checksum".to_string())?;
        if fnv1a(body) != sum {
            return Err("manifest checksum mismatch".into());
        }
        let body = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
        serde_json::from_str(body).map_err(|e| format!("manifest body: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            next_segment_id: 3,
            durable_records: 12,
            last_durable_seq: Some(41),
            segments: vec![SegmentMeta {
                file: "seg-000001.seg".into(),
                records: 12,
                bytes: 1234,
            }],
            streams: vec![StreamMeta {
                pseudonym: "user-0".into(),
                records: 12,
                digest: u64::MAX - 1,
                last_seq: 41,
                ids: vec![0, 1, 2],
            }],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let empty = Manifest::default();
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_tampering() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(Manifest::decode(&bytes).unwrap_err().contains("checksum"));
        assert!(Manifest::decode(b"").unwrap_err().contains("header"));
        assert!(Manifest::decode(b"wrong magic\n{}")
            .unwrap_err()
            .contains("magic"));
        assert!(Manifest::decode(b"dlstore-manifest-v1 zz\n{}")
            .unwrap_err()
            .contains("checksum"));
    }
}
