//! Discrete-time multi-user simulation engine and experiment runner.
//!
//! This crate wires everything together to regenerate the paper's
//! evaluation: it runs a fleet of trajectories (the synthetic Nara
//! rickshaws) through [`Client`](dummyloc_core::client::Client)s, collects
//! every reported position (true and dummy) into per-tick
//! [`PopulationGrid`](dummyloc_core::population::PopulationGrid)s, and
//! accumulates the paper's metrics:
//!
//! * [`engine`] — the [`engine::Simulation`] loop,
//! * [`parallel`] — the [`parallel::ParallelEngine`]: the same loop with
//!   users fanned out over worker threads, byte-identical at any thread
//!   count,
//! * [`workload`] — the standard 39-rickshaw Nara workload and the other
//!   example workloads,
//! * [`experiments`] — one module per paper figure/table plus the
//!   ablations of `DESIGN.md` §7 (E1–E5, A1–A3),
//! * [`report`] — plain-text table rendering and JSON export for
//!   `EXPERIMENTS.md`,
//! * [`viz`] — ASCII heatmaps and SVG scenes for inspecting runs.
//!
//! # Example: one simulation run
//!
//! ```
//! use dummyloc_sim::engine::{GeneratorKind, SimConfig, Simulation};
//! use dummyloc_sim::workload;
//!
//! // A small fleet for doc-test speed; experiments use 39 tracks.
//! let fleet = workload::nara_fleet_sized(4, 60.0, 42);
//! let config = SimConfig {
//!     grid_size: 8,
//!     dummy_count: 3,
//!     generator: GeneratorKind::Mn { m: 60.0 },
//!     ..SimConfig::nara_default(7)
//! };
//! let outcome = Simulation::new(config).unwrap().run(&fleet).unwrap();
//! assert!(outcome.mean_f > 0.0);
//! assert_eq!(outcome.streams.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod experiments;
pub mod parallel;
pub mod report;
pub mod viz;
pub mod workload;

mod error;

pub use checkpoint::{CheckpointSpec, SimCheckpoint};
pub use engine::{GeneratorKind, SimConfig, SimOutcome, Simulation};
pub use error::SimError;
pub use parallel::ParallelEngine;

/// Result alias used throughout the simulation crate.
pub type Result<T> = std::result::Result<T, SimError>;
