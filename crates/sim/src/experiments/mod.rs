//! One module per reproduced paper artifact (see `DESIGN.md` §4).
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig7`] | Figure 7 — ubiquity `F` (%) vs number of dummies for 8×8 / 10×10 / 12×12 regions |
//! | [`fig8`] | Figure 8 — `Shift(P)` bucket distribution for Random / MN / MLN |
//! | [`table1`] | Table 1 / Figure 3 — ubiquity & congestion of three example distributions |
//! | [`fig2`] | Figure 2 — `AS_F` / `AS_P` worked examples |
//! | [`tracing`] | Figure 4 / §3 — traceability of cloaking vs dummies |
//! | [`ablation_radius`] | A1 — neighborhood radius `m` sweep |
//! | [`ablation_mln`] | A2 — MLN retry budget / threshold sweep |
//! | [`ablation_precision`] | A4 — wire-precision (quantization) sweep |
//! | [`cost`] | A3 — bandwidth & provider work vs dummy count |
//!
//! Each module exposes a parameter struct (defaults matching the paper), a
//! `run` function returning a serializable result, and a `render` helper
//! producing the printable table. The [`registry`] module wraps each one
//! as an [`Experiment`] behind its paper-default parameters; the CLI and
//! the `dummyloc-bench` binaries resolve experiments by name through the
//! one [`Registry`] instead of hand-wired match arms.

pub mod ablation_mln;
pub mod ablation_precision;
pub mod ablation_radius;
pub mod cost;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod registry;
pub mod table1;
pub mod tracing;

pub use registry::{Experiment, ExperimentReport, Registry};

use dummyloc_core::pool::ThreadPool;

/// Runs `f` over every item on the process-default thread pool,
/// preserving input order. Parameter sweeps are embarrassingly parallel;
/// this keeps the full Figure-7 sweep under a second on a laptop, and the
/// CLI's `--threads 1` makes it fully serial.
pub(crate) fn run_parallel<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    ThreadPool::with_default()
        .map(items, |_, item| f(item))
        .expect("sweep worker panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = vec![];
        assert!(run_parallel(&empty, |&i: &u64| i).is_empty());
    }
}
