//! One module per reproduced paper artifact (see `DESIGN.md` §4).
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig7`] | Figure 7 — ubiquity `F` (%) vs number of dummies for 8×8 / 10×10 / 12×12 regions |
//! | [`fig8`] | Figure 8 — `Shift(P)` bucket distribution for Random / MN / MLN |
//! | [`table1`] | Table 1 / Figure 3 — ubiquity & congestion of three example distributions |
//! | [`fig2`] | Figure 2 — `AS_F` / `AS_P` worked examples |
//! | [`tracing`] | Figure 4 / §3 — traceability of cloaking vs dummies |
//! | [`ablation_radius`] | A1 — neighborhood radius `m` sweep |
//! | [`ablation_mln`] | A2 — MLN retry budget / threshold sweep |
//! | [`ablation_precision`] | A4 — wire-precision (quantization) sweep |
//! | [`cost`] | A3 — bandwidth & provider work vs dummy count |
//!
//! Each module exposes a parameter struct (defaults matching the paper), a
//! `run` function returning a serializable result, and a `render` helper
//! producing the printable table. The [`registry`] module wraps each one
//! as an [`Experiment`] behind its paper-default parameters; the CLI and
//! the `dummyloc-bench` binaries resolve experiments by name through the
//! one [`Registry`] instead of hand-wired match arms.

pub mod ablation_mln;
pub mod ablation_precision;
pub mod ablation_radius;
pub mod cost;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod registry;
pub mod table1;
pub mod tracing;

pub use registry::{Experiment, ExperimentReport, Registry};

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Runs `f` over every item on a small thread pool, preserving input
/// order. Parameter sweeps are embarrassingly parallel; this keeps the
/// full Figure-7 sweep under a second on a laptop.
pub(crate) fn run_parallel<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let o = f(&items[i]);
                out.lock()[i] = Some(o);
            });
        }
    })
    .expect("sweep worker panicked");
    out.into_inner()
        .into_iter()
        .map(|o| o.expect("every sweep slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = vec![];
        assert!(run_parallel(&empty, |&i: &u64| i).is_empty());
    }
}
