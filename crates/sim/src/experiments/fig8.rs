//! **E2 — Figure 8**: distribution of `Shift(P)` for the Random, MN and
//! MLN dummy algorithms, at 12×12 regions and 3 dummies.
//!
//! Paper finding the reproduction must match in shape: MN and MLN place
//! far more probability mass on small shifts (especially `0`) than random
//! generation, i.e. their dummies move plausibly.

use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{GeneratorKind, SimConfig, Simulation};
use crate::report::{fmt, Table};
use crate::Result;

/// Parameters of the Figure-8 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Params {
    /// Region grid size (paper: 12).
    pub grid: u32,
    /// Dummies per user (paper: 3).
    pub dummies: usize,
    /// MN/MLN neighborhood half-extent in metres.
    pub m: f64,
    /// MLN retry budget (paper pseudocode: 3).
    pub retry_budget: u32,
}

impl Default for Fig8Params {
    fn default() -> Self {
        Fig8Params {
            grid: 12,
            dummies: 3,
            m: 120.0,
            retry_budget: 3,
        }
    }
}

/// Measured `Shift(P)` distribution for one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Algorithm label.
    pub algorithm: String,
    /// Percentage of (region, step) samples with shift 0 (no change).
    pub pct_none: f64,
    /// Percentage with shift 1–2.
    pub pct_small: f64,
    /// Percentage with shift 3–5.
    pub pct_medium: f64,
    /// Percentage with shift ≥ 6.
    pub pct_large: f64,
    /// Mean per-region shift (not in the paper's figure; useful summary).
    pub mean_shift: f64,
}

/// The full Figure-8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One row per algorithm, in Random / MN / MLN order.
    pub rows: Vec<Fig8Row>,
}

/// Runs the comparison over a given workload.
pub fn run(seed: u64, fleet: &Dataset, params: &Fig8Params) -> Result<Fig8Result> {
    let generators = [
        GeneratorKind::Random,
        GeneratorKind::Mn { m: params.m },
        GeneratorKind::Mln {
            m: params.m,
            retry_budget: params.retry_budget,
        },
    ];
    let outcomes = super::run_parallel(&generators, |&generator| -> Result<Fig8Row> {
        let config = SimConfig {
            grid_size: params.grid,
            dummy_count: params.dummies,
            generator,
            ..SimConfig::nara_default(seed)
        };
        let out = Simulation::new(config)?.run(fleet)?;
        let (pct_none, pct_small, pct_medium, pct_large) = out.shift_buckets.percentages();
        Ok(Fig8Row {
            algorithm: generator.label().to_string(),
            pct_none,
            pct_small,
            pct_medium,
            pct_large,
            mean_shift: out.shift_mean,
        })
    });
    let mut rows = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        rows.push(o?);
    }
    Ok(Fig8Result { rows })
}

/// Renders the paper's figure as a table (percentages per bucket).
pub fn render(result: &Fig8Result) -> String {
    let mut table = Table::new(
        "Figure 8 — Shift(P) distribution (%), 12x12 regions, 3 dummies",
        &["algorithm", "0 (no change)", "1-2", "3-5", "6+", "mean"],
    );
    for r in &result.rows {
        table.row(&[
            r.algorithm.clone(),
            fmt(r.pct_none, 1),
            fmt(r.pct_small, 1),
            fmt(r.pct_medium, 1),
            fmt(r.pct_large, 1),
            fmt(r.mean_shift, 2),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn small_fleet() -> Dataset {
        workload::nara_fleet_sized(12, 300.0, 4)
    }

    #[test]
    fn rows_cover_three_algorithms_and_sum_to_100() {
        let r = run(1, &small_fleet(), &Fig8Params::default()).unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].algorithm, "random");
        assert_eq!(r.rows[1].algorithm, "mn");
        assert_eq!(r.rows[2].algorithm, "mln");
        for row in &r.rows {
            let total = row.pct_none + row.pct_small + row.pct_medium + row.pct_large;
            assert!((total - 100.0).abs() < 1e-6, "{total}");
        }
    }

    #[test]
    fn mn_and_mln_shift_less_than_random() {
        let r = run(2, &small_fleet(), &Fig8Params::default()).unwrap();
        let random = &r.rows[0];
        let mn = &r.rows[1];
        let mln = &r.rows[2];
        assert!(mn.mean_shift < random.mean_shift);
        assert!(mln.mean_shift < random.mean_shift);
        assert!(mn.pct_none > random.pct_none);
        assert!(mln.pct_none > random.pct_none);
    }

    #[test]
    fn render_lists_buckets() {
        let r = run(3, &small_fleet(), &Fig8Params::default()).unwrap();
        let s = render(&r);
        assert!(s.contains("no change"));
        assert!(s.contains("random"));
        assert!(s.contains("mln"));
    }
}
