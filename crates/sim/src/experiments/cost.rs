//! **A3 — cost accounting**: what the dummy scheme charges.
//!
//! Every dummy multiplies uplink positions, provider index queries and
//! downlink answers. The sweep runs the full client–provider loop
//! (nearest-restaurant queries) at increasing dummy counts and reports
//! the per-request bandwidth and work amplification — the price axis
//! readers must weigh against Figure 7's privacy axis.

use dummyloc_lbs::poi::Category;
use dummyloc_lbs::query::QueryKind;
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{GeneratorKind, ServiceConfig, SimConfig, Simulation};
use crate::report::{fmt, Table};
use crate::Result;

/// Parameters of the cost sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Dummy counts to sweep.
    pub dummy_counts: Vec<usize>,
    /// Region grid size.
    pub grid: u32,
    /// MN neighborhood half-extent in metres.
    pub m: f64,
    /// POIs in the provider database.
    pub poi_count: usize,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            dummy_counts: (0..=9).collect(),
            grid: 12,
            m: 120.0,
            poi_count: 200,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostRow {
    /// Dummies per user.
    pub dummies: usize,
    /// Positions the provider processes per request (work amplification).
    pub positions_per_request: f64,
    /// Mean uplink bytes per request.
    pub uplink_per_request: f64,
    /// Mean downlink bytes per request.
    pub downlink_per_request: f64,
    /// Mean ubiquity `F` bought at this cost.
    pub f: f64,
}

/// The full cost result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostResult {
    /// One row per dummy count.
    pub rows: Vec<CostRow>,
}

/// Runs the sweep over a given workload.
pub fn run(seed: u64, fleet: &Dataset, params: &CostParams) -> Result<CostResult> {
    let outcomes = super::run_parallel(&params.dummy_counts, |&dummies| -> Result<CostRow> {
        let config = SimConfig {
            grid_size: params.grid,
            dummy_count: dummies,
            generator: GeneratorKind::Mn { m: params.m },
            service: Some(ServiceConfig {
                poi_count: params.poi_count,
                poi_seed: seed ^ 0xC057,
                query: QueryKind::NearestPoi {
                    category: Some(Category::Restaurant),
                },
            }),
            ..SimConfig::nara_default(seed)
        };
        let out = Simulation::new(config)?.run(fleet)?;
        let cost = out.cost.expect("service config attached");
        Ok(CostRow {
            dummies,
            positions_per_request: cost.positions_per_request(),
            uplink_per_request: cost.uplink_bytes as f64 / cost.requests as f64,
            downlink_per_request: cost.downlink_bytes as f64 / cost.requests as f64,
            f: out.mean_f,
        })
    });
    let mut rows = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        rows.push(o?);
    }
    Ok(CostResult { rows })
}

/// Renders the cost table.
pub fn render(result: &CostResult) -> String {
    let mut table = Table::new(
        "Ablation A3 — per-request cost vs dummy count (nearest-restaurant queries)",
        &[
            "dummies",
            "positions/req",
            "uplink B/req",
            "downlink B/req",
            "F (%)",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.dummies.to_string(),
            fmt(r.positions_per_request, 1),
            fmt(r.uplink_per_request, 1),
            fmt(r.downlink_per_request, 1),
            crate::report::pct(r.f),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn cost_scales_linearly_with_dummies() {
        let fleet = workload::nara_fleet_sized(8, 300.0, 9);
        let params = CostParams {
            dummy_counts: vec![0, 3, 9],
            grid: 10,
            m: 120.0,
            poi_count: 50,
        };
        let r = run(1, &fleet, &params).unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].positions_per_request, 1.0);
        assert_eq!(r.rows[1].positions_per_request, 4.0);
        assert_eq!(r.rows[2].positions_per_request, 10.0);
        // Uplink grows linearly in position count.
        let up0 = r.rows[0].uplink_per_request;
        let up9 = r.rows[2].uplink_per_request;
        // 0 dummies: 24 + 16 = 40 B; 9 dummies: 24 + 160 = 184 B (the
        // fixed header keeps it just under 5×).
        assert!(up9 > up0 * 4.0, "uplink {up0} → {up9}");
        // Privacy bought: F grows with dummies.
        assert!(r.rows[2].f > r.rows[0].f);
        let s = render(&r);
        assert!(s.contains("positions/req"));
    }
}
