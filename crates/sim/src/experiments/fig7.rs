//! **E1 — Figure 7**: ubiquity `F` (%) vs number of dummies, for region
//! grids 8×8, 10×10 and 12×12 over the 39-rickshaw workload.
//!
//! Paper findings the reproduction must match in shape:
//!
//! 1. `F` grows monotonically (and concavely) in the dummy count.
//! 2. Generating even one dummy beats the no-dummy / accuracy-reduction
//!    setting.
//! 3. Coarser grids saturate first: reaching 80 % of `F` takes ~3 dummies
//!    at 8×8, ~4 at 10×10 and ~6 at 12×12.

use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{GeneratorKind, SimConfig, Simulation};
use crate::report::{pct, Table};
use crate::Result;

/// Parameters of the Figure-7 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Params {
    /// Region grid sizes to sweep (paper: 8, 10, 12).
    pub grids: Vec<u32>,
    /// Dummy counts to sweep (paper x-axis: 0 through 9).
    pub dummy_counts: Vec<usize>,
    /// MN neighborhood half-extent in metres.
    pub m: f64,
    /// The `F` level the paper reads dummy requirements off at (0.8).
    pub target_f: f64,
}

impl Default for Fig7Params {
    fn default() -> Self {
        Fig7Params {
            grids: vec![8, 10, 12],
            dummy_counts: (0..=9).collect(),
            m: 120.0,
            target_f: 0.8,
        }
    }
}

/// One measured point of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Point {
    /// Grid size `n` (regions are `n × n`).
    pub grid: u32,
    /// Dummies per user.
    pub dummies: usize,
    /// Mean ubiquity `F` over the run, in `[0, 1]`.
    pub f: f64,
}

/// The full Figure-7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Every measured `(grid, dummies, F)` point.
    pub points: Vec<Fig7Point>,
    /// Per grid, the smallest swept dummy count reaching `target_f`
    /// (`None` if never reached) — the paper's "3 / 4 / 6 dummies" claim.
    pub dummies_for_target: Vec<(u32, Option<usize>)>,
}

/// Runs the sweep over a given workload.
pub fn run(seed: u64, fleet: &Dataset, params: &Fig7Params) -> Result<Fig7Result> {
    let cells: Vec<(u32, usize)> = params
        .grids
        .iter()
        .flat_map(|&g| params.dummy_counts.iter().map(move |&d| (g, d)))
        .collect();
    let outcomes = super::run_parallel(&cells, |&(grid, dummies)| -> Result<Fig7Point> {
        let config = SimConfig {
            grid_size: grid,
            dummy_count: dummies,
            generator: GeneratorKind::Mn { m: params.m },
            ..SimConfig::nara_default(seed)
        };
        let out = Simulation::new(config)?.run(fleet)?;
        Ok(Fig7Point {
            grid,
            dummies,
            f: out.mean_f,
        })
    });
    let mut points = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        points.push(o?);
    }
    let dummies_for_target = params
        .grids
        .iter()
        .map(|&g| {
            let need = points
                .iter()
                .filter(|p| p.grid == g && p.f >= params.target_f)
                .map(|p| p.dummies)
                .min();
            (g, need)
        })
        .collect();
    Ok(Fig7Result {
        points,
        dummies_for_target,
    })
}

/// Renders the paper's figure as a table: one row per dummy count, one
/// `F (%)` column per grid, plus the dummies-to-80 % summary.
pub fn render(result: &Fig7Result, params: &Fig7Params) -> String {
    let mut headers: Vec<String> = vec!["dummies".into()];
    headers.extend(params.grids.iter().map(|g| format!("F% {g}x{g}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 7 — ubiquity F (%) vs number of dummies (MN dummies)",
        &header_refs,
    );
    for &d in &params.dummy_counts {
        let mut row = vec![d.to_string()];
        for &g in &params.grids {
            let f = result
                .points
                .iter()
                .find(|p| p.grid == g && p.dummies == d)
                .map(|p| p.f)
                .unwrap_or(f64::NAN);
            row.push(pct(f));
        }
        table.row(&row);
    }
    let mut out = table.render();
    out.push('\n');
    for (g, need) in &result.dummies_for_target {
        match need {
            Some(d) => out.push_str(&format!(
                "dummies needed for {:.0}% F at {g}x{g}: {d}\n",
                params.target_f * 100.0
            )),
            None => out.push_str(&format!(
                "F never reached {:.0}% at {g}x{g} in the swept range\n",
                params.target_f * 100.0
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn small_params() -> Fig7Params {
        Fig7Params {
            grids: vec![8, 12],
            dummy_counts: vec![0, 2, 4],
            m: 120.0,
            target_f: 0.5,
        }
    }

    fn small_fleet() -> Dataset {
        workload::nara_fleet_sized(12, 300.0, 3)
    }

    #[test]
    fn sweep_covers_all_cells() {
        let r = run(1, &small_fleet(), &small_params()).unwrap();
        assert_eq!(r.points.len(), 6);
        assert_eq!(r.dummies_for_target.len(), 2);
        for p in &r.points {
            assert!((0.0..=1.0).contains(&p.f));
        }
    }

    #[test]
    fn f_increases_with_dummies_and_decreases_with_grid_size() {
        let r = run(2, &small_fleet(), &small_params()).unwrap();
        let f = |g: u32, d: usize| {
            r.points
                .iter()
                .find(|p| p.grid == g && p.dummies == d)
                .unwrap()
                .f
        };
        assert!(f(8, 4) > f(8, 0));
        assert!(f(12, 4) > f(12, 0));
        // Same dummy count covers a smaller fraction of a finer grid.
        assert!(f(8, 2) > f(12, 2));
    }

    #[test]
    fn render_contains_all_rows() {
        let p = small_params();
        let r = run(3, &small_fleet(), &p).unwrap();
        let s = render(&r, &p);
        assert!(s.contains("Figure 7"));
        assert!(s.contains("F% 8x8"));
        assert!(s.lines().count() >= 3 + 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_params();
        let fleet = small_fleet();
        assert_eq!(run(7, &fleet, &p).unwrap(), run(7, &fleet, &p).unwrap());
    }
}
