//! **A2 — ablation**: MLN's rejection loop.
//!
//! MLN differs from MN only in the density filter, so the question is
//! what the filter buys and what its parameters matter. The sweep varies
//! the retry budget (the paper's pseudocode hardcodes 3) and reports:
//!
//! * congestion balance (coefficient of variation of occupied-region
//!   populations — the thing MLN is supposed to flatten),
//! * mean ubiquity `F` (spreading dummies out should also raise it),
//! * mean `Shift(P)` (does the filter cost plausibility?).
//!
//! Budget 0 is effectively MN (every candidate accepted); growing budgets
//! should trade nothing visible in `Shift(P)` for a flatter population.

use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{GeneratorKind, SimConfig, Simulation};
use crate::report::{fmt, pct, Table};
use crate::Result;

/// Parameters of the MLN ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlnParams {
    /// Retry budgets to sweep (0 ≈ MN; the paper uses 3).
    pub budgets: Vec<u32>,
    /// Region grid size.
    pub grid: u32,
    /// Dummies per user.
    pub dummies: usize,
    /// Neighborhood half-extent in metres.
    pub m: f64,
}

impl Default for MlnParams {
    fn default() -> Self {
        MlnParams {
            budgets: vec![0, 1, 3, 8],
            grid: 12,
            dummies: 3,
            m: 120.0,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlnRow {
    /// Retry budget.
    pub budget: u32,
    /// Mean ubiquity `F`.
    pub f: f64,
    /// Mean coefficient of variation of occupied-region populations.
    pub congestion_cv: f64,
    /// Mean per-region `Shift(P)`.
    pub shift_mean: f64,
}

/// The full ablation result, with an MN reference row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlnResult {
    /// MN at the same `m` for reference.
    pub mn_reference: MlnRow,
    /// One row per budget.
    pub rows: Vec<MlnRow>,
}

/// Runs the sweep over a given workload.
pub fn run(seed: u64, fleet: &Dataset, params: &MlnParams) -> Result<MlnResult> {
    let mut kinds: Vec<(Option<u32>, GeneratorKind)> =
        vec![(None, GeneratorKind::Mn { m: params.m })];
    for &b in &params.budgets {
        kinds.push((
            Some(b),
            GeneratorKind::Mln {
                m: params.m,
                retry_budget: b,
            },
        ));
    }
    let outcomes = super::run_parallel(&kinds, |(budget, generator)| -> Result<MlnRow> {
        let config = SimConfig {
            grid_size: params.grid,
            dummy_count: params.dummies,
            generator: *generator,
            ..SimConfig::nara_default(seed)
        };
        let out = Simulation::new(config)?.run(fleet)?;
        Ok(MlnRow {
            budget: budget.unwrap_or(0),
            f: out.mean_f,
            congestion_cv: out.congestion_cv,
            shift_mean: out.shift_mean,
        })
    });
    let mut it = outcomes.into_iter();
    let mn_reference = it.next().expect("MN reference is always swept")?;
    let mut rows = Vec::new();
    for o in it {
        rows.push(o?);
    }
    Ok(MlnResult { mn_reference, rows })
}

/// Renders the ablation table.
pub fn render(result: &MlnResult) -> String {
    let mut table = Table::new(
        "Ablation A2 — MLN retry budget (threshold = mean occupied P)",
        &[
            "algorithm",
            "budget",
            "F (%)",
            "congestion CV",
            "mean Shift(P)",
        ],
    );
    let mn = &result.mn_reference;
    table.row(&[
        "mn (reference)".into(),
        "-".into(),
        pct(mn.f),
        fmt(mn.congestion_cv, 3),
        fmt(mn.shift_mean, 2),
    ]);
    for r in &result.rows {
        table.row(&[
            "mln".into(),
            r.budget.to_string(),
            pct(r.f),
            fmt(r.congestion_cv, 3),
            fmt(r.shift_mean, 2),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn sweep_produces_reference_and_rows() {
        let fleet = workload::nara_fleet_sized(10, 300.0, 7);
        let params = MlnParams {
            budgets: vec![0, 4],
            grid: 10,
            dummies: 3,
            m: 120.0,
        };
        let r = run(1, &fleet, &params).unwrap();
        assert_eq!(r.rows.len(), 2);
        for row in std::iter::once(&r.mn_reference).chain(&r.rows) {
            assert!((0.0..=1.0).contains(&row.f));
            assert!(row.congestion_cv >= 0.0);
            assert!(row.shift_mean >= 0.0);
        }
        let s = render(&r);
        assert!(s.contains("mn (reference)"));
        assert!(s.contains("mln"));
    }

    #[test]
    fn mln_with_budget_flattens_congestion_vs_mn() {
        // Use a crowded workload (many users, small area coverage) so the
        // density filter has something to flatten.
        let fleet = workload::nara_fleet_sized(24, 600.0, 8);
        let params = MlnParams {
            budgets: vec![8],
            grid: 12,
            dummies: 4,
            m: 200.0,
        };
        let r = run(2, &fleet, &params).unwrap();
        let mln = &r.rows[0];
        // The filter must not make balance *worse* by more than noise.
        assert!(
            mln.congestion_cv <= r.mn_reference.congestion_cv * 1.1,
            "mln cv {} vs mn cv {}",
            mln.congestion_cv,
            r.mn_reference.congestion_cv
        );
    }
}
