//! **A4 — ablation**: wire precision (position quantization).
//!
//! The paper fixes *"the precision of the position data \[to\] the same
//! scale as the regions"*. Quantizing reports to region centers is a
//! second privacy lever on top of dummies: small true movements vanish
//! inside a cell, starving the continuity trackers — at the price of
//! service quality (the provider answers for the cell center, not the
//! user). This sweep measures both sides.

use dummyloc_core::adversary::{ChainScore, ContinuityTracker};
use dummyloc_geo::Grid;
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{GeneratorKind, SimConfig, Simulation};
use crate::report::{fmt, pct, Table};
use crate::Result;

/// Parameters of the precision ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionParams {
    /// Region grid sizes to quantize at (`None`-like exact reporting is
    /// always included as the first row).
    pub grids: Vec<u32>,
    /// Dummies per user.
    pub dummies: usize,
    /// MN neighborhood half-extent in metres.
    pub m: f64,
}

impl Default for PrecisionParams {
    fn default() -> Self {
        PrecisionParams {
            grids: vec![24, 12, 8],
            dummies: 3,
            m: 120.0,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRow {
    /// "exact" or "n x n".
    pub precision: String,
    /// Cell size in metres (0 for exact).
    pub cell_m: f64,
    /// Mean ubiquity `F`.
    pub f: f64,
    /// Max-step tracker identification rate.
    pub tracker_rate: f64,
    /// Mean service-quality loss: distance between the true position and
    /// what the provider answers for (the reported truth), in metres.
    pub mean_precision_loss: f64,
}

/// The full precision-ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionResult {
    /// Exact-reporting reference followed by one row per grid.
    pub rows: Vec<PrecisionRow>,
}

/// Runs the sweep over a given workload.
pub fn run(seed: u64, fleet: &Dataset, params: &PrecisionParams) -> Result<PrecisionResult> {
    // One cell per precision level. The engine uses one grid for both
    // quantization and metrics, so F is measured at each row's own grid —
    // comparable *within* a row's column meaning, not across rows (the
    // exact row uses 12×12).
    let mut cells: Vec<Option<u32>> = vec![None];
    cells.extend(params.grids.iter().map(|&g| Some(g)));
    let outcomes = super::run_parallel(&cells, |&quant| -> Result<PrecisionRow> {
        // Quantization in the engine reuses the metric grid, so sweep by
        // setting grid_size to the quantization grid.
        let grid_size = quant.unwrap_or(12);
        let config = SimConfig {
            grid_size,
            dummy_count: params.dummies,
            generator: GeneratorKind::Mn { m: params.m },
            quantize: quant.is_some(),
            ..SimConfig::nara_default(seed)
        };
        let sim = Simulation::new(config)?;
        let out = sim.run(fleet)?;
        let tracker_rate =
            out.identification_rate(&ContinuityTracker::new(ChainScore::MaxStep), seed);
        // Service-quality loss: compare the reported truth with the real
        // trajectory positions.
        let mut loss_sum = 0.0;
        let mut loss_n = 0usize;
        let (start, _) = fleet
            .common_time_range()
            .ok_or(crate::SimError::NoCommonWindow)?;
        for (u, (requests, _)) in out.streams.iter().enumerate() {
            let track = &fleet.tracks()[u];
            // We don't know per-round truth indexes for earlier rounds, so
            // measure on the quantization error of the true positions
            // directly.
            for (k, _req) in requests.iter().enumerate() {
                let t = start + k as f64 * config.tick;
                let truth = track.position_at(t).expect("common window");
                let reported = match quant {
                    None => truth,
                    Some(_) => {
                        let g: &Grid = sim.grid();
                        g.cell_center(g.cell_of_clamped(truth)).expect("valid cell")
                    }
                };
                loss_sum += truth.distance(&reported);
                loss_n += 1;
            }
        }
        let cell_m = quant.map_or(0.0, |g| config.area.width() / g as f64);
        Ok(PrecisionRow {
            precision: quant.map_or("exact".to_string(), |g| format!("{g}x{g}")),
            cell_m,
            f: out.mean_f,
            tracker_rate,
            mean_precision_loss: if loss_n > 0 {
                loss_sum / loss_n as f64
            } else {
                0.0
            },
        })
    });
    let mut rows = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        rows.push(o?);
    }
    Ok(PrecisionResult { rows })
}

/// Renders the ablation table.
pub fn render(result: &PrecisionResult) -> String {
    let mut table = Table::new(
        "Ablation A4 — wire precision (quantize reports to region centers)",
        &[
            "precision",
            "cell (m)",
            "F (%)",
            "tracker rate",
            "precision loss (m)",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.precision.clone(),
            fmt(r.cell_m, 0),
            pct(r.f),
            fmt(r.tracker_rate, 2),
            fmt(r.mean_precision_loss, 1),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn small() -> (Dataset, PrecisionParams) {
        (
            workload::nara_fleet_sized(12, 600.0, 14),
            PrecisionParams {
                grids: vec![12],
                dummies: 3,
                m: 120.0,
            },
        )
    }

    #[test]
    fn quantization_trades_tracking_for_precision() {
        let (fleet, params) = small();
        let r = run(1, &fleet, &params).unwrap();
        assert_eq!(r.rows.len(), 2);
        let exact = &r.rows[0];
        let quantized = &r.rows[1];
        assert_eq!(exact.precision, "exact");
        assert_eq!(exact.mean_precision_loss, 0.0);
        assert!(quantized.mean_precision_loss > 0.0);
        // Coarse reports cannot help the tracker; they usually hurt it.
        assert!(
            quantized.tracker_rate <= exact.tracker_rate + 0.1,
            "quantized {} vs exact {}",
            quantized.tracker_rate,
            exact.tracker_rate
        );
        // Expected loss for a 166 m cell is ~<half the diagonal.
        assert!(quantized.mean_precision_loss < 120.0);
    }

    #[test]
    fn render_lists_all_rows() {
        let (fleet, params) = small();
        let r = run(2, &fleet, &params).unwrap();
        let s = render(&r);
        assert!(s.contains("exact"));
        assert!(s.contains("12x12"));
        assert!(s.contains("precision loss"));
    }
}
