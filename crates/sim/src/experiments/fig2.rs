//! **E4 — Figure 2**: the worked Anonymity-Set examples.
//!
//! Figure 2 of the paper illustrates the two restriction functions on a
//! 5×5 grid of unit-scale regions:
//!
//! * (a) the information *"I live in the gray regions"* with 9 gray
//!   regions gives `|AS_F(i)| = 9`;
//! * (b) the information *"I live in the region where an arrow points"*
//!   whose region holds 3 persons gives `|AS_P(i)| = 3`.
//!
//! This module computes both examples through the library's
//! [`anonymity`](dummyloc_core::anonymity) machinery, plus the derived
//! example of a dummy-protected request.

use dummyloc_core::anonymity::{as_f, as_f_area, as_p, RegionInfo};
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::{BBox, CellId, Grid, Point};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::Result;

/// The computed Figure-2 values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// `|AS_F(i)|` of example (a) — the paper's 9.
    pub as_f_example: usize,
    /// Total scale of example (a)'s region set (equals the count at unit
    /// scale).
    pub as_f_area: f64,
    /// `|AS_P(i)|` of example (b) — the paper's 3.
    pub as_p_example: u64,
    /// `|AS_F|` of a request carrying 1 true position and 3 dummies in
    /// distinct regions — how the dummy scheme manufactures anonymity.
    pub as_f_dummy_request: usize,
}

fn example_grid() -> Grid {
    let b = BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)).expect("static bounds");
    Grid::square(b, 5).expect("5x5 over a positive area")
}

/// Computes the worked examples.
pub fn run() -> Result<Fig2Result> {
    let grid = example_grid();

    // (a) 9 gray regions: the 3×3 block in the grid's corner.
    let gray: Vec<CellId> = (0..3)
        .flat_map(|r| (0..3).map(move |c| CellId::new(c, r)))
        .collect();
    let info_a = RegionInfo::from_regions(gray);

    // (b) 3 persons in the pointed-at region, others elsewhere.
    let pop = PopulationGrid::from_positions(
        &grid,
        vec![
            Point::new(2.2, 2.2),
            Point::new(2.5, 2.6),
            Point::new(2.8, 2.4), // the pointed-at region (2, 2)
            Point::new(0.5, 4.5),
            Point::new(4.5, 0.5),
        ],
    )?;
    let info_b = RegionInfo::from_regions(vec![CellId::new(2, 2)]);

    // Derived: a dummy-protected request (1 truth + 3 dummies, distinct
    // regions).
    let info_request = RegionInfo::from_positions(
        &grid,
        vec![
            Point::new(1.5, 1.5), // truth
            Point::new(3.5, 0.5),
            Point::new(0.5, 3.5),
            Point::new(4.5, 4.5),
        ],
    )?;

    Ok(Fig2Result {
        as_f_example: as_f(&info_a),
        as_f_area: as_f_area(&grid, &info_a)?,
        as_p_example: as_p(&pop, &info_b),
        as_f_dummy_request: as_f(&info_request),
    })
}

/// Renders the worked examples.
pub fn render(result: &Fig2Result) -> String {
    let mut table = Table::new(
        "Figure 2 — Anonymity Set worked examples (5x5 unit grid)",
        &["example", "value", "paper"],
    );
    table.row(&[
        "(a) |AS_F| of 'I live in the gray regions'".into(),
        result.as_f_example.to_string(),
        "9".into(),
    ]);
    table.row(&[
        "(a) total scale of the gray regions".into(),
        format!("{:.0}", result.as_f_area),
        "9".into(),
    ]);
    table.row(&[
        "(b) |AS_P| of 'the region the arrow points at'".into(),
        result.as_p_example.to_string(),
        "3".into(),
    ]);
    table.row(&[
        "|AS_F| of a request with 3 dummies (distinct regions)".into(),
        result.as_f_dummy_request.to_string(),
        "k+1 = 4".into(),
    ]);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_values() {
        let r = run().unwrap();
        assert_eq!(r.as_f_example, 9);
        assert_eq!(r.as_f_area, 9.0);
        assert_eq!(r.as_p_example, 3);
        assert_eq!(r.as_f_dummy_request, 4);
    }

    #[test]
    fn render_mentions_paper_column() {
        let s = render(&run().unwrap());
        assert!(s.contains("paper"));
        assert!(s.contains("gray regions"));
    }
}
