//! **E3 — Table 1 / Figure 3**: ubiquity and congestion of three example
//! position-data distributions.
//!
//! Figure 3 of the paper sketches three distributions over a small grid
//! and Table 1 classifies them. The published scan garbles the check
//! marks, so we reconstruct the obviously intended reading (documented in
//! `DESIGN.md`):
//!
//! * **(a)** few subjects, spread out → ubiquity ✓, congestion ✗
//! * **(b)** many subjects, spread out → ubiquity ✓, congestion ✓
//! * **(c)** many subjects, packed into one region → ubiquity ✗,
//!   congestion ✓
//!
//! The experiment builds the three distributions on a 5×5 grid, computes
//! `F` and mean occupied-region `P`, and classifies against thresholds.

use dummyloc_core::metrics::ubiquity_f;
use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::{BBox, Grid, Point};
use serde::{Deserialize, Serialize};

use crate::report::{fmt, pct, Table};
use crate::Result;

/// Classification thresholds: `F ≥ f_high` counts as ubiquitous, mean
/// occupied-region population `≥ p_high` counts as congested.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Params {
    /// Ubiquity threshold on `F` (fraction).
    pub f_high: f64,
    /// Congestion threshold on mean occupied `P`.
    pub p_high: f64,
}

impl Default for Table1Params {
    fn default() -> Self {
        // (a)/(b) cover 8 of 25 regions (F = 0.32), (c) covers 2 (0.08):
        // 0.2 separates "spread out" from "packed".
        Table1Params {
            f_high: 0.2,
            p_high: 2.0,
        }
    }
}

/// Result for one of the three example distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// "(a)", "(b)" or "(c)".
    pub case: String,
    /// Subjects placed.
    pub subjects: usize,
    /// Measured ubiquity `F`.
    pub f: f64,
    /// Measured mean occupied-region `P`.
    pub mean_p: f64,
    /// Classified ubiquitous?
    pub ubiquity: bool,
    /// Classified congested?
    pub congestion: bool,
}

/// The full Table-1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Rows (a), (b), (c).
    pub rows: Vec<Table1Row>,
}

/// The 5×5 example grid of Figures 2–3.
fn example_grid() -> Grid {
    let b = BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)).expect("static bounds");
    Grid::square(b, 5).expect("5x5 over a positive area")
}

/// Center of cell `(c, r)` on the example grid.
fn cell_pt(c: u32, r: u32) -> Point {
    Point::new(c as f64 + 0.5, r as f64 + 0.5)
}

/// The three Figure-3 distributions.
fn distributions() -> Vec<(String, Vec<Point>)> {
    // (a) 8 subjects in 8 scattered regions — one each.
    let a = vec![
        cell_pt(0, 0),
        cell_pt(2, 0),
        cell_pt(4, 1),
        cell_pt(1, 2),
        cell_pt(3, 2),
        cell_pt(0, 4),
        cell_pt(2, 4),
        cell_pt(4, 4),
    ];
    // (b) 24 subjects over 8 scattered regions — three each.
    let mut b = Vec::new();
    for p in &a {
        for _ in 0..3 {
            b.push(*p);
        }
    }
    // (c) 24 subjects packed into two adjacent regions.
    let mut c = Vec::new();
    for i in 0..12 {
        let _ = i;
        c.push(cell_pt(2, 2));
        c.push(cell_pt(3, 2));
    }
    vec![
        ("(a)".to_string(), a),
        ("(b)".to_string(), b),
        ("(c)".to_string(), c),
    ]
}

/// Runs the classification.
pub fn run(params: &Table1Params) -> Result<Table1Result> {
    let grid = example_grid();
    let mut rows = Vec::new();
    for (case, points) in distributions() {
        let pop = PopulationGrid::from_positions(&grid, points.iter().copied())?;
        let f = ubiquity_f(&pop);
        let mean_p = pop.mean_occupied();
        rows.push(Table1Row {
            case,
            subjects: points.len(),
            f,
            mean_p,
            ubiquity: f >= params.f_high,
            congestion: mean_p >= params.p_high,
        });
    }
    Ok(Table1Result { rows })
}

/// Renders Table 1.
pub fn render(result: &Table1Result) -> String {
    let mut table = Table::new(
        "Table 1 — location anonymity of the Figure-3 distributions",
        &[
            "case",
            "subjects",
            "F (%)",
            "mean P",
            "ubiquity",
            "congestion",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.case.clone(),
            r.subjects.to_string(),
            pct(r.f),
            fmt(r.mean_p, 2),
            check(r.ubiquity),
            check(r.congestion),
        ]);
    }
    table.render()
}

fn check(b: bool) -> String {
    if b {
        "yes".to_string()
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructed_classification_matches_paper_reading() {
        let r = run(&Table1Params::default()).unwrap();
        assert_eq!(r.rows.len(), 3);
        let a = &r.rows[0];
        let b = &r.rows[1];
        let c = &r.rows[2];
        assert!(a.ubiquity && !a.congestion, "(a): {a:?}");
        assert!(b.ubiquity && b.congestion, "(b): {b:?}");
        assert!(!c.ubiquity && c.congestion, "(c): {c:?}");
    }

    #[test]
    fn measured_values_are_sensible() {
        let r = run(&Table1Params::default()).unwrap();
        let a = &r.rows[0];
        assert_eq!(a.subjects, 8);
        assert!((a.f - 8.0 / 25.0).abs() < 1e-12 || a.f >= 0.3);
        assert_eq!(a.mean_p, 1.0);
        let b = &r.rows[1];
        assert_eq!(b.mean_p, 3.0);
        assert_eq!(b.f, a.f); // same regions, more people
        let c = &r.rows[2];
        assert_eq!(c.mean_p, 12.0);
        assert!(c.f < a.f);
    }

    #[test]
    fn render_has_three_rows() {
        let r = run(&Table1Params::default()).unwrap();
        let s = render(&r);
        assert!(s.contains("(a)"));
        assert!(s.contains("(b)"));
        assert!(s.contains("(c)"));
        assert!(s.contains("congestion"));
    }
}
