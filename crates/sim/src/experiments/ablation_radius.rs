//! **A1 — ablation**: the MN neighborhood half-extent `m`.
//!
//! `m` trades plausibility against coverage: tiny `m` makes dummies
//! near-stationary (tiny `Shift(P)`, but a speed-profile outlier against
//! real users and poor region coverage); huge `m` makes dummies teleport
//! like the random strawman. The sweep reports, per `m` and per
//! neighborhood shape (paper's box vs the disc variant):
//!
//! * mean ubiquity `F`,
//! * mean `Shift(P)` and the share of zero-shift samples,
//! * the max-step tracker's identification rate.

use dummyloc_core::adversary::{ChainScore, ContinuityTracker};
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{GeneratorKind, SimConfig, Simulation};
use crate::report::{fmt, pct, Table};
use crate::Result;

/// Parameters of the radius ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusParams {
    /// Half-extents to sweep, in metres.
    pub radii: Vec<f64>,
    /// Region grid size.
    pub grid: u32,
    /// Dummies per user.
    pub dummies: usize,
    /// Sweep the disc variant too?
    pub include_disc: bool,
}

impl Default for RadiusParams {
    fn default() -> Self {
        RadiusParams {
            radii: vec![15.0, 30.0, 60.0, 120.0, 240.0, 480.0],
            grid: 12,
            dummies: 3,
            include_disc: true,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusRow {
    /// "mn" or "mn-disc".
    pub shape: String,
    /// Half-extent in metres.
    pub m: f64,
    /// Mean ubiquity `F`.
    pub f: f64,
    /// Mean per-region `Shift(P)`.
    pub shift_mean: f64,
    /// Percentage of zero-shift samples.
    pub pct_shift_none: f64,
    /// Max-step tracker identification rate.
    pub tracker_rate: f64,
}

/// The full ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusResult {
    /// One row per (shape, m).
    pub rows: Vec<RadiusRow>,
}

/// Runs the sweep over a given workload.
pub fn run(seed: u64, fleet: &Dataset, params: &RadiusParams) -> Result<RadiusResult> {
    let mut cells: Vec<(String, GeneratorKind)> = Vec::new();
    for &m in &params.radii {
        cells.push(("mn".to_string(), GeneratorKind::Mn { m }));
        if params.include_disc {
            cells.push(("mn-disc".to_string(), GeneratorKind::MnDisc { m }));
        }
    }
    let outcomes = super::run_parallel(&cells, |(shape, generator)| -> Result<RadiusRow> {
        let config = SimConfig {
            grid_size: params.grid,
            dummy_count: params.dummies,
            generator: *generator,
            ..SimConfig::nara_default(seed)
        };
        let out = Simulation::new(config)?.run(fleet)?;
        let m = match generator {
            GeneratorKind::Mn { m } | GeneratorKind::MnDisc { m } => *m,
            _ => unreachable!("radius sweep only builds MN variants"),
        };
        let (pct_none, _, _, _) = out.shift_buckets.percentages();
        let tracker_rate =
            out.identification_rate(&ContinuityTracker::new(ChainScore::MaxStep), seed);
        Ok(RadiusRow {
            shape: shape.clone(),
            m,
            f: out.mean_f,
            shift_mean: out.shift_mean,
            pct_shift_none: pct_none,
            tracker_rate,
        })
    });
    let mut rows = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        rows.push(o?);
    }
    Ok(RadiusResult { rows })
}

/// Renders the ablation table.
pub fn render(result: &RadiusResult) -> String {
    let mut table = Table::new(
        "Ablation A1 — MN neighborhood half-extent m",
        &[
            "shape",
            "m (m)",
            "F (%)",
            "mean Shift(P)",
            "shift=0 (%)",
            "tracker rate",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.shape.clone(),
            fmt(r.m, 0),
            pct(r.f),
            fmt(r.shift_mean, 2),
            fmt(r.pct_shift_none, 1),
            fmt(r.tracker_rate, 2),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn small() -> (Dataset, RadiusParams) {
        (
            workload::nara_fleet_sized(10, 300.0, 6),
            RadiusParams {
                radii: vec![20.0, 400.0],
                grid: 10,
                dummies: 3,
                include_disc: false,
            },
        )
    }

    #[test]
    fn larger_m_shifts_more() {
        let (fleet, params) = small();
        let r = run(1, &fleet, &params).unwrap();
        assert_eq!(r.rows.len(), 2);
        let small_m = &r.rows[0];
        let large_m = &r.rows[1];
        assert!(small_m.m < large_m.m);
        assert!(
            small_m.shift_mean <= large_m.shift_mean,
            "small m {} vs large m {}",
            small_m.shift_mean,
            large_m.shift_mean
        );
    }

    #[test]
    fn disc_variant_included_when_requested() {
        let (fleet, mut params) = small();
        params.include_disc = true;
        let r = run(2, &fleet, &params).unwrap();
        assert_eq!(r.rows.len(), 4);
        assert!(r.rows.iter().any(|row| row.shape == "mn-disc"));
        let s = render(&r);
        assert!(s.contains("mn-disc"));
    }
}
