//! The unified experiment API: one [`Experiment`] trait, one [`Registry`].
//!
//! Every reproduced artifact used to export its own `run`/`run_default`
//! free-function pair with slightly different shapes (`fig2::run()` took
//! nothing, `table1::run(&Params)` ignored the seed, the rest took `(seed,
//! fleet, params)`), and the CLI and every bench binary re-wrapped them by
//! hand. The trait pins the one calling convention down — `run(seed,
//! &Dataset)` with each experiment's paper-default parameters — and the
//! registry is the single place an experiment name resolves to runnable
//! code. `dummyloc-ext` registers its extension experiments into the same
//! registry, so callers never hard-code the experiment list again.

use dummyloc_trajectory::Dataset;
use serde::Serialize;

use super::{
    ablation_mln, ablation_precision, ablation_radius, cost, fig2, fig7, fig8, table1, tracing,
};
use crate::Result;

/// What one experiment run produced: the printable table and the same
/// result serialized as pretty JSON (for `--json` sidecars).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Human-readable rendering (the paper table).
    pub rendered: String,
    /// The structured result as pretty-printed JSON.
    pub json: String,
}

impl ExperimentReport {
    /// Builds a report from a rendered table and a serializable result.
    pub fn new<T: Serialize>(rendered: String, result: &T) -> Result<Self> {
        Ok(ExperimentReport {
            rendered,
            json: serde_json::to_string_pretty(result)?,
        })
    }
}

/// One runnable paper artifact. Implementations run with their paper
/// defaults; parameter sweeps beyond that call the underlying module
/// functions directly.
pub trait Experiment: Send + Sync {
    /// Registry key, e.g. `"fig7"` — stable, kebab-case.
    fn name(&self) -> &'static str;

    /// One-line summary shown by `dummyloc experiments list`.
    fn description(&self) -> &'static str;

    /// Runs the experiment on `fleet` with master seed `seed`.
    /// Workload-independent artifacts (e.g. `fig2`) ignore both.
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport>;
}

/// Name → experiment resolution. Insertion order is preserved (it is the
/// listing order); registering a name twice replaces the earlier entry.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The nine experiments reproduced from the paper itself.
    pub fn builtin() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(Fig7));
        r.register(Box::new(Fig8));
        r.register(Box::new(Table1));
        r.register(Box::new(Fig2));
        r.register(Box::new(Tracing));
        r.register(Box::new(AblationRadius));
        r.register(Box::new(AblationMln));
        r.register(Box::new(AblationPrecision));
        r.register(Box::new(Cost));
        r
    }

    /// Adds (or replaces, on a name collision) one experiment.
    pub fn register(&mut self, experiment: Box<dyn Experiment>) {
        let name = experiment.name();
        if let Some(slot) = self.entries.iter_mut().find(|e| e.name() == name) {
            *slot = experiment;
        } else {
            self.entries.push(experiment);
        }
    }

    /// Runs every registered experiment on the process-default thread
    /// pool and returns `(name, report)` pairs in listing order. Each
    /// experiment derives its own randomness from `seed` alone, so the
    /// reports are identical to running the experiments one by one — the
    /// first failure (in listing order) is returned as the error.
    pub fn run_all(
        &self,
        seed: u64,
        fleet: &Dataset,
    ) -> Result<Vec<(&'static str, ExperimentReport)>> {
        let entries: Vec<&dyn Experiment> = self.iter().collect();
        super::run_parallel(&entries, |e| e.run(seed, fleet).map(|r| (e.name(), r)))
            .into_iter()
            .collect()
    }

    /// Resolves a name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
    }

    /// Every registered name, in listing order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// Iterates the experiments in listing order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.entries.iter().map(|e| e.as_ref())
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct Fig7;

impl Experiment for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }
    fn description(&self) -> &'static str {
        "Figure 7 — ubiquity F (%) vs number of dummies for 8x8/10x10/12x12 grids"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport> {
        let params = fig7::Fig7Params::default();
        let r = fig7::run(seed, fleet, &params)?;
        ExperimentReport::new(fig7::render(&r, &params), &r)
    }
}

struct Fig8;

impl Experiment for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn description(&self) -> &'static str {
        "Figure 8 — Shift(P) bucket distribution for Random / MN / MLN"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport> {
        let r = fig8::run(seed, fleet, &fig8::Fig8Params::default())?;
        ExperimentReport::new(fig8::render(&r), &r)
    }
}

struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn description(&self) -> &'static str {
        "Table 1 / Figure 3 — ubiquity & congestion of three example distributions"
    }
    fn run(&self, _seed: u64, _fleet: &Dataset) -> Result<ExperimentReport> {
        let r = table1::run(&table1::Table1Params::default())?;
        ExperimentReport::new(table1::render(&r), &r)
    }
}

struct Fig2;

impl Experiment for Fig2 {
    fn name(&self) -> &'static str {
        "fig2"
    }
    fn description(&self) -> &'static str {
        "Figure 2 — AS_F / AS_P worked anonymity-set examples"
    }
    fn run(&self, _seed: u64, _fleet: &Dataset) -> Result<ExperimentReport> {
        let r = fig2::run()?;
        ExperimentReport::new(fig2::render(&r), &r)
    }
}

struct Tracing;

impl Experiment for Tracing {
    fn name(&self) -> &'static str {
        "tracing"
    }
    fn description(&self) -> &'static str {
        "Figure 4 / §3 — traceability of cloaking vs dummies"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport> {
        let r = tracing::run(seed, fleet, &tracing::TracingParams::default())?;
        ExperimentReport::new(tracing::render(&r), &r)
    }
}

struct AblationRadius;

impl Experiment for AblationRadius {
    fn name(&self) -> &'static str {
        "ablation-radius"
    }
    fn description(&self) -> &'static str {
        "A1 — neighborhood radius m sweep"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport> {
        let r = ablation_radius::run(seed, fleet, &ablation_radius::RadiusParams::default())?;
        ExperimentReport::new(ablation_radius::render(&r), &r)
    }
}

struct AblationMln;

impl Experiment for AblationMln {
    fn name(&self) -> &'static str {
        "ablation-mln"
    }
    fn description(&self) -> &'static str {
        "A2 — MLN retry budget / threshold sweep"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport> {
        let r = ablation_mln::run(seed, fleet, &ablation_mln::MlnParams::default())?;
        ExperimentReport::new(ablation_mln::render(&r), &r)
    }
}

struct AblationPrecision;

impl Experiment for AblationPrecision {
    fn name(&self) -> &'static str {
        "ablation-precision"
    }
    fn description(&self) -> &'static str {
        "A4 — wire-precision (quantization) sweep"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport> {
        let r =
            ablation_precision::run(seed, fleet, &ablation_precision::PrecisionParams::default())?;
        ExperimentReport::new(ablation_precision::render(&r), &r)
    }
}

struct Cost;

impl Experiment for Cost {
    fn name(&self) -> &'static str {
        "cost"
    }
    fn description(&self) -> &'static str {
        "A3 — bandwidth & provider work vs dummy count"
    }
    fn run(&self, seed: u64, fleet: &Dataset) -> Result<ExperimentReport> {
        let r = cost::run(seed, fleet, &cost::CostParams::default())?;
        ExperimentReport::new(cost::render(&r), &r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn builtin_registry_lists_all_nine_in_order() {
        let r = Registry::builtin();
        assert_eq!(
            r.names(),
            vec![
                "fig7",
                "fig8",
                "table1",
                "fig2",
                "tracing",
                "ablation-radius",
                "ablation-mln",
                "ablation-precision",
                "cost",
            ]
        );
        assert_eq!(r.len(), 9);
        assert!(!r.is_empty());
        assert!(r.get("fig7").is_some());
        assert!(r.get("fig99").is_none());
        for e in r.iter() {
            assert!(!e.description().is_empty());
        }
    }

    #[test]
    fn register_replaces_on_name_collision() {
        struct FakeFig7;
        impl Experiment for FakeFig7 {
            fn name(&self) -> &'static str {
                "fig7"
            }
            fn description(&self) -> &'static str {
                "replacement"
            }
            fn run(&self, _seed: u64, _fleet: &Dataset) -> Result<ExperimentReport> {
                ExperimentReport::new("fake".into(), &42u64)
            }
        }
        let mut r = Registry::builtin();
        r.register(Box::new(FakeFig7));
        assert_eq!(r.len(), 9, "replacement must not grow the registry");
        assert_eq!(r.get("fig7").unwrap().description(), "replacement");
        // Listing order is unchanged: fig7 stays first.
        assert_eq!(r.names()[0], "fig7");
    }

    #[test]
    fn cheap_experiments_run_through_the_trait() {
        // fig2 and table1 ignore the fleet, so an empty one keeps this fast.
        let fleet = Dataset::default();
        let r = Registry::builtin();
        let fig2 = r.get("fig2").unwrap().run(0, &fleet).unwrap();
        assert!(fig2.rendered.contains("|AS_F|"));
        assert!(serde_json::from_str::<serde_json::Value>(&fig2.json).is_ok());
        let t1 = r.get("table1").unwrap().run(0, &fleet).unwrap();
        assert!(t1.rendered.contains("congestion"));
    }

    #[test]
    fn run_all_preserves_listing_order_and_propagates_failures() {
        struct Ok1;
        impl Experiment for Ok1 {
            fn name(&self) -> &'static str {
                "ok1"
            }
            fn description(&self) -> &'static str {
                "cheap"
            }
            fn run(&self, seed: u64, _fleet: &Dataset) -> Result<ExperimentReport> {
                ExperimentReport::new(format!("ok1 seed {seed}"), &seed)
            }
        }
        struct Ok2;
        impl Experiment for Ok2 {
            fn name(&self) -> &'static str {
                "ok2"
            }
            fn description(&self) -> &'static str {
                "cheap"
            }
            fn run(&self, seed: u64, _fleet: &Dataset) -> Result<ExperimentReport> {
                ExperimentReport::new(format!("ok2 seed {seed}"), &seed)
            }
        }
        let mut r = Registry::new();
        r.register(Box::new(Ok1));
        r.register(Box::new(Ok2));
        let reports = r.run_all(5, &Dataset::default()).unwrap();
        assert_eq!(
            reports.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec!["ok1", "ok2"]
        );
        assert_eq!(reports[0].1.rendered, "ok1 seed 5");

        struct Broken;
        impl Experiment for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn description(&self) -> &'static str {
                "always fails"
            }
            fn run(&self, _seed: u64, _fleet: &Dataset) -> Result<ExperimentReport> {
                Err(crate::SimError::InvalidConfig {
                    message: "broken on purpose".into(),
                })
            }
        }
        r.register(Box::new(Broken));
        assert!(r.run_all(5, &Dataset::default()).is_err());
    }

    #[test]
    fn seeded_experiment_runs_on_a_small_fleet() {
        let fleet = workload::nara_fleet_sized(4, 120.0, 7);
        let report = Registry::builtin()
            .get("cost")
            .unwrap()
            .run(7, &fleet)
            .unwrap();
        assert!(!report.rendered.is_empty());
        assert!(serde_json::from_str::<serde_json::Value>(&report.json).is_ok());
    }
}
