//! **E5 — Figure 4 / §3 claim**: dummy generation defeats trajectory
//! tracing where accuracy reduction does not.
//!
//! The paper's critique of spatial cloaking is that consecutive cloaks
//! form a rough trajectory an observer can follow, whereas among
//! temporally consistent dummies the observer cannot even tell which
//! chain to follow. This experiment measures *identification rate* — how
//! often an observer names the true position in the final round — for
//! each protection technique against each adversary:
//!
//! * cloaking always yields rate 1.0 (there is only one chain to follow);
//! * random dummies fall to trackers (temporal inconsistency gives the
//!   truth away);
//! * MN/MLN dummies hold all adversaries near the chance level
//!   `1/(k+1)`.

use dummyloc_core::adversary::{
    Adversary, ChainScore, ContinuityTracker, RandomGuesser, SpeedGate,
};
use dummyloc_core::client::Request;
use dummyloc_core::cloaking::GridCloak;
use dummyloc_geo::Grid;
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::{GeneratorKind, SimConfig, Simulation};
use crate::report::{fmt, Table};
use crate::Result;

/// Parameters of the tracing experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracingParams {
    /// Region grid size.
    pub grid: u32,
    /// Dummies per user for the dummy techniques.
    pub dummies: usize,
    /// MN/MLN neighborhood half-extent in metres.
    pub m: f64,
    /// SpeedGate's plausible per-round step bound in metres (rickshaws at
    /// ≤ 4 m/s over a 30 s round move ≤ 120 m).
    pub max_step: f64,
}

impl Default for TracingParams {
    fn default() -> Self {
        TracingParams {
            grid: 12,
            dummies: 3,
            m: 120.0,
            max_step: 130.0,
        }
    }
}

/// Identification rates of one technique against every adversary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracingRow {
    /// Technique label.
    pub technique: String,
    /// Candidates per round the observer chooses among.
    pub candidates: usize,
    /// Chance level `1/candidates`.
    pub chance: f64,
    /// Rate of the uniform random guesser.
    pub random_guess: f64,
    /// Rate of the max-step continuity tracker.
    pub tracker_maxstep: f64,
    /// Rate of the step-variance continuity tracker.
    pub tracker_variance: f64,
    /// Rate of the speed-gate eliminator.
    pub speed_gate: f64,
}

/// The full tracing result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracingResult {
    /// One row per technique.
    pub rows: Vec<TracingRow>,
}

fn evaluate(
    technique: &str,
    candidates: usize,
    streams: &[(Vec<Request>, usize)],
    seed: u64,
    max_step: f64,
) -> TracingRow {
    let rate = |adv: &dyn Adversary| {
        let mut rng = dummyloc_geo::rng::rng_from_seed(seed);
        dummyloc_core::adversary::identification_rate(adv, &mut rng, streams)
    };
    TracingRow {
        technique: technique.to_string(),
        candidates,
        chance: 1.0 / candidates as f64,
        random_guess: rate(&RandomGuesser),
        tracker_maxstep: rate(&ContinuityTracker::new(ChainScore::MaxStep)),
        tracker_variance: rate(&ContinuityTracker::new(ChainScore::StepVariance)),
        speed_gate: rate(&SpeedGate::new(max_step)),
    }
}

/// Runs the experiment over a given workload.
pub fn run(seed: u64, fleet: &Dataset, params: &TracingParams) -> Result<TracingResult> {
    let mut rows = Vec::new();

    // Cloaking baseline: one region-center "candidate" per round — the
    // observer follows the only chain there is.
    let base = SimConfig::nara_default(seed);
    let grid = Grid::square(base.area, params.grid)?;
    let cloak = GridCloak::new(grid);
    let (start, end) = fleet
        .common_time_range()
        .ok_or(crate::SimError::NoCommonWindow)?;
    let rounds = ((end - start) / base.tick).floor() as usize + 1;
    let mut cloak_streams = Vec::with_capacity(fleet.len());
    for track in fleet.tracks() {
        let mut reqs = Vec::with_capacity(rounds);
        for k in 0..rounds {
            let t = start + k as f64 * base.tick;
            let pos = track
                .position_at(t)
                .expect("common window guarantees activity");
            let req = cloak.cloak(track.id(), pos)?;
            reqs.push(Request {
                pseudonym: track.id().to_string(),
                positions: vec![req.region.center()],
            });
        }
        cloak_streams.push((reqs, 0usize));
    }
    rows.push(evaluate(
        "cloaking",
        1,
        &cloak_streams,
        seed,
        params.max_step,
    ));

    // Dummy techniques.
    let kinds = [
        GeneratorKind::Random,
        GeneratorKind::Mn { m: params.m },
        GeneratorKind::Mln {
            m: params.m,
            retry_budget: 3,
        },
    ];
    let outcomes = super::run_parallel(&kinds, |&generator| -> Result<TracingRow> {
        let config = SimConfig {
            grid_size: params.grid,
            dummy_count: params.dummies,
            generator,
            ..SimConfig::nara_default(seed)
        };
        let out = Simulation::new(config)?.run(fleet)?;
        Ok(evaluate(
            &format!("dummies/{}", generator.label()),
            params.dummies + 1,
            &out.streams,
            seed,
            params.max_step,
        ))
    });
    for o in outcomes {
        rows.push(o?);
    }
    Ok(TracingResult { rows })
}

/// Renders identification rates per technique and adversary.
pub fn render(result: &TracingResult) -> String {
    let mut table = Table::new(
        "Tracing — identification rate of the true position (lower = more private)",
        &[
            "technique",
            "chance",
            "random-guess",
            "tracker-maxstep",
            "tracker-variance",
            "speed-gate",
        ],
    );
    for r in &result.rows {
        table.row(&[
            r.technique.clone(),
            fmt(r.chance, 2),
            fmt(r.random_guess, 2),
            fmt(r.tracker_maxstep, 2),
            fmt(r.tracker_variance, 2),
            fmt(r.speed_gate, 2),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn small_fleet() -> Dataset {
        workload::nara_fleet_sized(16, 600.0, 5)
    }

    #[test]
    fn cloaking_is_fully_traceable() {
        let r = run(1, &small_fleet(), &TracingParams::default()).unwrap();
        let cloak = &r.rows[0];
        assert_eq!(cloak.technique, "cloaking");
        assert_eq!(cloak.candidates, 1);
        assert_eq!(cloak.tracker_maxstep, 1.0);
        assert_eq!(cloak.random_guess, 1.0);
    }

    #[test]
    fn trackers_beat_random_dummies_but_not_mn() {
        let r = run(2, &small_fleet(), &TracingParams::default()).unwrap();
        let random = r
            .rows
            .iter()
            .find(|r| r.technique == "dummies/random")
            .unwrap();
        let mn = r.rows.iter().find(|r| r.technique == "dummies/mn").unwrap();
        // Trackers expose random dummies almost always…
        assert!(
            random.tracker_maxstep > 0.75,
            "tracker vs random dummies: {}",
            random.tracker_maxstep
        );
        // …but MN is strictly harder to trace. (It is NOT at chance with
        // the default m = 120: box-uniform dummy steps reach ~170 m while
        // rickshaws cover at most 120 m per round, so a max-step adversary
        // retains an edge — see EXPERIMENTS.md and the A1 radius ablation,
        // where smaller m closes the gap.)
        assert!(
            mn.tracker_maxstep < random.tracker_maxstep,
            "mn {} vs random {}",
            mn.tracker_maxstep,
            random.tracker_maxstep
        );
    }

    #[test]
    fn chance_levels_reported() {
        let r = run(3, &small_fleet(), &TracingParams::default()).unwrap();
        for row in &r.rows {
            assert!((row.chance - 1.0 / row.candidates as f64).abs() < 1e-12);
            for rate in [
                row.random_guess,
                row.tracker_maxstep,
                row.tracker_variance,
                row.speed_gate,
            ] {
                assert!((0.0..=1.0).contains(&rate));
            }
        }
    }

    #[test]
    fn render_includes_all_techniques() {
        let r = run(4, &small_fleet(), &TracingParams::default()).unwrap();
        let s = render(&r);
        assert!(s.contains("cloaking"));
        assert!(s.contains("dummies/mn"));
        assert!(s.contains("dummies/mln"));
        assert!(s.contains("dummies/random"));
    }
}
