//! Standard workloads for the experiments.
//!
//! The paper evaluates on 39 rickshaw trajectories from Nara; our
//! substitute (`DESIGN.md` §3) is the seeded rickshaw tour model from
//! `dummyloc-mobility`, instantiated here with the canonical parameters
//! every experiment shares.

use dummyloc_geo::rng::{derive_seed, rng_from_seed};
use dummyloc_mobility::{
    MobilityModel, RandomWaypoint, RandomWaypointConfig, RickshawConfig, RickshawModel,
};
use dummyloc_trajectory::Dataset;

/// The paper's fleet size.
pub const NARA_FLEET_SIZE: usize = 39;

/// Duration of the standard experiment window in seconds (one hour of
/// touring).
pub const NARA_DURATION: f64 = 3600.0;

/// Seed offset separating POI-placement randomness from fleet randomness.
const POI_SEED_STREAM: u64 = 0x505F;

/// The standard 39-rickshaw, one-hour Nara workload.
pub fn nara_fleet(seed: u64) -> Dataset {
    nara_fleet_sized(NARA_FLEET_SIZE, NARA_DURATION, seed)
}

/// The Nara workload with an explicit fleet size and duration (smaller
/// instances keep unit tests and doc tests fast).
pub fn nara_fleet_sized(count: usize, duration: f64, seed: u64) -> Dataset {
    let model = RickshawModel::new(RickshawConfig::nara(), derive_seed(seed, POI_SEED_STREAM));
    model.generate_fleet(seed, count, 0.0, duration)
}

/// A pedestrian random-waypoint crowd over the Nara area — used as the
/// "other users" population in examples and to contrast street-bound and
/// free movement in tests.
pub fn pedestrian_crowd(count: usize, duration: f64, seed: u64) -> Dataset {
    let config = RandomWaypointConfig::pedestrian(RickshawConfig::nara().area);
    let model = RandomWaypoint::new(config);
    let mut ds = Dataset::new();
    for k in 0..count {
        let mut rng = rng_from_seed(derive_seed(seed, k as u64));
        let track = model.generate(&mut rng, &format!("walker-{k:02}"), 0.0, duration);
        ds.push(track).expect("walker ids are distinct");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_trajectory::stats::dataset_stats;

    #[test]
    fn nara_fleet_matches_paper_shape() {
        let ds = nara_fleet_sized(39, 600.0, 1);
        assert_eq!(ds.len(), 39);
        assert_eq!(ds.common_time_range(), Some((0.0, 600.0)));
        let area = dummyloc_mobility::RickshawConfig::nara().area;
        assert!(area.contains_bbox(&ds.bounds().unwrap()));
    }

    #[test]
    fn fleet_is_deterministic_and_seed_sensitive() {
        assert_eq!(nara_fleet_sized(5, 120.0, 9), nara_fleet_sized(5, 120.0, 9));
        assert_ne!(
            nara_fleet_sized(5, 120.0, 9),
            nara_fleet_sized(5, 120.0, 10)
        );
    }

    #[test]
    fn pedestrian_crowd_is_slower_than_rickshaws() {
        let walkers = pedestrian_crowd(8, 600.0, 2);
        let rickshaws = nara_fleet_sized(8, 600.0, 2);
        let ws = dataset_stats(&walkers);
        let rs = dataset_stats(&rickshaws);
        assert_eq!(ws.tracks, 8);
        assert!(ws.max_speed <= 2.0 + 1e-9);
        assert!(rs.max_speed > ws.max_speed);
    }
}
