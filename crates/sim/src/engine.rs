//! The discrete-time simulation loop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dummyloc_core::adversary::Adversary;
use dummyloc_core::client::{Client, Request};
use dummyloc_core::generator::{
    DiscMnGenerator, DummyGenerator, MlnGenerator, MnGenerator, NoDensity, OthersDensity,
    RandomGenerator, StationaryGenerator,
};
use dummyloc_core::metrics::{shift_p, ubiquity_f, ShiftBuckets};
use dummyloc_core::population::PopulationGrid;
use dummyloc_core::streams::SeedTree;
use dummyloc_geo::rng::{rng_from_seed, SimRng};
use dummyloc_geo::{BBox, Grid, Point};
use dummyloc_lbs::provider::Provider;
use dummyloc_lbs::query::QueryKind;
use dummyloc_lbs::PoiDatabase;
use dummyloc_telemetry::MetricRegistry;
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{CheckpointSpec, SimCheckpoint, UserCheckpoint};
use crate::{Result, SimError};

/// Which dummy algorithm a simulation uses (serializable for experiment
/// configs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GeneratorKind {
    /// Uniform redraw each step (the paper's random strawman).
    Random,
    /// Moving in a Neighborhood with half-extent `m`.
    Mn {
        /// Neighborhood half-extent in metres.
        m: f64,
    },
    /// Moving in a Limited Neighborhood with half-extent `m` and the
    /// paper's retry budget.
    Mln {
        /// Neighborhood half-extent in metres.
        m: f64,
        /// Rejection retries before accepting a crowded candidate.
        retry_budget: u32,
    },
    /// Ablation: MN with a disc neighborhood.
    MnDisc {
        /// Disc radius in metres.
        m: f64,
    },
    /// Ablation: dummies never move.
    Stationary,
}

impl GeneratorKind {
    /// Instantiates the generator over the service area.
    pub fn build(
        &self,
        area: BBox,
    ) -> std::result::Result<Box<dyn DummyGenerator>, dummyloc_core::CoreError> {
        Ok(match *self {
            GeneratorKind::Random => Box::new(RandomGenerator::new(area)?),
            GeneratorKind::Mn { m } => Box::new(MnGenerator::new(area, m)?),
            GeneratorKind::Mln { m, retry_budget } => Box::new(MlnGenerator::with_options(
                area,
                m,
                dummyloc_core::generator::DensityThreshold::MeanOccupied,
                retry_budget,
            )?),
            GeneratorKind::MnDisc { m } => Box::new(DiscMnGenerator::new(area, m)?),
            GeneratorKind::Stationary => Box::new(StationaryGenerator::new(area)?),
        })
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            GeneratorKind::Random => "random",
            GeneratorKind::Mn { .. } => "mn",
            GeneratorKind::Mln { .. } => "mln",
            GeneratorKind::MnDisc { .. } => "mn-disc",
            GeneratorKind::Stationary => "stationary",
        }
    }
}

/// Optional LBS-provider attachment: when present, every request is also
/// served against a POI database and the provider's cost counters are
/// reported in the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// POIs to generate.
    pub poi_count: usize,
    /// POI placement seed.
    pub poi_seed: u64,
    /// The query every client issues each tick.
    pub query: QueryKind,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Service area (must contain the whole workload).
    pub area: BBox,
    /// Region grid is `grid_size × grid_size` (the paper sweeps 8/10/12).
    pub grid_size: u32,
    /// Dummies per user — the paper's simplifying assumption: *"All users
    /// generated the same number of dummies."*
    pub dummy_count: usize,
    /// Dummy-motion algorithm.
    pub generator: GeneratorKind,
    /// Seconds between service rounds.
    pub tick: f64,
    /// Master seed; per-client streams are derived from it.
    pub seed: u64,
    /// Report positions quantized to region centers (the paper's
    /// "position precision = region scale" setting) instead of exact
    /// coordinates.
    pub quantize: bool,
    /// Optional LBS-provider attachment.
    pub service: Option<ServiceConfig>,
}

impl SimConfig {
    /// The experiments' default: the 2 km Nara area, 12×12 regions, 3 MN
    /// dummies with `m` matched to one region (the paper's position
    /// precision), 30 s service rounds.
    pub fn nara_default(seed: u64) -> Self {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0))
            .expect("static bounds are valid");
        SimConfig {
            area,
            grid_size: 12,
            dummy_count: 3,
            generator: GeneratorKind::Mn { m: 120.0 },
            tick: 30.0,
            seed,
            quantize: false,
            service: None,
        }
    }
}

/// Everything one simulation run produces.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Number of service rounds simulated.
    pub rounds: usize,
    /// Ubiquity `F` per round, in `[0, 1]`.
    pub f_series: Vec<f64>,
    /// Mean of `f_series`.
    pub mean_f: f64,
    /// `Shift(P)` buckets accumulated over every consecutive round pair.
    pub shift_buckets: ShiftBuckets,
    /// Mean per-region `Shift(P)` over all sampled (region, step) pairs.
    pub shift_mean: f64,
    /// Mean (over rounds) coefficient of variation of occupied-region
    /// populations — the congestion-balance measure MLN is supposed to
    /// improve (0 = every occupied region equally crowded).
    pub congestion_cv: f64,
    /// Per-user request streams with the truth index of the final round —
    /// the adversary-evaluation input.
    pub streams: Vec<(Vec<Request>, usize)>,
    /// Provider cost counters when a [`ServiceConfig`] was attached.
    pub cost: Option<dummyloc_lbs::CostAccounting>,
}

impl SimOutcome {
    /// Identification rate of `adversary` over this run's streams (seeded
    /// independently of the simulation).
    pub fn identification_rate<A: Adversary + ?Sized>(&self, adversary: &A, seed: u64) -> f64 {
        let mut rng = rng_from_seed(seed);
        dummyloc_core::adversary::identification_rate(adversary, &mut rng, &self.streams)
    }
}

/// A configured simulation, ready to run over workloads.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
    grid: Grid,
    telemetry: Option<Arc<MetricRegistry>>,
}

impl Simulation {
    /// Validates the configuration and builds the region grid.
    pub fn new(config: SimConfig) -> Result<Self> {
        let tick_valid = config.tick.is_finite() && config.tick > 0.0;
        if !tick_valid {
            return Err(SimError::InvalidConfig {
                message: format!("tick must be positive, got {}", config.tick),
            });
        }
        let grid = Grid::square(config.area, config.grid_size)?;
        Ok(Simulation {
            config,
            grid,
            telemetry: None,
        })
    }

    /// Attaches a metric registry: every [`Simulation::run`] then reports
    /// per-round phase timings (`sim.phase.*` histograms, µs) and the
    /// `sim.rounds` / `sim.requests` counters into it.
    pub fn with_telemetry(mut self, registry: Arc<MetricRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The region grid metrics are computed over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The attached metric registry, if any (shared with the parallel
    /// engine so both record the same `sim.*` families).
    pub(crate) fn telemetry(&self) -> Option<&Arc<MetricRegistry>> {
        self.telemetry.as_ref()
    }

    /// Runs the simulation over `workload`: every track becomes a client
    /// reporting its (interpolated) true position plus dummies each tick
    /// across the workload's common time window.
    pub fn run(&self, workload: &Dataset) -> Result<SimOutcome> {
        self.run_session(workload, None, None)
    }

    /// [`Simulation::run`] with suspend/resume: `resume` restores a prior
    /// [`SimCheckpoint`] (verified against this configuration and
    /// workload) and continues from its round boundary; `checkpoints`
    /// periodically captures the running state. A resumed run's outcome
    /// is byte-identical to the uninterrupted run's — every restored
    /// value (RNG states, dummy positions, metric series) round-trips
    /// losslessly through the checkpoint format.
    pub fn run_session(
        &self,
        workload: &Dataset,
        resume: Option<&SimCheckpoint>,
        mut checkpoints: Option<CheckpointSpec<'_>>,
    ) -> Result<SimOutcome> {
        let cfg = &self.config;
        let (start, end) = workload
            .common_time_range()
            .ok_or(SimError::NoCommonWindow)?;
        if let Some(b) = workload.bounds() {
            if !cfg.area.contains_bbox(&b) {
                return Err(SimError::AreaMismatch {
                    detail: format!("workload bounds {b:?} exceed service area {:?}", cfg.area),
                });
            }
        }
        let rounds = ((end - start) / cfg.tick).floor() as usize + 1;
        if let Some(ckpt) = resume {
            ckpt.verify_matches(cfg, workload, rounds)?;
        }

        let users = workload.len();
        let seeds = SeedTree::new(cfg.seed);
        let mut clients: Vec<Client<Box<dyn DummyGenerator>>> = Vec::with_capacity(users);
        let mut rngs: Vec<SimRng> = Vec::with_capacity(users);
        for (i, track) in workload.tracks().iter().enumerate() {
            let generator = cfg.generator.build(cfg.area)?;
            let mut client = Client::new(track.id(), generator, cfg.dummy_count);
            if cfg.quantize {
                client = client.with_precision(self.grid.clone());
            }
            match resume {
                Some(ckpt) if ckpt.completed_rounds > 0 => {
                    let u = &ckpt.users[i];
                    client.resume_session(u.dummies.clone())?;
                    clients.push(client);
                    rngs.push(SimRng::from_state(u.rng));
                }
                _ => {
                    clients.push(client);
                    rngs.push(seeds.sim_rng(i as u64));
                }
            }
        }

        let mut provider = cfg
            .service
            .map(|s| Provider::new(PoiDatabase::generate(cfg.area, s.poi_count, s.poi_seed)));

        // Pre-register phase handles once; recording inside the loop is
        // then lock-free.
        let phases = self.telemetry.as_ref().map(|reg| {
            (
                reg.histogram_log2("sim.phase.dummy_gen_us"),
                reg.histogram_log2("sim.phase.region_analysis_us"),
                reg.histogram_log2("sim.phase.metrics_us"),
                reg.histogram_log2("sim.phase.service_us"),
                reg.counter("sim.rounds"),
                reg.counter("sim.requests"),
            )
        });

        let mut f_series = Vec::with_capacity(rounds);
        let mut cv_series = Vec::with_capacity(rounds);
        let mut shift_buckets = ShiftBuckets::default();
        let mut shift_sum: u64 = 0;
        let mut shift_regions: u64 = 0;
        let mut prev_pop: Option<PopulationGrid> = None;
        let mut streams: Vec<Vec<Request>> = vec![Vec::with_capacity(rounds); users];
        let mut last_truth = vec![0usize; users];
        let mut first_round = 0usize;
        if let Some(ckpt) = resume {
            first_round = ckpt.completed_rounds;
            f_series = ckpt.f_series.clone();
            cv_series = ckpt.cv_series.clone();
            shift_buckets = ckpt.shift_buckets;
            shift_sum = ckpt.shift_sum;
            shift_regions = ckpt.shift_regions;
            if ckpt.completed_rounds > 0 {
                prev_pop = Some(PopulationGrid::from_counts(
                    &self.grid,
                    ckpt.prev_pop.clone(),
                )?);
            }
            for (i, u) in ckpt.users.iter().enumerate() {
                streams[i] = u.requests.clone();
                last_truth[i] = u.last_truth;
            }
            if let (Some(provider), Some(cost)) = (provider.as_mut(), ckpt.cost) {
                provider.restore_cost(cost);
            }
        }

        for k in first_round..rounds {
            let t = start + k as f64 * cfg.tick;
            let snapshot = workload.snapshot(t);
            let mut pop = PopulationGrid::empty(&self.grid);
            let mut d_gen = Duration::ZERO;
            let mut d_region = Duration::ZERO;
            let mut d_service = Duration::ZERO;
            for (i, maybe_pos) in snapshot.positions().iter().enumerate() {
                // Within the common window every track is active.
                let pos = maybe_pos.expect("common window guarantees activity");
                let gen_started = Instant::now();
                let round = if k == 0 {
                    clients[i].begin(&mut rngs[i], pos)?
                } else {
                    // MLN consults "the other users' position data": the
                    // previous round's global population minus this
                    // client's own reported positions.
                    match &prev_pop {
                        Some(density) => {
                            let own_prev: &[Point] = streams[i]
                                .last()
                                .map(|r| r.positions.as_slice())
                                .unwrap_or(&[]);
                            let view = OthersDensity::new(density, own_prev);
                            clients[i].step(&mut rngs[i], pos, &view)?
                        }
                        None => clients[i].step(&mut rngs[i], pos, &NoDensity)?,
                    }
                };
                d_gen += gen_started.elapsed();
                let region_started = Instant::now();
                for &p in &round.request.positions {
                    pop.add(p)?;
                }
                d_region += region_started.elapsed();
                if let Some(provider) = provider.as_mut() {
                    let query = cfg.service.expect("provider implies service config").query;
                    let service_started = Instant::now();
                    provider.handle(t, &round.request, &query);
                    d_service += service_started.elapsed();
                }
                last_truth[i] = round.truth_index;
                streams[i].push(round.request);
            }
            let metrics_started = Instant::now();
            f_series.push(ubiquity_f(&pop));
            cv_series.push(occupied_cv(&pop));
            if let Some(prev) = &prev_pop {
                let s = shift_p(prev, &pop);
                shift_buckets.merge(&s.buckets);
                shift_sum += (s.mean * s.regions as f64).round() as u64;
                shift_regions += s.regions as u64;
            }
            prev_pop = Some(pop);
            if let Some((h_gen, h_region, h_metrics, h_service, c_rounds, c_requests)) = &phases {
                h_gen.record_duration(d_gen);
                h_region.record_duration(d_region);
                h_metrics.record_duration(metrics_started.elapsed());
                if provider.is_some() {
                    h_service.record_duration(d_service);
                }
                c_rounds.inc();
                c_requests.add(users as u64);
            }
            if let Some(spec) = checkpoints.as_mut() {
                let completed = k + 1;
                if spec.wants(completed, rounds) {
                    let ckpt = SimCheckpoint {
                        config: *cfg,
                        workload_digest: crate::checkpoint::workload_digest(workload),
                        completed_rounds: completed,
                        total_rounds: rounds,
                        users: (0..users)
                            .map(|i| UserCheckpoint {
                                rng: rngs[i].state(),
                                dummies: clients[i].dummies().to_vec(),
                                last_truth: last_truth[i],
                                requests: streams[i].clone(),
                            })
                            .collect(),
                        f_series: f_series.clone(),
                        cv_series: cv_series.clone(),
                        shift_buckets,
                        shift_sum,
                        shift_regions,
                        prev_pop: prev_pop
                            .as_ref()
                            .expect("a completed round leaves a population")
                            .counts()
                            .to_vec(),
                        cost: provider.as_ref().map(|p| *p.cost()),
                    };
                    (spec.sink)(&ckpt)?;
                }
            }
        }

        let mean_f = if f_series.is_empty() {
            0.0
        } else {
            f_series.iter().sum::<f64>() / f_series.len() as f64
        };
        Ok(SimOutcome {
            rounds,
            mean_f,
            f_series,
            shift_buckets,
            shift_mean: if shift_regions > 0 {
                shift_sum as f64 / shift_regions as f64
            } else {
                0.0
            },
            congestion_cv: if cv_series.is_empty() {
                0.0
            } else {
                cv_series.iter().sum::<f64>() / cv_series.len() as f64
            },
            streams: streams.into_iter().zip(last_truth).collect(),
            cost: provider.map(|p| *p.cost()),
        })
    }
}

/// Coefficient of variation (std/mean) of the populations of occupied
/// regions; 0 when at most one region is occupied.
pub(crate) fn occupied_cv(pop: &PopulationGrid) -> f64 {
    let occupied: Vec<f64> = pop
        .counts()
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| c as f64)
        .collect();
    if occupied.len() < 2 {
        return 0.0;
    }
    let n = occupied.len() as f64;
    let mean = occupied.iter().sum::<f64>() / n;
    let var = occupied
        .iter()
        .map(|c| (c - mean) * (c - mean))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use dummyloc_core::adversary::RandomGuesser;
    use dummyloc_lbs::poi::Category;

    fn fleet() -> Dataset {
        workload::nara_fleet_sized(6, 120.0, 3)
    }

    fn config(kind: GeneratorKind, dummies: usize) -> SimConfig {
        SimConfig {
            grid_size: 8,
            dummy_count: dummies,
            generator: kind,
            ..SimConfig::nara_default(5)
        }
    }

    #[test]
    fn run_produces_expected_round_count_and_streams() {
        let cfg = config(GeneratorKind::Mn { m: 100.0 }, 2);
        let sim = Simulation::new(cfg).unwrap();
        let out = sim.run(&fleet()).unwrap();
        // 120 s window at 30 s tick → rounds at 0, 30, 60, 90, 120.
        assert_eq!(out.rounds, 5);
        assert_eq!(out.f_series.len(), 5);
        assert_eq!(out.streams.len(), 6);
        for (reqs, truth) in &out.streams {
            assert_eq!(reqs.len(), 5);
            assert!(reqs.iter().all(|r| r.positions.len() == 3));
            assert!(*truth < 3);
        }
        assert!(out.mean_f > 0.0 && out.mean_f <= 1.0);
        assert!(out.cost.is_none());
    }

    #[test]
    fn more_dummies_more_ubiquity() {
        let f0 = Simulation::new(config(GeneratorKind::Mn { m: 100.0 }, 0))
            .unwrap()
            .run(&fleet())
            .unwrap()
            .mean_f;
        let f4 = Simulation::new(config(GeneratorKind::Mn { m: 100.0 }, 4))
            .unwrap()
            .run(&fleet())
            .unwrap()
            .mean_f;
        assert!(
            f4 > f0,
            "F with 4 dummies ({f4}) should beat 0 dummies ({f0})"
        );
    }

    #[test]
    fn random_shifts_exceed_mn_shifts() {
        let mn = Simulation::new(config(GeneratorKind::Mn { m: 100.0 }, 3))
            .unwrap()
            .run(&fleet())
            .unwrap();
        let random = Simulation::new(config(GeneratorKind::Random, 3))
            .unwrap()
            .run(&fleet())
            .unwrap();
        assert!(
            random.shift_mean > mn.shift_mean,
            "random {} should shift more than mn {}",
            random.shift_mean,
            mn.shift_mean
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = config(
            GeneratorKind::Mln {
                m: 100.0,
                retry_budget: 3,
            },
            3,
        );
        let a = Simulation::new(cfg).unwrap().run(&fleet()).unwrap();
        let b = Simulation::new(cfg).unwrap().run(&fleet()).unwrap();
        assert_eq!(a.f_series, b.f_series);
        assert_eq!(a.shift_buckets, b.shift_buckets);
        assert_eq!(a.streams.len(), b.streams.len());
        for ((ra, ta), (rb, tb)) in a.streams.iter().zip(&b.streams) {
            assert_eq!(ta, tb);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn service_attachment_reports_cost() {
        let mut cfg = config(GeneratorKind::Mn { m: 100.0 }, 3);
        cfg.service = Some(ServiceConfig {
            poi_count: 40,
            poi_seed: 9,
            query: QueryKind::NearestPoi {
                category: Some(Category::Restaurant),
            },
        });
        let out = Simulation::new(cfg).unwrap().run(&fleet()).unwrap();
        let cost = out.cost.unwrap();
        assert_eq!(cost.requests, 5 * 6);
        assert_eq!(cost.positions_per_request(), 4.0);
        assert!(cost.uplink_bytes > 0);
    }

    #[test]
    fn telemetry_records_phases_and_counters() {
        let reg = Arc::new(MetricRegistry::new());
        let cfg = config(GeneratorKind::Mn { m: 100.0 }, 2);
        let out = Simulation::new(cfg)
            .unwrap()
            .with_telemetry(Arc::clone(&reg))
            .run(&fleet())
            .unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.rounds"), Some(out.rounds as u64));
        assert_eq!(snap.counter("sim.requests"), Some(5 * 6));
        for phase in [
            "sim.phase.dummy_gen_us",
            "sim.phase.region_analysis_us",
            "sim.phase.metrics_us",
        ] {
            let h = snap.histogram(phase).unwrap_or_else(|| panic!("{phase}"));
            assert_eq!(h.count, out.rounds as u64, "{phase}");
        }
        // No service attached, so the service phase never recorded.
        assert_eq!(snap.histogram("sim.phase.service_us").unwrap().count, 0);
        // Instrumentation must not perturb the simulation itself.
        let plain = Simulation::new(config(GeneratorKind::Mn { m: 100.0 }, 2))
            .unwrap()
            .run(&fleet())
            .unwrap();
        assert_eq!(out.f_series, plain.f_series);
    }

    #[test]
    fn adversary_hookup_runs() {
        let cfg = config(GeneratorKind::Random, 3);
        let out = Simulation::new(cfg).unwrap().run(&fleet()).unwrap();
        let rate = out.identification_rate(&RandomGuesser, 1);
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = config(GeneratorKind::Mn { m: 100.0 }, 1);
        cfg.tick = 0.0;
        assert!(matches!(
            Simulation::new(cfg),
            Err(SimError::InvalidConfig { .. })
        ));
        let mut cfg = config(GeneratorKind::Mn { m: 0.0 }, 1);
        cfg.tick = 30.0;
        let sim = Simulation::new(cfg).unwrap();
        assert!(sim.run(&fleet()).is_err()); // bad m surfaces at generator build
    }

    #[test]
    fn workload_outside_area_rejected() {
        let cfg = config(GeneratorKind::Mn { m: 100.0 }, 1);
        let sim = Simulation::new(cfg).unwrap();
        let far = dummyloc_trajectory::TrajectoryBuilder::new("x")
            .point(0.0, Point::new(5000.0, 5000.0))
            .point(120.0, Point::new(5001.0, 5000.0))
            .build()
            .unwrap();
        let ds = Dataset::from_tracks(vec![far]).unwrap();
        assert!(matches!(sim.run(&ds), Err(SimError::AreaMismatch { .. })));
    }

    #[test]
    fn empty_workload_rejected() {
        let cfg = config(GeneratorKind::Mn { m: 100.0 }, 1);
        let sim = Simulation::new(cfg).unwrap();
        assert!(matches!(
            sim.run(&Dataset::new()),
            Err(SimError::NoCommonWindow)
        ));
    }
}
