use std::fmt;

use dummyloc_core::pool::PoolError;
use dummyloc_core::CoreError;
use dummyloc_geo::GeoError;
use dummyloc_trajectory::TrajectoryError;

/// Errors produced by the simulation engine.
#[derive(Debug)]
pub enum SimError {
    /// The workload has no interval during which every track is active.
    NoCommonWindow,
    /// The workload leaves the configured service area.
    AreaMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// Invalid simulation configuration.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// A checkpoint failed to verify, decode, or match this run.
    Checkpoint {
        /// What was wrong.
        message: String,
    },
    /// Propagated core-library error.
    Core(CoreError),
    /// Propagated geometry error.
    Geo(GeoError),
    /// Propagated trajectory error.
    Trajectory(TrajectoryError),
    /// A parallel-engine worker failed (panic contained by the pool).
    Parallel(PoolError),
    /// Report serialization failure.
    Json(serde_json::Error),
    /// Report I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoCommonWindow => {
                write!(f, "workload tracks share no common active time window")
            }
            SimError::AreaMismatch { detail } => {
                write!(f, "workload leaves the service area: {detail}")
            }
            SimError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            SimError::Checkpoint { message } => write!(f, "checkpoint error: {message}"),
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::Geo(e) => write!(f, "geometry error: {e}"),
            SimError::Trajectory(e) => write!(f, "trajectory error: {e}"),
            SimError::Parallel(e) => write!(f, "parallel execution error: {e}"),
            SimError::Json(e) => write!(f, "json error: {e}"),
            SimError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Geo(e) => Some(e),
            SimError::Trajectory(e) => Some(e),
            SimError::Parallel(e) => Some(e),
            SimError::Json(e) => Some(e),
            SimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<GeoError> for SimError {
    fn from(e: GeoError) -> Self {
        SimError::Geo(e)
    }
}

impl From<TrajectoryError> for SimError {
    fn from(e: TrajectoryError) -> Self {
        SimError::Trajectory(e)
    }
}

impl From<PoolError> for SimError {
    fn from(e: PoolError) -> Self {
        SimError::Parallel(e)
    }
}

impl From<serde_json::Error> for SimError {
    fn from(e: serde_json::Error) -> Self {
        SimError::Json(e)
    }
}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::NoCommonWindow.to_string().contains("common"));
        let e = SimError::from(GeoError::EmptyGrid);
        assert!(e.to_string().contains("geometry"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(SimError::NoCommonWindow.source().is_none());
    }
}
