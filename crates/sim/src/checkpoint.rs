//! Checkpoint/resume for simulations: suspend a run at a round boundary
//! and later continue it **byte-identically** at any thread count.
//!
//! A [`SimCheckpoint`] captures everything round `k+1` depends on:
//!
//! * the full configuration (a resumed run must refuse a checkpoint for a
//!   different one) and a digest of the workload;
//! * per user: the RNG state ([`SimRng`](dummyloc_geo::rng::SimRng) —
//!   restorable bit-for-bit, unlike `StdRng`), the current dummy
//!   positions (the MN/MLN "memorized previous position of each dummy"),
//!   the final truth index and the full request stream so far (the MLN
//!   density view subtracts the *previous round's own positions*, and the
//!   outcome reports whole streams);
//! * the running metric series (`F`, congestion CV, `Shift(P)` buckets)
//!   and the previous round's population grid;
//! * the provider's cost counters when a service is attached.
//!
//! Every value that feeds a reported `f64` is stored losslessly: RNG
//! states and counts as integers, `f64` series through `serde_json`'s
//! exact shortest-round-trip rendering. That is what makes the resumed
//! run's report *byte*-identical to an uninterrupted one, extending the
//! parallel engine's serial-equivalence proof to interrupted execution.
//!
//! # On-disk format
//!
//! A checkpoint file is one header line followed by a JSON payload:
//!
//! ```text
//! dummyloc-ckpt v1 <fnv1a-64 of payload, 16 hex digits>\n
//! {...payload...}
//! ```
//!
//! [`SimCheckpoint::write_to`] writes a temporary file and renames it into
//! place, so a crash mid-write can never leave a torn checkpoint behind —
//! the previous complete one survives. [`SimCheckpoint::read_from`]
//! rejects unknown versions and checksum mismatches with a typed error.

use std::path::Path;

use dummyloc_core::client::Request;
use dummyloc_core::metrics::ShiftBuckets;
use dummyloc_geo::Point;
use dummyloc_lbs::CostAccounting;
use dummyloc_trajectory::Dataset;
use serde::{Deserialize, Serialize};

use crate::engine::SimConfig;
use crate::{Result, SimError};

/// Current checkpoint format version; bumped on any incompatible change.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Header magic of a checkpoint file.
const MAGIC: &str = "dummyloc-ckpt";

/// One user's suspended state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserCheckpoint {
    /// The user's RNG stream state (xoshiro256** words).
    pub rng: [u64; 4],
    /// Current dummy positions (exact motion state, not quantized).
    pub dummies: Vec<Point>,
    /// Truth index of the last completed round.
    pub last_truth: usize,
    /// Every request reported so far, in round order.
    pub requests: Vec<Request>,
}

/// A complete suspended simulation at a round boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCheckpoint {
    /// The configuration of the suspended run.
    pub config: SimConfig,
    /// Digest of the workload the run was started over (see
    /// [`workload_digest`]); a resume with a different workload is
    /// rejected.
    pub workload_digest: u64,
    /// Rounds fully completed (the next round to execute).
    pub completed_rounds: usize,
    /// Total rounds of the run (derived from the workload window; stored
    /// for cross-checking and progress reporting).
    pub total_rounds: usize,
    /// Per-user suspended state, in user order.
    pub users: Vec<UserCheckpoint>,
    /// Ubiquity `F` of every completed round.
    pub f_series: Vec<f64>,
    /// Congestion CV of every completed round.
    pub cv_series: Vec<f64>,
    /// Accumulated `Shift(P)` buckets.
    pub shift_buckets: ShiftBuckets,
    /// Accumulated rounded shift sum (the engine's integer accumulator).
    pub shift_sum: u64,
    /// Accumulated shifted-region count.
    pub shift_regions: u64,
    /// The last completed round's population counts, row-major (the MLN
    /// density input of the next round).
    pub prev_pop: Vec<u32>,
    /// Provider cost counters when a service is attached.
    pub cost: Option<CostAccounting>,
}

impl SimCheckpoint {
    /// Serializes to the on-disk format (header line + JSON payload).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let payload = serde_json::to_string(self)?;
        let digest = fnv1a(payload.as_bytes());
        let mut out = format!("{MAGIC} v{CHECKPOINT_VERSION} {digest:016x}\n").into_bytes();
        out.extend_from_slice(payload.as_bytes());
        Ok(out)
    }

    /// Parses and verifies the on-disk format.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let corrupt = |message: String| SimError::Checkpoint { message };
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| corrupt("missing header line".into()))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| corrupt("header is not UTF-8".into()))?;
        let mut parts = header.split(' ');
        if parts.next() != Some(MAGIC) {
            return Err(corrupt(format!("bad magic in header '{header}'")));
        }
        let version = parts
            .next()
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| corrupt(format!("unparsable version in header '{header}'")))?;
        if version != CHECKPOINT_VERSION {
            return Err(corrupt(format!(
                "unsupported checkpoint version {version} (this build reads v{CHECKPOINT_VERSION})"
            )));
        }
        let stored = parts
            .next()
            .and_then(|d| u64::from_str_radix(d, 16).ok())
            .ok_or_else(|| corrupt(format!("unparsable checksum in header '{header}'")))?;
        let payload = &bytes[newline + 1..];
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch: header says {stored:016x}, payload hashes to {actual:016x}"
            )));
        }
        let payload =
            std::str::from_utf8(payload).map_err(|_| corrupt("payload is not UTF-8".into()))?;
        let ckpt: SimCheckpoint = serde_json::from_str(payload)?;
        if ckpt
            .users
            .iter()
            .any(|u| u.requests.len() != ckpt.completed_rounds)
            || ckpt.f_series.len() != ckpt.completed_rounds
            || ckpt.cv_series.len() != ckpt.completed_rounds
        {
            return Err(corrupt(
                "inconsistent checkpoint: per-user streams and metric series \
                 must all have completed_rounds entries"
                    .into(),
            ));
        }
        Ok(ckpt)
    }

    /// Writes atomically: a temporary sibling file is written, fsynced and
    /// renamed over `path`, so an interrupted write leaves the previous
    /// checkpoint (or nothing) — never a torn file.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        self.write_to_vfs(&dummyloc_store::vfs::RealVfs, path)
    }

    /// [`SimCheckpoint::write_to`] against an explicit [`Vfs`], which is
    /// how the fault-injection suite proves the tmp/fsync/rename dance
    /// really does leave the previous checkpoint intact when any of the
    /// three syscalls fails.
    pub fn write_to_vfs(&self, vfs: &dyn dummyloc_store::vfs::Vfs, path: &Path) -> Result<()> {
        let bytes = self.encode()?;
        let tmp = path.with_extension("tmp");
        let f = vfs.create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        vfs.rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and verifies a checkpoint file.
    pub fn read_from(path: &Path) -> Result<Self> {
        Self::decode(&std::fs::read(path)?)
    }

    /// FNV-1a digest of the encoded checkpoint — the "parent run id" a
    /// resumed run's manifest records as lineage. Deterministic for a
    /// fixed seed and workload, so scrubbed manifests stay comparable.
    pub fn digest(&self) -> Result<u64> {
        Ok(fnv1a(&self.encode()?))
    }

    /// Verifies this checkpoint belongs to `(config, workload)` and has
    /// not run past `rounds`.
    pub(crate) fn verify_matches(
        &self,
        config: &SimConfig,
        workload: &Dataset,
        rounds: usize,
    ) -> Result<()> {
        let reject = |message: String| Err(SimError::Checkpoint { message });
        if self.config != *config {
            return reject("checkpoint was taken under a different configuration".into());
        }
        let digest = workload_digest(workload);
        if self.workload_digest != digest {
            return reject(format!(
                "checkpoint workload digest {:016x} does not match this workload ({digest:016x})",
                self.workload_digest
            ));
        }
        if self.users.len() != workload.len() {
            return reject(format!(
                "checkpoint has {} users, workload has {}",
                self.users.len(),
                workload.len()
            ));
        }
        if self.completed_rounds > rounds || self.total_rounds != rounds {
            return reject(format!(
                "checkpoint rounds ({} of {}) disagree with this run's {rounds}",
                self.completed_rounds, self.total_rounds
            ));
        }
        Ok(())
    }
}

/// Periodic-checkpoint request threaded into a run: every `every`
/// completed rounds the engine builds a [`SimCheckpoint`] and hands it to
/// `sink` (which typically writes it to disk). The final round is not
/// captured — a finished run has nothing left to resume.
pub struct CheckpointSpec<'a> {
    /// Capture after every this many completed rounds (`0` disables).
    pub every: usize,
    /// Receives each captured checkpoint.
    pub sink: &'a mut dyn FnMut(&SimCheckpoint) -> Result<()>,
}

impl CheckpointSpec<'_> {
    /// Whether the round that just completed should be captured.
    pub(crate) fn wants(&self, completed: usize, total: usize) -> bool {
        self.every > 0 && completed.is_multiple_of(self.every) && completed < total
    }
}

impl std::fmt::Debug for CheckpointSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSpec")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// FNV-1a digest of a workload: track count, ids, and every sample's
/// `(t, x, y)` bit patterns. Two workloads agree iff they would drive a
/// simulation identically.
pub fn workload_digest(workload: &Dataset) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    fold(&mut h, &(workload.len() as u64).to_le_bytes());
    for track in workload.tracks() {
        fold(&mut h, track.id().as_bytes());
        for p in track.points() {
            fold(&mut h, &p.t.to_bits().to_le_bytes());
            fold(&mut h, &p.pos.x.to_bits().to_le_bytes());
            fold(&mut h, &p.pos.y.to_bits().to_le_bytes());
        }
    }
    h
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GeneratorKind;

    fn sample() -> SimCheckpoint {
        SimCheckpoint {
            config: SimConfig {
                grid_size: 8,
                dummy_count: 1,
                generator: GeneratorKind::Mn { m: 100.0 },
                ..SimConfig::nara_default(3)
            },
            workload_digest: 0xabcd,
            completed_rounds: 2,
            total_rounds: 5,
            users: vec![UserCheckpoint {
                rng: [1, 2, 3, 4],
                dummies: vec![Point::new(1.5, 2.5)],
                last_truth: 0,
                requests: vec![
                    Request {
                        pseudonym: "u0".into(),
                        positions: vec![Point::new(1.0, 1.0)],
                    },
                    Request {
                        pseudonym: "u0".into(),
                        positions: vec![Point::new(2.0, 2.0)],
                    },
                ],
            }],
            f_series: vec![0.125, 0.25],
            cv_series: vec![0.0, 0.5],
            shift_buckets: ShiftBuckets::default(),
            shift_sum: 3,
            shift_regions: 7,
            prev_pop: vec![0; 64],
            cost: None,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = sample();
        let bytes = c.encode().unwrap();
        let back = SimCheckpoint::decode(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(
            back.f_series
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            c.f_series.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut bytes = sample().encode().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            SimCheckpoint::decode(&bytes),
            Err(SimError::Checkpoint { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let bytes = sample().encode().unwrap();
        let s = String::from_utf8(bytes).unwrap();
        let swapped = s.replacen("v1", "v9", 1);
        let err = SimCheckpoint::decode(swapped.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_anywhere_never_panics() {
        let bytes = sample().encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                SimCheckpoint::decode(&bytes[..cut]).is_err(),
                "truncated checkpoint at {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn inconsistent_series_rejected() {
        let mut c = sample();
        c.f_series.pop();
        let bytes = c.encode().unwrap();
        assert!(matches!(
            SimCheckpoint::decode(&bytes),
            Err(SimError::Checkpoint { .. })
        ));
    }

    #[test]
    fn write_read_roundtrip_is_atomic_shaped() {
        let dir = std::env::temp_dir().join(format!("ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latest.ckpt");
        let c = sample();
        c.write_to(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        assert_eq!(SimCheckpoint::read_from(&path).unwrap(), c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_digest_is_content_sensitive() {
        let a = crate::workload::nara_fleet_sized(3, 60.0, 1);
        let b = crate::workload::nara_fleet_sized(3, 60.0, 1);
        let c = crate::workload::nara_fleet_sized(3, 60.0, 2);
        assert_eq!(workload_digest(&a), workload_digest(&b));
        assert_ne!(workload_digest(&a), workload_digest(&c));
    }
}
