//! Visualization: ASCII heatmaps for terminals, SVG for reports.
//!
//! The paper's evaluation system "can deal with coordinates x and y and
//! time t and display them"; this module is that display. No external
//! dependencies — SVG is written directly.
//!
//! * [`ascii_heatmap`] — per-region population as a character ramp, handy
//!   for eyeballing ubiquity/congestion in a terminal,
//! * [`SvgScene`] — a small scene builder for trajectories, reported
//!   positions, region grids and cloaking boxes.

use std::fmt::Write as _;

use dummyloc_core::population::PopulationGrid;
use dummyloc_geo::{BBox, Grid, Point};
use dummyloc_trajectory::Trajectory;

/// Density ramp used by [`ascii_heatmap`], lightest to darkest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a population grid as an ASCII heatmap, one character per
/// region, rows printed north-to-south (so the picture matches a map).
/// Counts are scaled to the densest region.
pub fn ascii_heatmap(pop: &PopulationGrid) -> String {
    let grid = pop.grid();
    let max = pop.counts().iter().copied().max().unwrap_or(0);
    let mut out = String::with_capacity((grid.cols() as usize + 3) * grid.rows() as usize);
    let _ = writeln!(out, "+{}+", "-".repeat(grid.cols() as usize));
    for row in (0..grid.rows()).rev() {
        out.push('|');
        for col in 0..grid.cols() {
            let count = pop.count(dummyloc_geo::CellId::new(col, row));
            out.push(ramp_char(count, max));
        }
        out.push('|');
        out.push('\n');
    }
    let _ = writeln!(out, "+{}+", "-".repeat(grid.cols() as usize));
    let _ = writeln!(
        out,
        "max P = {max}, occupied {}/{} regions",
        pop.occupied_regions(),
        pop.region_count()
    );
    out
}

fn ramp_char(count: u32, max: u32) -> char {
    if count == 0 || max == 0 {
        return RAMP[0] as char;
    }
    // count = 1 → lightest non-empty, count = max → darkest.
    let idx = if max <= 1 {
        RAMP.len() - 1
    } else {
        1 + ((count as usize - 1) * (RAMP.len() - 2)) / (max as usize - 1)
    };
    RAMP[idx.min(RAMP.len() - 1)] as char
}

/// A minimal SVG scene over a world-coordinate viewport.
///
/// The y axis is flipped at render time so north is up, matching the
/// planar convention of the rest of the workspace.
#[derive(Debug, Clone)]
pub struct SvgScene {
    viewport: BBox,
    width_px: f64,
    body: String,
}

impl SvgScene {
    /// Creates a scene covering `viewport`, rendered `width_px` wide
    /// (height follows the aspect ratio).
    ///
    /// # Panics
    ///
    /// Panics on a zero-extent viewport or non-positive width.
    pub fn new(viewport: BBox, width_px: f64) -> Self {
        assert!(
            viewport.width() > 0.0 && viewport.height() > 0.0,
            "viewport needs positive extent"
        );
        assert!(width_px > 0.0, "width must be positive");
        SvgScene {
            viewport,
            width_px,
            body: String::new(),
        }
    }

    fn scale(&self) -> f64 {
        self.width_px / self.viewport.width()
    }

    fn height_px(&self) -> f64 {
        self.viewport.height() * self.scale()
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        let s = self.scale();
        (
            (p.x - self.viewport.min().x) * s,
            // Flip y: SVG grows downward.
            (self.viewport.max().y - p.y) * s,
        )
    }

    /// Draws the region grid as light lines.
    pub fn grid(&mut self, grid: &Grid) -> &mut Self {
        let b = grid.bounds();
        for i in 0..=grid.cols() {
            let x = b.min().x + i as f64 * grid.cell_width();
            self.line(
                Point::new(x, b.min().y),
                Point::new(x, b.max().y),
                "#ddd",
                1.0,
            );
        }
        for j in 0..=grid.rows() {
            let y = b.min().y + j as f64 * grid.cell_height();
            self.line(
                Point::new(b.min().x, y),
                Point::new(b.max().x, y),
                "#ddd",
                1.0,
            );
        }
        self
    }

    /// Draws a straight line segment.
    pub fn line(&mut self, a: Point, b: Point, color: &str, width: f64) -> &mut Self {
        let (x1, y1) = self.tx(a);
        let (x2, y2) = self.tx(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="{width}"/>"#,
        );
        self
    }

    /// Draws a trajectory as a polyline.
    pub fn trajectory(&mut self, track: &Trajectory, color: &str, width: f64) -> &mut Self {
        let mut points = String::new();
        for p in track.points() {
            let (x, y) = self.tx(p.pos);
            let _ = write!(points, "{x:.1},{y:.1} ");
        }
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="{width}"/>"#,
            points.trim_end(),
        );
        self
    }

    /// Draws a filled dot (e.g. one reported position).
    pub fn dot(&mut self, p: Point, color: &str, radius: f64) -> &mut Self {
        let (cx, cy) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{radius}" fill="{color}"/>"#,
        );
        self
    }

    /// Draws a rectangle outline (e.g. a cloaking region).
    pub fn rect(&mut self, bbox: &BBox, color: &str, width: f64) -> &mut Self {
        let (x, y) = self.tx(Point::new(bbox.min().x, bbox.max().y));
        let s = self.scale();
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="none" stroke="{color}" stroke-width="{width}"/>"#,
            w = bbox.width() * s,
            h = bbox.height() * s,
        );
        self
    }

    /// Adds a text label at `p`.
    pub fn label(&mut self, p: Point, text: &str, color: &str, size_px: f64) -> &mut Self {
        let (x, y) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" fill="{color}" font-size="{size_px}">{}</text>"#,
            escape(text),
        );
        self
    }

    /// Finalizes the SVG document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" viewBox=\"0 0 {w:.0} {h:.0}\">\n\
             <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{body}</svg>\n",
            w = self.width_px,
            h = self.height_px(),
            body = self.body,
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// A categorical color palette for per-user rendering (cycled).
pub const PALETTE: [&str; 8] = [
    "#1b6ca8", "#d7263d", "#2e933c", "#8b5cf6", "#e8871e", "#0e7c7b", "#c02942", "#5d4037",
];

/// Color for user index `i` (cycles the palette).
pub fn user_color(i: usize) -> &'static str {
    PALETTE[i % PALETTE.len()]
}

/// Convenience: renders one round of the protocol — true positions and
/// dummies of every stream over the region grid. True positions are drawn
/// larger; an observer's view contains no such distinction, which is the
/// point of the picture.
pub fn render_round_svg(
    grid: &Grid,
    streams: &[(Vec<dummyloc_core::client::Request>, usize)],
    round: usize,
    width_px: f64,
) -> String {
    let mut scene = SvgScene::new(grid.bounds(), width_px);
    scene.grid(grid);
    for (i, (requests, _)) in streams.iter().enumerate() {
        let Some(req) = requests.get(round) else {
            continue;
        };
        for &p in &req.positions {
            scene.dot(p, user_color(i), 3.0);
        }
    }
    scene.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_trajectory::TrajectoryBuilder;

    fn grid() -> Grid {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).unwrap();
        Grid::square(b, 4).unwrap()
    }

    #[test]
    fn heatmap_shape_and_ramp() {
        let pop = PopulationGrid::from_positions(
            &grid(),
            vec![
                Point::new(10.0, 10.0),
                Point::new(11.0, 11.0),
                Point::new(12.0, 12.0), // 3 in the SW region
                Point::new(90.0, 90.0), // 1 in the NE region
            ],
        )
        .unwrap();
        let art = ascii_heatmap(&pop);
        let lines: Vec<&str> = art.lines().collect();
        // border + 4 rows + border + summary
        assert_eq!(lines.len(), 7);
        assert_eq!(lines[0], "+----+");
        // North (top) row holds the single NE point in its last column.
        assert_eq!(lines[1].len(), 6);
        assert_ne!(lines[1].as_bytes()[4], b' ');
        // South (bottom) row holds the dense SW region in its first column
        // at the darkest ramp value.
        let south = lines[4];
        assert_eq!(south.as_bytes()[1], RAMP[RAMP.len() - 1]);
        assert!(art.contains("max P = 3"));
        assert!(art.contains("occupied 2/16"));
    }

    #[test]
    fn heatmap_empty_population() {
        let pop = PopulationGrid::empty(&grid());
        let art = ascii_heatmap(&pop);
        assert!(art.contains("max P = 0"));
        // All interior cells blank.
        for line in art.lines().skip(1).take(4) {
            assert!(line[1..5].chars().all(|c| c == ' '), "{line}");
        }
    }

    #[test]
    fn svg_document_is_well_formed() {
        let mut scene = SvgScene::new(grid().bounds(), 400.0);
        let track = TrajectoryBuilder::new("t")
            .point(0.0, Point::new(0.0, 0.0))
            .point(1.0, Point::new(50.0, 50.0))
            .build()
            .unwrap();
        scene
            .grid(&grid())
            .trajectory(&track, "#1b6ca8", 2.0)
            .dot(Point::new(25.0, 25.0), "#d7263d", 3.0)
            .rect(
                &BBox::centered(Point::new(50.0, 50.0), 10.0).unwrap(),
                "#000",
                1.0,
            )
            .label(Point::new(5.0, 95.0), "round <1> & more", "#333", 12.0);
        let svg = scene.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<rect"));
        // Text is escaped.
        assert!(svg.contains("&lt;1&gt; &amp; more"));
        assert!(!svg.contains("<1>"));
    }

    #[test]
    fn svg_y_axis_is_flipped() {
        let mut scene = SvgScene::new(grid().bounds(), 100.0);
        scene.dot(Point::new(0.0, 100.0), "#000", 1.0); // NW corner of the world
        let svg = scene.render();
        // NW world corner maps to the SVG origin (top-left).
        assert!(svg.contains(r#"cx="0.0" cy="0.0""#), "{svg}");
    }

    #[test]
    fn render_round_draws_all_positions() {
        use dummyloc_core::client::Request;
        let streams = vec![
            (
                vec![Request {
                    pseudonym: "a".into(),
                    positions: vec![Point::new(10.0, 10.0), Point::new(20.0, 20.0)],
                }],
                0,
            ),
            (
                vec![Request {
                    pseudonym: "b".into(),
                    positions: vec![Point::new(80.0, 80.0)],
                }],
                0,
            ),
        ];
        let svg = render_round_svg(&grid(), &streams, 0, 200.0);
        assert_eq!(svg.matches("<circle").count(), 3);
        // Out-of-range round draws only the grid.
        let svg2 = render_round_svg(&grid(), &streams, 99, 200.0);
        assert_eq!(svg2.matches("<circle").count(), 0);
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(user_color(0), user_color(8));
        assert_ne!(user_color(0), user_color(1));
    }

    #[test]
    #[should_panic(expected = "positive extent")]
    fn degenerate_viewport_panics() {
        let line = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0)).unwrap();
        SvgScene::new(line, 100.0);
    }
}
