//! Plain-text table rendering and JSON export for experiment results.
//!
//! Every experiment binary prints the same rows the paper reports, via
//! [`Table`]; `EXPERIMENTS.md` embeds those tables, and the JSON export
//! lets downstream tooling consume them.

use std::fmt::Write as _;

use serde::Serialize;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the cell count does not match the headers
    /// (a bug in the experiment code, not a runtime condition).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal ("82.4").
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats a float with `d` decimals.
pub fn fmt(value: f64, d: usize) -> String {
    format!("{value:.d$}")
}

/// Serializes any experiment result to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> crate::Result<String> {
    Ok(serde_json::to_string_pretty(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("# Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, two rows
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // Columns align: "1" and "2" start at the same offset.
        let c1 = lines[3].find('1').unwrap();
        let c2 = lines[4].find('2').unwrap();
        assert_eq!(c1, c2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.8249), "82.5");
        assert_eq!(fmt(std::f64::consts::PI, 2), "3.14");
    }

    #[test]
    fn json_export() {
        #[derive(serde::Serialize)]
        struct R {
            x: u32,
        }
        let s = to_json(&R { x: 7 }).unwrap();
        assert!(s.contains("\"x\": 7"));
    }
}
