//! The deterministic parallel simulation engine.
//!
//! [`ParallelEngine`] runs the exact computation of
//! [`Simulation::run`](crate::engine::Simulation::run) with the per-round
//! user loop fanned out over a [`ThreadPool`] crew, and its headline
//! property is *byte-identical output at any thread count*. The argument,
//! spelled out because the equivalence test suite leans on every clause:
//!
//! 1. **Independent randomness.** Every user draws from an RNG stream
//!    derived only from `(master seed, user index)` (see
//!    [`SeedTree`]); no stream is shared, so which worker steps a user —
//!    and in what order — cannot change any draw.
//! 2. **Commutative aggregation.** The only cross-user value built in
//!    parallel is the per-round [`PopulationGrid`], and its counts are
//!    plain integer sums ([`PopulationGrid::merge`]): merging per-shard
//!    grids in any order equals counting every position serially.
//! 3. **Canonical-order effects.** Everything order-sensitive — the
//!    stateful LBS provider, request streams, metric series — is applied
//!    by the driver thread in user order after the round barrier, exactly
//!    as the serial loop would.
//! 4. **Identical float schedule.** All `f64` metrics (`F`, `Shift(P)`,
//!    congestion CV) are computed by the driver from the merged grid with
//!    the same operations in the same order as the serial engine, so even
//!    floating-point non-associativity cannot creep in.
//!
//! Rounds themselves stay sequential: round `k` consumes the round
//! `k − 1` population (the MLN density view), which is a true data
//! dependency. The parallelism is *within* a round, across users.
//!
//! With one thread the engine delegates to the serial loop outright, so
//! `--threads 1` is not merely equivalent but literally the same code
//! path.

use std::time::{Duration, Instant};

use dummyloc_core::client::{Client, Request};
use dummyloc_core::generator::{DummyGenerator, NoDensity, OthersDensity};
use dummyloc_core::metrics::{shift_p, ubiquity_f, ShiftBuckets};
use dummyloc_core::pool::{Conductor, Shard, ThreadPool};
use dummyloc_core::population::PopulationGrid;
use dummyloc_core::streams::SeedTree;
use dummyloc_geo::{Grid, Point};
use dummyloc_lbs::provider::Provider;
use dummyloc_lbs::PoiDatabase;
use dummyloc_telemetry::{Counter, Histogram, MetricRegistry};
use dummyloc_trajectory::Dataset;
use rand::rngs::StdRng;
use std::sync::Arc;

use crate::engine::{occupied_cv, SimConfig, SimOutcome, Simulation};
use crate::{Result, SimError};

/// Everything one worker owns for one user: the client (generator state),
/// the user's private RNG stream, and the previously reported positions
/// (the "own data" MLN subtracts from the global density).
struct UserState {
    client: Client<Box<dyn DummyGenerator>>,
    rng: StdRng,
    prev_positions: Vec<Point>,
}

/// One round's broadcast input: the round number, every user's true
/// position at this tick (indexed by user), and the previous round's
/// merged population for the MLN density view.
struct RoundJob {
    k: usize,
    positions: Vec<Point>,
    prev_pop: Option<PopulationGrid>,
}

/// One worker's per-round output: its users' requests (in shard order),
/// the shard-local population, and how long the step took (telemetry
/// only — never feeds back into the simulation).
struct ShardOut {
    users: Vec<(Request, usize)>,
    pop: PopulationGrid,
    elapsed: Duration,
}

type ShardResult = std::result::Result<ShardOut, SimError>;

/// What the driver accumulates across rounds (the serial loop's locals).
struct Collected {
    f_series: Vec<f64>,
    cv_series: Vec<f64>,
    shift_buckets: ShiftBuckets,
    shift_sum: u64,
    shift_regions: u64,
    streams: Vec<Vec<Request>>,
    last_truth: Vec<usize>,
    provider: Option<Provider>,
}

/// A [`Simulation`] whose per-round user loop runs on a thread pool,
/// with output guaranteed identical to the serial engine.
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    sim: Simulation,
    pool: ThreadPool,
}

impl ParallelEngine {
    /// Validates `config` and fixes the worker count (`0` → 1).
    pub fn new(config: SimConfig, threads: usize) -> Result<Self> {
        Ok(ParallelEngine {
            sim: Simulation::new(config)?,
            pool: ThreadPool::new(threads),
        })
    }

    /// An engine honoring the process-wide default thread count (the
    /// CLI's `--threads`; see [`dummyloc_core::pool::set_default_threads`]).
    pub fn with_default_threads(config: SimConfig) -> Result<Self> {
        Ok(ParallelEngine {
            sim: Simulation::new(config)?,
            pool: ThreadPool::with_default(),
        })
    }

    /// Wraps an already-built simulation.
    pub fn from_simulation(sim: Simulation, threads: usize) -> Self {
        ParallelEngine {
            sim,
            pool: ThreadPool::new(threads),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Attaches a metric registry: the engine then reports the serial
    /// loop's `sim.phase.*` / `sim.rounds` / `sim.requests` families plus
    /// per-worker `sim.worker.{i}.*` metrics (which
    /// [`dummyloc_telemetry::RunManifest::scrubbed`] drops, keeping
    /// scrubbed manifests thread-count-invariant).
    pub fn with_telemetry(mut self, registry: Arc<MetricRegistry>) -> Self {
        self.sim = self.sim.with_telemetry(registry);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        self.sim.config()
    }

    /// The region grid metrics are computed over.
    pub fn grid(&self) -> &Grid {
        self.sim.grid()
    }

    /// Runs the simulation over `workload`; the result is byte-identical
    /// to [`Simulation::run`] for every configuration and thread count.
    pub fn run(&self, workload: &Dataset) -> Result<SimOutcome> {
        if self.pool.is_serial() {
            // Not just equivalent: the same code path.
            return self.sim.run(workload);
        }
        self.run_sharded(workload)
    }

    fn run_sharded(&self, workload: &Dataset) -> Result<SimOutcome> {
        let cfg = self.sim.config();
        let grid = self.sim.grid();
        let (start, end) = workload
            .common_time_range()
            .ok_or(SimError::NoCommonWindow)?;
        if let Some(b) = workload.bounds() {
            if !cfg.area.contains_bbox(&b) {
                return Err(SimError::AreaMismatch {
                    detail: format!("workload bounds {b:?} exceed service area {:?}", cfg.area),
                });
            }
        }

        let users = workload.len();
        let seeds = SeedTree::new(cfg.seed);
        let mut states: Vec<UserState> = Vec::with_capacity(users);
        for (i, track) in workload.tracks().iter().enumerate() {
            let generator = cfg.generator.build(cfg.area)?;
            let mut client = Client::new(track.id(), generator, cfg.dummy_count);
            if cfg.quantize {
                client = client.with_precision(grid.clone());
            }
            states.push(UserState {
                client,
                rng: seeds.rng(i as u64),
                prev_positions: Vec::new(),
            });
        }

        let provider = cfg
            .service
            .map(|s| Provider::new(PoiDatabase::generate(cfg.area, s.poi_count, s.poi_seed)));

        // Same phase families as the serial loop — one observation per
        // round each, so scrubbed snapshots (which keep observation
        // counts) match the serial engine's exactly.
        let phases = self.sim.telemetry().map(|reg| {
            (
                reg.histogram_log2("sim.phase.dummy_gen_us"),
                reg.histogram_log2("sim.phase.region_analysis_us"),
                reg.histogram_log2("sim.phase.metrics_us"),
                reg.histogram_log2("sim.phase.service_us"),
                reg.counter("sim.rounds"),
                reg.counter("sim.requests"),
            )
        });
        // Per-worker visibility. Every name carries a `.worker.` segment:
        // the manifest scrubber drops those, because they legitimately
        // vary with the thread count.
        let worker_stats: Option<Vec<(Arc<Histogram>, Arc<Counter>)>> =
            self.sim.telemetry().map(|reg| {
                self.pool
                    .plan(users)
                    .iter()
                    .map(|s| {
                        (
                            reg.histogram_log2(&format!("sim.worker.{}.step_us", s.index)),
                            reg.counter(&format!("sim.worker.{}.users", s.index)),
                        )
                    })
                    .collect()
            });

        let rounds = ((end - start) / cfg.tick).floor() as usize + 1;

        let step = |shard: Shard, chunk: &mut [UserState], job: &RoundJob| -> ShardResult {
            let started = Instant::now();
            let mut pop = PopulationGrid::empty(grid);
            let mut out = Vec::with_capacity(chunk.len());
            for (j, st) in chunk.iter_mut().enumerate() {
                let pos = job.positions[shard.offset + j];
                let round = if job.k == 0 {
                    st.client.begin(&mut st.rng, pos)?
                } else {
                    match &job.prev_pop {
                        Some(density) => {
                            let view = OthersDensity::new(density, &st.prev_positions);
                            st.client.step(&mut st.rng, pos, &view)?
                        }
                        None => st.client.step(&mut st.rng, pos, &NoDensity)?,
                    }
                };
                for &p in &round.request.positions {
                    pop.add(p).map_err(SimError::from)?;
                }
                st.prev_positions.clone_from(&round.request.positions);
                out.push((round.request, round.truth_index));
            }
            Ok(ShardOut {
                users: out,
                pop,
                elapsed: started.elapsed(),
            })
        };

        let drive = |conductor: &mut Conductor<RoundJob, ShardResult>| -> Result<Collected> {
            let mut c = Collected {
                f_series: Vec::with_capacity(rounds),
                cv_series: Vec::with_capacity(rounds),
                shift_buckets: ShiftBuckets::default(),
                shift_sum: 0,
                shift_regions: 0,
                streams: vec![Vec::with_capacity(rounds); users],
                last_truth: vec![0usize; users],
                provider,
            };
            let mut prev_pop: Option<PopulationGrid> = None;
            for k in 0..rounds {
                let t = start + k as f64 * cfg.tick;
                let snapshot = workload.snapshot(t);
                let positions: Vec<Point> = snapshot
                    .positions()
                    .iter()
                    .map(|p| p.expect("common window guarantees activity"))
                    .collect();
                let gen_started = Instant::now();
                let outs = conductor.round(RoundJob {
                    k,
                    positions,
                    prev_pop: prev_pop.clone(),
                })?;
                let d_gen = gen_started.elapsed();

                let region_started = Instant::now();
                let mut pop = PopulationGrid::empty(grid);
                let mut shard_outs = Vec::with_capacity(outs.len());
                for out in outs {
                    let so = out?;
                    pop.merge(&so.pop).map_err(SimError::from)?;
                    shard_outs.push(so);
                }
                let d_region = region_started.elapsed();

                if let Some(stats) = &worker_stats {
                    for (w, so) in shard_outs.iter().enumerate() {
                        let (h_step, c_users) = &stats[w];
                        h_step.record_duration(so.elapsed);
                        c_users.add(so.users.len() as u64);
                    }
                }

                // Order-sensitive effects in canonical user order: shards
                // are contiguous and arrive in shard order, so flattening
                // them walks users 0, 1, 2, …
                let mut d_service = Duration::ZERO;
                let mut i = 0usize;
                for so in shard_outs {
                    for (request, truth) in so.users {
                        if let Some(provider) = c.provider.as_mut() {
                            let query = cfg.service.expect("provider implies service config").query;
                            let service_started = Instant::now();
                            provider.handle(t, &request, &query);
                            d_service += service_started.elapsed();
                        }
                        c.last_truth[i] = truth;
                        c.streams[i].push(request);
                        i += 1;
                    }
                }

                let metrics_started = Instant::now();
                c.f_series.push(ubiquity_f(&pop));
                c.cv_series.push(occupied_cv(&pop));
                if let Some(prev) = &prev_pop {
                    let s = shift_p(prev, &pop);
                    c.shift_buckets.merge(&s.buckets);
                    c.shift_sum += (s.mean * s.regions as f64).round() as u64;
                    c.shift_regions += s.regions as u64;
                }
                prev_pop = Some(pop);
                if let Some((h_gen, h_region, h_metrics, h_service, c_rounds, c_requests)) = &phases
                {
                    h_gen.record_duration(d_gen);
                    h_region.record_duration(d_region);
                    h_metrics.record_duration(metrics_started.elapsed());
                    if c.provider.is_some() {
                        h_service.record_duration(d_service);
                    }
                    c_rounds.inc();
                    c_requests.add(users as u64);
                }
            }
            Ok(c)
        };

        let (_states, collected) = self.pool.supersteps(states, step, drive)?;
        let c = collected?;

        let mean_f = if c.f_series.is_empty() {
            0.0
        } else {
            c.f_series.iter().sum::<f64>() / c.f_series.len() as f64
        };
        Ok(SimOutcome {
            rounds,
            mean_f,
            f_series: c.f_series,
            shift_buckets: c.shift_buckets,
            shift_mean: if c.shift_regions > 0 {
                c.shift_sum as f64 / c.shift_regions as f64
            } else {
                0.0
            },
            congestion_cv: if c.cv_series.is_empty() {
                0.0
            } else {
                c.cv_series.iter().sum::<f64>() / c.cv_series.len() as f64
            },
            streams: c.streams.into_iter().zip(c.last_truth).collect(),
            cost: c.provider.map(|p| *p.cost()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GeneratorKind;
    use crate::workload;
    use dummyloc_lbs::poi::Category;
    use dummyloc_lbs::query::QueryKind;

    fn config() -> SimConfig {
        SimConfig {
            grid_size: 8,
            dummy_count: 3,
            generator: GeneratorKind::Mln {
                m: 100.0,
                retry_budget: 3,
            },
            ..SimConfig::nara_default(11)
        }
    }

    fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome) {
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(
            a.f_series.iter().map(|f| f.to_bits()).collect::<Vec<u64>>(),
            b.f_series.iter().map(|f| f.to_bits()).collect::<Vec<u64>>()
        );
        assert_eq!(a.mean_f.to_bits(), b.mean_f.to_bits());
        assert_eq!(a.shift_buckets, b.shift_buckets);
        assert_eq!(a.shift_mean.to_bits(), b.shift_mean.to_bits());
        assert_eq!(a.congestion_cv.to_bits(), b.congestion_cv.to_bits());
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn matches_serial_engine_exactly() {
        let fleet = workload::nara_fleet_sized(7, 150.0, 3);
        let serial = Simulation::new(config()).unwrap().run(&fleet).unwrap();
        for threads in [2, 3, 5] {
            let parallel = ParallelEngine::new(config(), threads)
                .unwrap()
                .run(&fleet)
                .unwrap();
            assert_outcomes_identical(&serial, &parallel);
        }
    }

    #[test]
    fn matches_serial_with_service_and_quantization() {
        let fleet = workload::nara_fleet_sized(5, 120.0, 9);
        let mut cfg = config();
        cfg.quantize = true;
        cfg.service = Some(crate::engine::ServiceConfig {
            poi_count: 30,
            poi_seed: 4,
            query: QueryKind::NearestPoi {
                category: Some(Category::Restaurant),
            },
        });
        let serial = Simulation::new(cfg).unwrap().run(&fleet).unwrap();
        let parallel = ParallelEngine::new(cfg, 4).unwrap().run(&fleet).unwrap();
        assert_outcomes_identical(&serial, &parallel);
    }

    #[test]
    fn one_thread_delegates_to_serial() {
        let fleet = workload::nara_fleet_sized(4, 90.0, 2);
        let engine = ParallelEngine::new(config(), 1).unwrap();
        assert_eq!(engine.threads(), 1);
        let a = engine.run(&fleet).unwrap();
        let b = Simulation::new(config()).unwrap().run(&fleet).unwrap();
        assert_outcomes_identical(&a, &b);
    }

    #[test]
    fn more_threads_than_users_is_fine() {
        let fleet = workload::nara_fleet_sized(3, 90.0, 2);
        let serial = Simulation::new(config()).unwrap().run(&fleet).unwrap();
        let parallel = ParallelEngine::new(config(), 16)
            .unwrap()
            .run(&fleet)
            .unwrap();
        assert_outcomes_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_rejects_bad_workloads_like_serial() {
        let engine = ParallelEngine::new(config(), 3).unwrap();
        assert!(matches!(
            engine.run(&Dataset::new()),
            Err(SimError::NoCommonWindow)
        ));
    }
}
