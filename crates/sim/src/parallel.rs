//! The deterministic parallel simulation engine.
//!
//! [`ParallelEngine`] runs the exact computation of
//! [`Simulation::run`](crate::engine::Simulation::run) with the per-round
//! user loop fanned out over a [`ThreadPool`] crew, and its headline
//! property is *byte-identical output at any thread count*. The argument,
//! spelled out because the equivalence test suite leans on every clause:
//!
//! 1. **Independent randomness.** Every user draws from an RNG stream
//!    derived only from `(master seed, user index)` (see
//!    [`SeedTree`]); no stream is shared, so which worker steps a user —
//!    and in what order — cannot change any draw.
//! 2. **Commutative aggregation.** The only cross-user value built in
//!    parallel is the per-round [`PopulationGrid`], and its counts are
//!    plain integer sums ([`PopulationGrid::merge`]): merging per-shard
//!    grids in any order equals counting every position serially.
//! 3. **Canonical-order effects.** Everything order-sensitive — the
//!    stateful LBS provider, request streams, metric series — is applied
//!    by the driver thread in user order after the round barrier, exactly
//!    as the serial loop would.
//! 4. **Identical float schedule.** All `f64` metrics (`F`, `Shift(P)`,
//!    congestion CV) are computed by the driver from the merged grid with
//!    the same operations in the same order as the serial engine, so even
//!    floating-point non-associativity cannot creep in.
//!
//! Rounds themselves stay sequential: round `k` consumes the round
//! `k − 1` population (the MLN density view), which is a true data
//! dependency. The parallelism is *within* a round, across users.
//!
//! With one thread the engine delegates to the serial loop outright, so
//! `--threads 1` is not merely equivalent but literally the same code
//! path.

use std::time::{Duration, Instant};

use dummyloc_core::client::{Client, Request};
use dummyloc_core::generator::{DummyGenerator, NoDensity, OthersDensity};
use dummyloc_core::metrics::{shift_p, ubiquity_f, ShiftBuckets};
use dummyloc_core::pool::{Conductor, Shard, ThreadPool};
use dummyloc_core::population::PopulationGrid;
use dummyloc_core::streams::SeedTree;
use dummyloc_geo::rng::SimRng;
use dummyloc_geo::{Grid, Point};
use dummyloc_lbs::provider::Provider;
use dummyloc_lbs::PoiDatabase;
use dummyloc_telemetry::{Counter, Histogram, MetricRegistry};
use dummyloc_trajectory::Dataset;
use std::sync::Arc;

use crate::checkpoint::{CheckpointSpec, SimCheckpoint, UserCheckpoint};
use crate::engine::{occupied_cv, SimConfig, SimOutcome, Simulation};
use crate::{Result, SimError};

/// Everything one worker owns for one user: the client (generator state),
/// the user's private RNG stream, and the previously reported positions
/// (the "own data" MLN subtracts from the global density).
struct UserState {
    client: Client<Box<dyn DummyGenerator>>,
    rng: SimRng,
    prev_positions: Vec<Point>,
}

/// One round's broadcast input: the round number, every user's true
/// position at this tick (indexed by user), and the previous round's
/// merged population for the MLN density view.
struct RoundJob {
    k: usize,
    positions: Vec<Point>,
    prev_pop: Option<PopulationGrid>,
    /// Driver-chosen: this round ends in a checkpoint, so every worker
    /// must snapshot its users' suspended state alongside the requests.
    capture: bool,
}

/// One worker's per-round output: its users' requests (in shard order),
/// the shard-local population, and how long the step took (telemetry
/// only — never feeds back into the simulation).
struct ShardOut {
    users: Vec<(Request, usize)>,
    pop: PopulationGrid,
    elapsed: Duration,
    /// Per-user `(rng state, dummy positions)` snapshots, in shard order;
    /// empty unless the round's [`RoundJob::capture`] was set. Snapshots
    /// are pure per-user state, so flattening shards in shard order
    /// yields exactly the serial engine's checkpoint.
    snapshots: Vec<([u64; 4], Vec<Point>)>,
}

type ShardResult = std::result::Result<ShardOut, SimError>;

/// What the driver accumulates across rounds (the serial loop's locals).
struct Collected {
    f_series: Vec<f64>,
    cv_series: Vec<f64>,
    shift_buckets: ShiftBuckets,
    shift_sum: u64,
    shift_regions: u64,
    streams: Vec<Vec<Request>>,
    last_truth: Vec<usize>,
    provider: Option<Provider>,
}

/// A [`Simulation`] whose per-round user loop runs on a thread pool,
/// with output guaranteed identical to the serial engine.
#[derive(Debug, Clone)]
pub struct ParallelEngine {
    sim: Simulation,
    pool: ThreadPool,
}

impl ParallelEngine {
    /// Validates `config` and fixes the worker count (`0` → 1).
    pub fn new(config: SimConfig, threads: usize) -> Result<Self> {
        Ok(ParallelEngine {
            sim: Simulation::new(config)?,
            pool: ThreadPool::new(threads),
        })
    }

    /// An engine honoring the process-wide default thread count (the
    /// CLI's `--threads`; see [`dummyloc_core::pool::set_default_threads`]).
    pub fn with_default_threads(config: SimConfig) -> Result<Self> {
        Ok(ParallelEngine {
            sim: Simulation::new(config)?,
            pool: ThreadPool::with_default(),
        })
    }

    /// Wraps an already-built simulation.
    pub fn from_simulation(sim: Simulation, threads: usize) -> Self {
        ParallelEngine {
            sim,
            pool: ThreadPool::new(threads),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Attaches a metric registry: the engine then reports the serial
    /// loop's `sim.phase.*` / `sim.rounds` / `sim.requests` families plus
    /// per-worker `sim.worker.{i}.*` metrics (which
    /// [`dummyloc_telemetry::RunManifest::scrubbed`] drops, keeping
    /// scrubbed manifests thread-count-invariant).
    pub fn with_telemetry(mut self, registry: Arc<MetricRegistry>) -> Self {
        self.sim = self.sim.with_telemetry(registry);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        self.sim.config()
    }

    /// The region grid metrics are computed over.
    pub fn grid(&self) -> &Grid {
        self.sim.grid()
    }

    /// Runs the simulation over `workload`; the result is byte-identical
    /// to [`Simulation::run`] for every configuration and thread count.
    pub fn run(&self, workload: &Dataset) -> Result<SimOutcome> {
        self.run_session(workload, None, None)
    }

    /// [`ParallelEngine::run`] with suspend/resume (see
    /// [`Simulation::run_session`]). Checkpoints are captured at round
    /// barriers in canonical user order, so the checkpoint bytes — like
    /// the outcome — are identical at any thread count, and a run may be
    /// suspended at one thread count and resumed at another.
    pub fn run_session(
        &self,
        workload: &Dataset,
        resume: Option<&SimCheckpoint>,
        checkpoints: Option<CheckpointSpec<'_>>,
    ) -> Result<SimOutcome> {
        if self.pool.is_serial() {
            // Not just equivalent: the same code path.
            return self.sim.run_session(workload, resume, checkpoints);
        }
        self.run_sharded(workload, resume, checkpoints)
    }

    fn run_sharded(
        &self,
        workload: &Dataset,
        resume: Option<&SimCheckpoint>,
        mut checkpoints: Option<CheckpointSpec<'_>>,
    ) -> Result<SimOutcome> {
        let cfg = self.sim.config();
        let grid = self.sim.grid();
        let (start, end) = workload
            .common_time_range()
            .ok_or(SimError::NoCommonWindow)?;
        if let Some(b) = workload.bounds() {
            if !cfg.area.contains_bbox(&b) {
                return Err(SimError::AreaMismatch {
                    detail: format!("workload bounds {b:?} exceed service area {:?}", cfg.area),
                });
            }
        }

        let rounds = ((end - start) / cfg.tick).floor() as usize + 1;
        if let Some(ckpt) = resume {
            ckpt.verify_matches(cfg, workload, rounds)?;
        }

        let users = workload.len();
        let seeds = SeedTree::new(cfg.seed);
        let mut states: Vec<UserState> = Vec::with_capacity(users);
        for (i, track) in workload.tracks().iter().enumerate() {
            let generator = cfg.generator.build(cfg.area)?;
            let mut client = Client::new(track.id(), generator, cfg.dummy_count);
            if cfg.quantize {
                client = client.with_precision(grid.clone());
            }
            match resume {
                Some(ckpt) if ckpt.completed_rounds > 0 => {
                    let u = &ckpt.users[i];
                    client.resume_session(u.dummies.clone())?;
                    states.push(UserState {
                        client,
                        rng: SimRng::from_state(u.rng),
                        // The MLN density view subtracts last round's own
                        // reported positions — the tail of the restored
                        // stream.
                        prev_positions: u
                            .requests
                            .last()
                            .map(|r| r.positions.clone())
                            .unwrap_or_default(),
                    });
                }
                _ => states.push(UserState {
                    client,
                    rng: seeds.sim_rng(i as u64),
                    prev_positions: Vec::new(),
                }),
            }
        }

        let mut provider = cfg
            .service
            .map(|s| Provider::new(PoiDatabase::generate(cfg.area, s.poi_count, s.poi_seed)));
        if let (Some(p), Some(cost)) = (provider.as_mut(), resume.and_then(|c| c.cost)) {
            p.restore_cost(cost);
        }

        // Same phase families as the serial loop — one observation per
        // round each, so scrubbed snapshots (which keep observation
        // counts) match the serial engine's exactly.
        let phases = self.sim.telemetry().map(|reg| {
            (
                reg.histogram_log2("sim.phase.dummy_gen_us"),
                reg.histogram_log2("sim.phase.region_analysis_us"),
                reg.histogram_log2("sim.phase.metrics_us"),
                reg.histogram_log2("sim.phase.service_us"),
                reg.counter("sim.rounds"),
                reg.counter("sim.requests"),
            )
        });
        // Per-worker visibility. Every name carries a `.worker.` segment:
        // the manifest scrubber drops those, because they legitimately
        // vary with the thread count.
        let worker_stats: Option<Vec<(Arc<Histogram>, Arc<Counter>)>> =
            self.sim.telemetry().map(|reg| {
                self.pool
                    .plan(users)
                    .iter()
                    .map(|s| {
                        (
                            reg.histogram_log2(&format!("sim.worker.{}.step_us", s.index)),
                            reg.counter(&format!("sim.worker.{}.users", s.index)),
                        )
                    })
                    .collect()
            });

        let step = |shard: Shard, chunk: &mut [UserState], job: &RoundJob| -> ShardResult {
            let started = Instant::now();
            let mut pop = PopulationGrid::empty(grid);
            let mut out = Vec::with_capacity(chunk.len());
            for (j, st) in chunk.iter_mut().enumerate() {
                let pos = job.positions[shard.offset + j];
                let round = if job.k == 0 {
                    st.client.begin(&mut st.rng, pos)?
                } else {
                    match &job.prev_pop {
                        Some(density) => {
                            let view = OthersDensity::new(density, &st.prev_positions);
                            st.client.step(&mut st.rng, pos, &view)?
                        }
                        None => st.client.step(&mut st.rng, pos, &NoDensity)?,
                    }
                };
                for &p in &round.request.positions {
                    pop.add(p).map_err(SimError::from)?;
                }
                st.prev_positions.clone_from(&round.request.positions);
                out.push((round.request, round.truth_index));
            }
            let snapshots = if job.capture {
                chunk
                    .iter()
                    .map(|st| (st.rng.state(), st.client.dummies().to_vec()))
                    .collect()
            } else {
                Vec::new()
            };
            Ok(ShardOut {
                users: out,
                pop,
                elapsed: started.elapsed(),
                snapshots,
            })
        };

        let workload_digest = resume
            .map(|c| c.workload_digest)
            .or_else(|| {
                checkpoints
                    .is_some()
                    .then(|| crate::checkpoint::workload_digest(workload))
            })
            .unwrap_or(0);
        let drive = |conductor: &mut Conductor<RoundJob, ShardResult>| -> Result<Collected> {
            let mut c = Collected {
                f_series: Vec::with_capacity(rounds),
                cv_series: Vec::with_capacity(rounds),
                shift_buckets: ShiftBuckets::default(),
                shift_sum: 0,
                shift_regions: 0,
                streams: vec![Vec::with_capacity(rounds); users],
                last_truth: vec![0usize; users],
                provider,
            };
            let mut prev_pop: Option<PopulationGrid> = None;
            let mut first_round = 0usize;
            if let Some(ckpt) = resume {
                first_round = ckpt.completed_rounds;
                c.f_series = ckpt.f_series.clone();
                c.cv_series = ckpt.cv_series.clone();
                c.shift_buckets = ckpt.shift_buckets;
                c.shift_sum = ckpt.shift_sum;
                c.shift_regions = ckpt.shift_regions;
                if ckpt.completed_rounds > 0 {
                    prev_pop = Some(PopulationGrid::from_counts(grid, ckpt.prev_pop.clone())?);
                }
                for (i, u) in ckpt.users.iter().enumerate() {
                    c.streams[i] = u.requests.clone();
                    c.last_truth[i] = u.last_truth;
                }
            }
            for k in first_round..rounds {
                let t = start + k as f64 * cfg.tick;
                let snapshot = workload.snapshot(t);
                let positions: Vec<Point> = snapshot
                    .positions()
                    .iter()
                    .map(|p| p.expect("common window guarantees activity"))
                    .collect();
                let capture = checkpoints
                    .as_ref()
                    .is_some_and(|spec| spec.wants(k + 1, rounds));
                let gen_started = Instant::now();
                let outs = conductor.round(RoundJob {
                    k,
                    positions,
                    prev_pop: prev_pop.clone(),
                    capture,
                })?;
                let d_gen = gen_started.elapsed();

                let region_started = Instant::now();
                let mut pop = PopulationGrid::empty(grid);
                let mut shard_outs = Vec::with_capacity(outs.len());
                for out in outs {
                    let so = out?;
                    pop.merge(&so.pop).map_err(SimError::from)?;
                    shard_outs.push(so);
                }
                let d_region = region_started.elapsed();

                if let Some(stats) = &worker_stats {
                    for (w, so) in shard_outs.iter().enumerate() {
                        let (h_step, c_users) = &stats[w];
                        h_step.record_duration(so.elapsed);
                        c_users.add(so.users.len() as u64);
                    }
                }

                // Order-sensitive effects in canonical user order: shards
                // are contiguous and arrive in shard order, so flattening
                // them walks users 0, 1, 2, …
                let mut d_service = Duration::ZERO;
                let mut round_snapshots: Vec<([u64; 4], Vec<Point>)> = Vec::new();
                let mut i = 0usize;
                for so in shard_outs {
                    round_snapshots.extend(so.snapshots);
                    for (request, truth) in so.users {
                        if let Some(provider) = c.provider.as_mut() {
                            let query = cfg.service.expect("provider implies service config").query;
                            let service_started = Instant::now();
                            provider.handle(t, &request, &query);
                            d_service += service_started.elapsed();
                        }
                        c.last_truth[i] = truth;
                        c.streams[i].push(request);
                        i += 1;
                    }
                }

                let metrics_started = Instant::now();
                c.f_series.push(ubiquity_f(&pop));
                c.cv_series.push(occupied_cv(&pop));
                if let Some(prev) = &prev_pop {
                    let s = shift_p(prev, &pop);
                    c.shift_buckets.merge(&s.buckets);
                    c.shift_sum += (s.mean * s.regions as f64).round() as u64;
                    c.shift_regions += s.regions as u64;
                }
                prev_pop = Some(pop);
                if let Some((h_gen, h_region, h_metrics, h_service, c_rounds, c_requests)) = &phases
                {
                    h_gen.record_duration(d_gen);
                    h_region.record_duration(d_region);
                    h_metrics.record_duration(metrics_started.elapsed());
                    if c.provider.is_some() {
                        h_service.record_duration(d_service);
                    }
                    c_rounds.inc();
                    c_requests.add(users as u64);
                }
                if capture {
                    let spec = checkpoints
                        .as_mut()
                        .expect("capture implies a checkpoint spec");
                    let ckpt = SimCheckpoint {
                        config: *cfg,
                        workload_digest,
                        completed_rounds: k + 1,
                        total_rounds: rounds,
                        users: round_snapshots
                            .into_iter()
                            .enumerate()
                            .map(|(i, (rng, dummies))| UserCheckpoint {
                                rng,
                                dummies,
                                last_truth: c.last_truth[i],
                                requests: c.streams[i].clone(),
                            })
                            .collect(),
                        f_series: c.f_series.clone(),
                        cv_series: c.cv_series.clone(),
                        shift_buckets: c.shift_buckets,
                        shift_sum: c.shift_sum,
                        shift_regions: c.shift_regions,
                        prev_pop: prev_pop
                            .as_ref()
                            .expect("a completed round leaves a population")
                            .counts()
                            .to_vec(),
                        cost: c.provider.as_ref().map(|p| *p.cost()),
                    };
                    (spec.sink)(&ckpt)?;
                }
            }
            Ok(c)
        };

        let (_states, collected) = self.pool.supersteps(states, step, drive)?;
        let c = collected?;

        let mean_f = if c.f_series.is_empty() {
            0.0
        } else {
            c.f_series.iter().sum::<f64>() / c.f_series.len() as f64
        };
        Ok(SimOutcome {
            rounds,
            mean_f,
            f_series: c.f_series,
            shift_buckets: c.shift_buckets,
            shift_mean: if c.shift_regions > 0 {
                c.shift_sum as f64 / c.shift_regions as f64
            } else {
                0.0
            },
            congestion_cv: if c.cv_series.is_empty() {
                0.0
            } else {
                c.cv_series.iter().sum::<f64>() / c.cv_series.len() as f64
            },
            streams: c.streams.into_iter().zip(c.last_truth).collect(),
            cost: c.provider.map(|p| *p.cost()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GeneratorKind;
    use crate::workload;
    use dummyloc_lbs::poi::Category;
    use dummyloc_lbs::query::QueryKind;

    fn config() -> SimConfig {
        SimConfig {
            grid_size: 8,
            dummy_count: 3,
            generator: GeneratorKind::Mln {
                m: 100.0,
                retry_budget: 3,
            },
            ..SimConfig::nara_default(11)
        }
    }

    fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome) {
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(
            a.f_series.iter().map(|f| f.to_bits()).collect::<Vec<u64>>(),
            b.f_series.iter().map(|f| f.to_bits()).collect::<Vec<u64>>()
        );
        assert_eq!(a.mean_f.to_bits(), b.mean_f.to_bits());
        assert_eq!(a.shift_buckets, b.shift_buckets);
        assert_eq!(a.shift_mean.to_bits(), b.shift_mean.to_bits());
        assert_eq!(a.congestion_cv.to_bits(), b.congestion_cv.to_bits());
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn matches_serial_engine_exactly() {
        let fleet = workload::nara_fleet_sized(7, 150.0, 3);
        let serial = Simulation::new(config()).unwrap().run(&fleet).unwrap();
        for threads in [2, 3, 5] {
            let parallel = ParallelEngine::new(config(), threads)
                .unwrap()
                .run(&fleet)
                .unwrap();
            assert_outcomes_identical(&serial, &parallel);
        }
    }

    #[test]
    fn matches_serial_with_service_and_quantization() {
        let fleet = workload::nara_fleet_sized(5, 120.0, 9);
        let mut cfg = config();
        cfg.quantize = true;
        cfg.service = Some(crate::engine::ServiceConfig {
            poi_count: 30,
            poi_seed: 4,
            query: QueryKind::NearestPoi {
                category: Some(Category::Restaurant),
            },
        });
        let serial = Simulation::new(cfg).unwrap().run(&fleet).unwrap();
        let parallel = ParallelEngine::new(cfg, 4).unwrap().run(&fleet).unwrap();
        assert_outcomes_identical(&serial, &parallel);
    }

    #[test]
    fn one_thread_delegates_to_serial() {
        let fleet = workload::nara_fleet_sized(4, 90.0, 2);
        let engine = ParallelEngine::new(config(), 1).unwrap();
        assert_eq!(engine.threads(), 1);
        let a = engine.run(&fleet).unwrap();
        let b = Simulation::new(config()).unwrap().run(&fleet).unwrap();
        assert_outcomes_identical(&a, &b);
    }

    #[test]
    fn more_threads_than_users_is_fine() {
        let fleet = workload::nara_fleet_sized(3, 90.0, 2);
        let serial = Simulation::new(config()).unwrap().run(&fleet).unwrap();
        let parallel = ParallelEngine::new(config(), 16)
            .unwrap()
            .run(&fleet)
            .unwrap();
        assert_outcomes_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_rejects_bad_workloads_like_serial() {
        let engine = ParallelEngine::new(config(), 3).unwrap();
        assert!(matches!(
            engine.run(&Dataset::new()),
            Err(SimError::NoCommonWindow)
        ));
    }

    fn run_capturing(
        threads: usize,
        fleet: &Dataset,
        every: usize,
    ) -> (SimOutcome, Vec<SimCheckpoint>) {
        let engine = ParallelEngine::new(config(), threads).unwrap();
        let mut ckpts = Vec::new();
        let mut sink = |c: &SimCheckpoint| {
            ckpts.push(c.clone());
            Ok(())
        };
        let outcome = engine
            .run_session(
                fleet,
                None,
                Some(CheckpointSpec {
                    every,
                    sink: &mut sink,
                }),
            )
            .unwrap();
        (outcome, ckpts)
    }

    #[test]
    fn resume_from_any_checkpoint_is_bitwise_identical() {
        let fleet = workload::nara_fleet_sized(6, 150.0, 5);
        let (full, ckpts) = run_capturing(1, &fleet, 1);
        assert_eq!(ckpts.len(), full.rounds - 1);
        for ckpt in &ckpts {
            for threads in [1, 4] {
                let engine = ParallelEngine::new(config(), threads).unwrap();
                let resumed = engine.run_session(&fleet, Some(ckpt), None).unwrap();
                assert_outcomes_identical(&full, &resumed);
            }
        }
    }

    #[test]
    fn checkpoint_bytes_are_thread_count_invariant() {
        let fleet = workload::nara_fleet_sized(7, 150.0, 9);
        let (serial_out, serial_ckpts) = run_capturing(1, &fleet, 2);
        assert!(!serial_ckpts.is_empty());
        for threads in [2, 5] {
            let (out, ckpts) = run_capturing(threads, &fleet, 2);
            assert_outcomes_identical(&serial_out, &out);
            assert_eq!(serial_ckpts.len(), ckpts.len());
            for (a, b) in serial_ckpts.iter().zip(&ckpts) {
                assert_eq!(a.encode().unwrap(), b.encode().unwrap());
            }
        }
    }

    #[test]
    fn suspend_at_one_thread_count_resume_at_another() {
        let fleet = workload::nara_fleet_sized(6, 150.0, 7);
        let (full, ckpts) = run_capturing(3, &fleet, 3);
        let mid = &ckpts[ckpts.len() / 2];
        // Round-trip through the wire encoding so the test covers the
        // exact bytes a crash-resume would read back from disk.
        let restored = SimCheckpoint::decode(&mid.encode().unwrap()).unwrap();
        for threads in [1, 2, 4] {
            let engine = ParallelEngine::new(config(), threads).unwrap();
            let resumed = engine.run_session(&fleet, Some(&restored), None).unwrap();
            assert_outcomes_identical(&full, &resumed);
        }
    }

    #[test]
    fn resume_rejects_mismatched_run() {
        let fleet = workload::nara_fleet_sized(5, 150.0, 3);
        let (_, ckpts) = run_capturing(2, &fleet, 2);
        let ckpt = &ckpts[0];

        // Different seed => different config digest.
        let other_cfg = SimConfig {
            seed: 999,
            ..config()
        };
        let engine = ParallelEngine::new(other_cfg, 2).unwrap();
        assert!(matches!(
            engine.run_session(&fleet, Some(ckpt), None),
            Err(SimError::Checkpoint { .. })
        ));

        // Different workload => digest mismatch.
        let other_fleet = workload::nara_fleet_sized(5, 150.0, 4);
        let engine = ParallelEngine::new(config(), 2).unwrap();
        assert!(matches!(
            engine.run_session(&other_fleet, Some(ckpt), None),
            Err(SimError::Checkpoint { .. })
        ));
    }
}
