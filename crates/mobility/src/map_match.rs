//! Map matching: snapping free-space trajectories onto a street network.
//!
//! Externally supplied GPS traces (and the random-waypoint crowd) move
//! through buildings; to compare them against street-bound rickshaws —
//! or to build street-consistent dummies from them — each sample is
//! projected onto the nearest street of a [`StreetGrid`].

use dummyloc_geo::Point;
use dummyloc_trajectory::{Trajectory, TrajectoryBuilder};

use crate::street::StreetGrid;

/// Projects one point onto the nearest street of the network (clamping
/// into the covered area first).
///
/// Streets run at multiples of the grid spacing along both axes; the
/// nearest network point is on the nearest vertical or horizontal street
/// line, whichever is closer.
pub fn snap_point(streets: &StreetGrid, p: Point) -> Point {
    let area = streets.area();
    let q = area.clamp(p);
    let sp = streets.spacing();
    let rel_x = q.x - area.min().x;
    let rel_y = q.y - area.min().y;
    // Nearest street lines on each axis, clamped to existing streets.
    let max_i = (streets.nx() - 1) as f64;
    let max_j = (streets.ny() - 1) as f64;
    let line_x = area.min().x + (rel_x / sp).round().min(max_i).max(0.0) * sp;
    let line_y = area.min().y + (rel_y / sp).round().min(max_j).max(0.0) * sp;
    let dx = (q.x - line_x).abs();
    let dy = (q.y - line_y).abs();
    if dx <= dy {
        // Snap to the vertical street, keep the y coordinate (clamped to
        // the street's extent, which spans the whole area).
        Point::new(line_x, q.y)
    } else {
        Point::new(q.x, line_y)
    }
}

/// Map-matches a whole trajectory: every sample is snapped with
/// [`snap_point`]; timestamps are untouched.
pub fn match_trajectory(streets: &StreetGrid, track: &Trajectory) -> Trajectory {
    let mut b = TrajectoryBuilder::with_capacity(track.id(), track.len());
    for p in track.points() {
        b.push(p.t, snap_point(streets, p.pos));
    }
    b.build().expect("snapping preserves the time axis")
}

/// Mean snap displacement of a track (how far samples are from the
/// network) — a cheap "is this thing street-bound?" classifier: near
/// zero for vehicles on the network, ~spacing/4 for free movers.
pub fn mean_snap_distance(streets: &StreetGrid, track: &Trajectory) -> f64 {
    // Trajectories are non-empty by construction.
    let total: f64 = track
        .points()
        .iter()
        .map(|p| p.pos.distance(&snap_point(streets, p.pos)))
        .sum();
    total / track.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::BBox;

    fn streets() -> StreetGrid {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap();
        StreetGrid::new(area, 100.0)
    }

    fn on_network(streets: &StreetGrid, p: Point) -> bool {
        let sp = streets.spacing();
        let on_x = (p.x / sp - (p.x / sp).round()).abs() < 1e-9;
        let on_y = (p.y / sp - (p.y / sp).round()).abs() < 1e-9;
        on_x || on_y
    }

    #[test]
    fn snap_picks_the_nearest_axis() {
        let g = streets();
        // 10 m from the x=100 street, 30 m from y=200: snap west.
        assert_eq!(
            snap_point(&g, Point::new(110.0, 230.0)),
            Point::new(100.0, 230.0)
        );
        // 30 m from x=100, 10 m from y=200: snap south.
        assert_eq!(
            snap_point(&g, Point::new(130.0, 210.0)),
            Point::new(130.0, 200.0)
        );
        // Already on a street: fixed point.
        assert_eq!(
            snap_point(&g, Point::new(100.0, 237.0)),
            Point::new(100.0, 237.0)
        );
        // Intersections are fixed points too.
        assert_eq!(
            snap_point(&g, Point::new(300.0, 400.0)),
            Point::new(300.0, 400.0)
        );
    }

    #[test]
    fn snap_is_idempotent_and_bounded() {
        let g = streets();
        let mut worst: f64 = 0.0;
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(i as f64 * 25.3 + 1.7, j as f64 * 24.1 + 3.9);
                let s = snap_point(&g, p);
                assert!(on_network(&g, s), "{s:?} off network");
                assert_eq!(snap_point(&g, s), s);
                worst = worst.max(g.area().clamp(p).distance(&s));
            }
        }
        // Never farther than half a block.
        assert!(worst <= 50.0 + 1e-9, "worst snap {worst}");
    }

    #[test]
    fn snap_clamps_outside_points() {
        let g = streets();
        let s = snap_point(&g, Point::new(-50.0, 1500.0));
        assert!(g.area().contains(s));
        assert!(on_network(&g, s));
    }

    #[test]
    fn match_trajectory_preserves_time_and_snaps_all() {
        let g = streets();
        let track = dummyloc_trajectory::TrajectoryBuilder::new("free")
            .point(0.0, Point::new(111.0, 222.0))
            .point(10.0, Point::new(333.0, 444.0))
            .point(20.0, Point::new(555.0, 666.0))
            .build()
            .unwrap();
        let matched = match_trajectory(&g, &track);
        assert_eq!(matched.len(), 3);
        for (a, b) in track.points().iter().zip(matched.points()) {
            assert_eq!(a.t, b.t);
            assert!(on_network(&g, b.pos));
        }
    }

    #[test]
    fn snap_distance_separates_street_bound_from_free() {
        use crate::{MobilityModel, RickshawConfig, RickshawModel};
        use dummyloc_geo::rng::rng_from_seed;
        let model = RickshawModel::new(RickshawConfig::nara(), 1);
        let g = StreetGrid::new(RickshawConfig::nara().area, 100.0);
        let mut rng = rng_from_seed(2);
        let rickshaw = model.generate(&mut rng, "r", 0.0, 600.0);
        // Rickshaws ride the same 100 m network → snap distance ~0.
        assert!(mean_snap_distance(&g, &rickshaw) < 1e-6);
        // A diagonal free mover sits well off the network on average.
        let mut b = dummyloc_trajectory::TrajectoryBuilder::new("d");
        for i in 0..100 {
            b.push(
                i as f64,
                Point::new(7.0 + i as f64 * 9.7, 13.0 + i as f64 * 9.7),
            );
        }
        let diagonal = b.build().unwrap();
        assert!(mean_snap_distance(&g, &diagonal) > 10.0);
    }
}
