use dummyloc_geo::{rng::sample_uniform, BBox};
use dummyloc_trajectory::{Trajectory, TrajectoryBuilder};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::MobilityModel;

/// Configuration of the [`RandomWaypoint`] model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypointConfig {
    /// Area the subject roams in.
    pub area: BBox,
    /// `(min, max)` travel speed in units/second, sampled per leg.
    pub speed_range: (f64, f64),
    /// `(min, max)` pause at each waypoint in seconds, sampled per
    /// waypoint. Use `(0.0, 0.0)` for no pauses.
    pub pause_range: (f64, f64),
    /// Sampling interval of the emitted trajectory in seconds.
    pub tick: f64,
}

impl RandomWaypointConfig {
    /// Sensible pedestrian defaults in a given area: 0.5–2 m/s, 0–60 s
    /// pauses, 1 s tick.
    pub fn pedestrian(area: BBox) -> Self {
        RandomWaypointConfig {
            area,
            speed_range: (0.5, 2.0),
            pause_range: (0.0, 60.0),
            tick: 1.0,
        }
    }

    fn validate(&self) {
        assert!(self.tick > 0.0, "tick must be positive");
        assert!(
            self.speed_range.0 > 0.0 && self.speed_range.1 >= self.speed_range.0,
            "speed range must be positive and ordered"
        );
        assert!(
            self.pause_range.0 >= 0.0 && self.pause_range.1 >= self.pause_range.0,
            "pause range must be non-negative and ordered"
        );
        assert!(
            self.area.width() > 0.0 && self.area.height() > 0.0,
            "area must have positive extent"
        );
    }
}

/// The classic random-waypoint mobility model.
///
/// The subject starts at a uniform position, repeatedly picks a uniform
/// waypoint and a per-leg speed, travels there in a straight line, pauses,
/// and repeats. Used as the non-vehicular baseline workload and to model
/// "other users" populating the service area.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    config: RandomWaypointConfig,
}

impl RandomWaypoint {
    /// Creates the model; panics on a non-sensical configuration (these are
    /// programmer errors in experiment setup, not runtime conditions).
    pub fn new(config: RandomWaypointConfig) -> Self {
        config.validate();
        RandomWaypoint { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RandomWaypointConfig {
        &self.config
    }
}

impl MobilityModel for RandomWaypoint {
    fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: &str,
        start: f64,
        duration: f64,
    ) -> Trajectory {
        let c = &self.config;
        let end = start + duration.max(0.0);
        // Build the exact waypoint-level track first, then resample at the
        // tick; Trajectory::resample interpolates linearly, which is exact
        // for straight legs.
        let mut b = TrajectoryBuilder::new(id);
        let mut t = start;
        let mut pos = sample_uniform(rng, &c.area);
        b.push(t, pos);
        while t < end {
            // Pause at the current waypoint.
            let pause = sample_in(rng, c.pause_range);
            if pause > 0.0 {
                t = (t + pause).min(end);
                b.push(t, pos);
                if t >= end {
                    break;
                }
            }
            // Travel to the next waypoint.
            let next = sample_uniform(rng, &c.area);
            let dist = pos.distance(&next);
            if dist == 0.0 {
                continue;
            }
            let speed = sample_in(rng, c.speed_range);
            let legtime = dist / speed;
            if t + legtime <= end {
                t += legtime;
                pos = next;
            } else {
                // Truncate the final leg at the horizon.
                let frac = (end - t) / legtime;
                pos = pos.lerp(&next, frac);
                t = end;
            }
            b.push(t, pos);
        }
        let track = b.build().expect("builder fed strictly increasing times");
        track.resample(c.tick).expect("tick validated positive")
    }
}

fn sample_in<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (f64, f64)) -> f64 {
    if lo < hi {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::{rng::rng_from_seed, Point};
    use dummyloc_trajectory::stats::track_stats;

    fn area() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)).unwrap()
    }

    fn model() -> RandomWaypoint {
        RandomWaypoint::new(RandomWaypointConfig {
            area: area(),
            speed_range: (1.0, 2.0),
            pause_range: (0.0, 10.0),
            tick: 1.0,
        })
    }

    #[test]
    fn generates_expected_span_and_tick() {
        let mut rng = rng_from_seed(1);
        let t = model().generate(&mut rng, "u", 100.0, 600.0);
        assert_eq!(t.id(), "u");
        assert_eq!(t.start_time(), 100.0);
        assert_eq!(t.end_time(), 700.0);
        // Tick of 1 s over 600 s → 601 samples.
        assert_eq!(t.len(), 601);
    }

    #[test]
    fn stays_inside_area() {
        let mut rng = rng_from_seed(2);
        let t = model().generate(&mut rng, "u", 0.0, 3600.0);
        for p in t.points() {
            assert!(area().contains(p.pos), "{:?} escaped", p.pos);
        }
    }

    #[test]
    fn respects_speed_limit() {
        let mut rng = rng_from_seed(3);
        let t = model().generate(&mut rng, "u", 0.0, 3600.0);
        let s = track_stats(&t);
        assert!(s.max_speed <= 2.0 + 1e-9, "max speed {}", s.max_speed);
        assert!(s.mean_speed > 0.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = model().generate(&mut rng_from_seed(42), "u", 0.0, 300.0);
        let b = model().generate(&mut rng_from_seed(42), "u", 0.0, 300.0);
        assert_eq!(a, b);
        let c = model().generate(&mut rng_from_seed(43), "u", 0.0, 300.0);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_duration_yields_single_point() {
        let mut rng = rng_from_seed(4);
        let t = model().generate(&mut rng, "u", 5.0, 0.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.start_time(), 5.0);
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn invalid_tick_panics() {
        RandomWaypoint::new(RandomWaypointConfig {
            area: area(),
            speed_range: (1.0, 2.0),
            pause_range: (0.0, 0.0),
            tick: 0.0,
        });
    }

    #[test]
    fn no_pause_config_moves_constantly() {
        let m = RandomWaypoint::new(RandomWaypointConfig {
            area: area(),
            speed_range: (2.0, 2.0),
            pause_range: (0.0, 0.0),
            tick: 1.0,
        });
        let mut rng = rng_from_seed(5);
        let t = m.generate(&mut rng, "u", 0.0, 600.0);
        // With fixed speed 2 and no pauses, nearly every 1 s step moves ~2
        // units (less only at waypoint corners).
        let moving = t.steps().filter(|&(_, d)| d > 1.0).count();
        assert!(moving as f64 > 0.9 * (t.len() - 1) as f64);
    }
}
