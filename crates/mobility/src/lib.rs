//! Synthetic mobility models for the `dummyloc` workspace.
//!
//! The paper evaluates on *"39 rickshaw trajectories from Nara, Japan"* — a
//! proprietary GPS trace set we cannot obtain. This crate synthesizes
//! workloads with the same relevant behaviour (see `DESIGN.md` §3 for the
//! substitution argument):
//!
//! * [`RandomWaypoint`] — the classic mobility-simulation baseline: pick a
//!   uniform waypoint, travel to it at a sampled speed, pause, repeat.
//! * [`StreetGrid`] + [`StreetWalker`] — movement constrained to a
//!   Manhattan street network, which is what distinguishes vehicles from
//!   pedestrian noise in trace data.
//! * [`RickshawModel`] — the Nara substitute: street-constrained tours
//!   between points of interest with customer pickup/dropoff dwell times;
//!   [`RickshawModel::generate_fleet`] emits the 39-track workload used by
//!   every experiment.
//!
//! [`map_match`] snaps free-space trajectories onto a street network —
//! useful both for normalizing external GPS traces and as the cheap
//! "is this track street-bound?" classifier the extension adversaries
//! build on.
//!
//! All models are deterministic given a seed and emit
//! [`dummyloc_trajectory::Trajectory`] values sampled at a
//! fixed tick, ready for the simulation engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod map_match;
mod random_waypoint;
mod rickshaw;
mod street;

pub use random_waypoint::{RandomWaypoint, RandomWaypointConfig};
pub use rickshaw::{RickshawConfig, RickshawModel};
pub use street::{StreetGrid, StreetWalker};

use dummyloc_trajectory::Trajectory;
use rand::Rng;

/// A mobility model that can emit one trajectory per subject.
pub trait MobilityModel {
    /// Generates the trajectory of subject `id`, sampling randomness from
    /// `rng`, starting at time `start` and spanning `duration` seconds.
    fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: &str,
        start: f64,
        duration: f64,
    ) -> Trajectory;
}
