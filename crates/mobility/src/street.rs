use dummyloc_geo::{BBox, Point};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Manhattan street network: streets run at uniform `spacing` along both
/// axes of `area`, intersecting at nodes.
///
/// Nodes are addressed `(i, j)` with `i` along x and `j` along y, both
/// 0-based. The network always includes the boundary streets, so an area of
/// width `w` has `⌊w / spacing⌋ + 1` north–south streets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreetGrid {
    area: BBox,
    spacing: f64,
    nx: u32,
    ny: u32,
}

/// A node address in a [`StreetGrid`].
pub type NodeId = (u32, u32);

impl StreetGrid {
    /// Builds a street network over `area` with the given block `spacing`.
    ///
    /// Panics if `spacing` is non-positive or larger than either extent of
    /// the area (experiment-setup errors).
    pub fn new(area: BBox, spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        assert!(
            spacing <= area.width() && spacing <= area.height(),
            "spacing must fit inside the area"
        );
        let nx = (area.width() / spacing).floor() as u32 + 1;
        let ny = (area.height() / spacing).floor() as u32 + 1;
        StreetGrid {
            area,
            spacing,
            nx,
            ny,
        }
    }

    /// The covered area.
    pub fn area(&self) -> BBox {
        self.area
    }

    /// Block spacing.
    pub fn spacing(&self) -> f64 {
        self.spacing
    }

    /// Number of north–south streets (x positions).
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of east–west streets (y positions).
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of intersections.
    pub fn node_count(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Coordinate of a node; panics on an out-of-range address.
    pub fn node_pos(&self, (i, j): NodeId) -> Point {
        assert!(i < self.nx && j < self.ny, "node ({i}, {j}) out of range");
        Point::new(
            self.area.min().x + i as f64 * self.spacing,
            self.area.min().y + j as f64 * self.spacing,
        )
    }

    /// The intersection nearest to `p` (clamped into the network).
    pub fn snap(&self, p: Point) -> NodeId {
        let q = self.area.clamp(p);
        let i = ((q.x - self.area.min().x) / self.spacing).round() as u32;
        let j = ((q.y - self.area.min().y) / self.spacing).round() as u32;
        (i.min(self.nx - 1), j.min(self.ny - 1))
    }

    /// The 2–4 intersections adjacent to a node along its streets.
    pub fn neighbors(&self, (i, j): NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(4);
        if i > 0 {
            out.push((i - 1, j));
        }
        if i + 1 < self.nx {
            out.push((i + 1, j));
        }
        if j > 0 {
            out.push((i, j - 1));
        }
        if j + 1 < self.ny {
            out.push((i, j + 1));
        }
        out
    }

    /// A uniformly random intersection.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        (rng.gen_range(0..self.nx), rng.gen_range(0..self.ny))
    }

    /// A shortest staircase route from `a` to `b`: node-by-node, randomly
    /// interleaving the required x and y moves so repeated trips between the
    /// same endpoints take different streets.
    ///
    /// The result includes both endpoints; `a == b` yields `[a]`.
    pub fn route<R: Rng + ?Sized>(&self, rng: &mut R, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut path = vec![a];
        let (mut i, mut j) = a;
        while (i, j) != b {
            let dx = (b.0 as i64 - i as i64).signum();
            let dy = (b.1 as i64 - j as i64).signum();
            let move_x = match (dx != 0, dy != 0) {
                (true, true) => rng.gen_bool(0.5),
                (true, false) => true,
                (false, _) => false,
            };
            if move_x {
                i = (i as i64 + dx) as u32;
            } else {
                j = (j as i64 + dy) as u32;
            }
            path.push((i, j));
        }
        path
    }

    /// Manhattan distance (in metres) between two nodes along the streets.
    pub fn street_distance(&self, a: NodeId, b: NodeId) -> f64 {
        let blocks = (a.0.abs_diff(b.0) + a.1.abs_diff(b.1)) as f64;
        blocks * self.spacing
    }
}

/// A random walker on a [`StreetGrid`]: at every intersection it picks a
/// random neighbor, avoiding an immediate U-turn when any other option
/// exists. Produces the node sequence; speed/time assignment is the
/// caller's concern (see the rickshaw model).
#[derive(Debug, Clone)]
pub struct StreetWalker {
    grid: StreetGrid,
    at: NodeId,
    prev: Option<NodeId>,
}

impl StreetWalker {
    /// Creates a walker standing at `start`.
    pub fn new(grid: StreetGrid, start: NodeId) -> Self {
        assert!(
            start.0 < grid.nx() && start.1 < grid.ny(),
            "start node out of range"
        );
        StreetWalker {
            grid,
            at: start,
            prev: None,
        }
    }

    /// Current node.
    pub fn position(&self) -> NodeId {
        self.at
    }

    /// Current node coordinate.
    pub fn position_point(&self) -> Point {
        self.grid.node_pos(self.at)
    }

    /// Advances one block and returns the new node.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> NodeId {
        let mut options = self.grid.neighbors(self.at);
        if options.len() > 1 {
            if let Some(prev) = self.prev {
                options.retain(|&n| n != prev);
            }
        }
        let next = options[rng.gen_range(0..options.len())];
        self.prev = Some(self.at);
        self.at = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dummyloc_geo::rng::rng_from_seed;

    fn grid() -> StreetGrid {
        let area = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0)).unwrap();
        StreetGrid::new(area, 100.0)
    }

    #[test]
    fn node_counts_include_boundaries() {
        let g = grid();
        assert_eq!(g.nx(), 11);
        assert_eq!(g.ny(), 9);
        assert_eq!(g.node_count(), 99);
        assert_eq!(g.node_pos((0, 0)), Point::new(0.0, 0.0));
        assert_eq!(g.node_pos((10, 8)), Point::new(1000.0, 800.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_pos_panics_out_of_range() {
        grid().node_pos((11, 0));
    }

    #[test]
    fn snap_rounds_to_nearest_intersection() {
        let g = grid();
        assert_eq!(g.snap(Point::new(149.0, 51.0)), (1, 1));
        assert_eq!(g.snap(Point::new(151.0, 49.0)), (2, 0));
        // Outside points clamp into the network.
        assert_eq!(g.snap(Point::new(-500.0, 5000.0)), (0, 8));
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = grid();
        assert_eq!(g.neighbors((0, 0)).len(), 2);
        assert_eq!(g.neighbors((5, 0)).len(), 3);
        assert_eq!(g.neighbors((5, 4)).len(), 4);
    }

    #[test]
    fn route_is_shortest_and_connected() {
        let g = grid();
        let mut rng = rng_from_seed(7);
        for _ in 0..50 {
            let a = g.random_node(&mut rng);
            let b = g.random_node(&mut rng);
            let path = g.route(&mut rng, a, b);
            assert_eq!(path[0], a);
            assert_eq!(*path.last().unwrap(), b);
            // Shortest: Manhattan block count + 1 nodes.
            let blocks = a.0.abs_diff(b.0) + a.1.abs_diff(b.1);
            assert_eq!(path.len() as u32, blocks + 1);
            // Connected: consecutive nodes are street neighbors.
            for w in path.windows(2) {
                assert!(g.neighbors(w[0]).contains(&w[1]), "{w:?} not adjacent");
            }
        }
    }

    #[test]
    fn route_same_endpoints_is_single_node() {
        let g = grid();
        let mut rng = rng_from_seed(1);
        assert_eq!(g.route(&mut rng, (3, 3), (3, 3)), vec![(3, 3)]);
    }

    #[test]
    fn routes_vary_between_draws() {
        let g = grid();
        let mut rng = rng_from_seed(9);
        let a = (0, 0);
        let b = (5, 5);
        let p1 = g.route(&mut rng, a, b);
        let p2 = g.route(&mut rng, a, b);
        // Overwhelmingly likely distinct staircases (C(10,5)=252 options).
        assert_ne!(p1, p2);
    }

    #[test]
    fn street_distance_in_metres() {
        let g = grid();
        assert_eq!(g.street_distance((0, 0), (3, 2)), 500.0);
        assert_eq!(g.street_distance((4, 4), (4, 4)), 0.0);
    }

    #[test]
    fn walker_avoids_uturns_and_stays_on_grid() {
        let g = grid();
        let mut w = StreetWalker::new(g.clone(), (5, 4));
        let mut rng = rng_from_seed(3);
        let mut prev = w.position();
        let mut prev2: Option<NodeId> = None;
        for _ in 0..500 {
            let next = w.step(&mut rng);
            assert!(g.neighbors(prev).contains(&next));
            if let Some(p2) = prev2 {
                // No immediate backtrack unless forced at a corner.
                if g.neighbors(prev).len() > 1 {
                    assert_ne!(next, p2, "U-turn at {prev:?}");
                }
            }
            prev2 = Some(prev);
            prev = next;
        }
    }
}
